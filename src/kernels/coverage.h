// CoverageBlockSet: the collapsed weighted query log re-laid-out for
// batch kernels.
//
// Queries are grouped into blocks of 64 and stored word-major
// (transposed / structure-of-arrays): within a block, word w of query j
// lives at words[w * 64 + j]. A batch subset test then streams 64
// contiguous queries per attribute word and produces one 64-bit result
// mask per block — one bit per query — which the kernels popcount or use
// to gather weights. The tail block's unused slots hold all-zero queries
// (which would falsely pass every subset test), so each block carries a
// valid_mask the kernels AND into every result.
//
// The layout is built from plain DynamicBitset vectors (not QueryLog) so
// the library sits below soc_boolean and every consumer — solvers, the
// BnB bound, the serving fast path — can link it.

#ifndef SOC_KERNELS_COVERAGE_H_
#define SOC_KERNELS_COVERAGE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitset.h"
#include "kernels/arena.h"

namespace soc::kernels {

class CoverageBlockSet {
 public:
  // Queries per block: one result-mask bit per query.
  static constexpr int kBlockQueries = 64;

  CoverageBlockSet() = default;

  // Builds the blocked layout over `queries` (each of width `num_bits`).
  // `weights` is either nullptr (unit weights) or one entry per query.
  // Storage comes from `arena` when given (the arena must outlive the
  // set); otherwise the set owns its storage.
  CoverageBlockSet(const std::vector<DynamicBitset>& queries,
                   std::size_t num_bits, const long long* weights,
                   Arena* arena);

  // Convenience: unit weights, owned storage.
  CoverageBlockSet(const std::vector<DynamicBitset>& queries,
                   std::size_t num_bits)
      : CoverageBlockSet(queries, num_bits, nullptr, nullptr) {}

  CoverageBlockSet(CoverageBlockSet&&) = default;
  CoverageBlockSet& operator=(CoverageBlockSet&&) = default;

  int num_queries() const { return num_queries_; }
  int num_blocks() const { return num_blocks_; }
  // Words per query == words per attribute bitset of width num_bits.
  int words_per_query() const { return words_per_query_; }
  std::size_t num_bits() const { return num_bits_; }
  bool unit_weights() const { return weights_ == nullptr; }
  long long total_weight() const { return total_weight_; }

  // Word-major storage of block b: word w of in-block query j is at
  // block_words(b)[w * kBlockQueries + j]. 64-byte aligned.
  const std::uint64_t* block_words(int b) const {
    return words_ + static_cast<std::size_t>(b) * block_stride_;
  }
  // Bit j set iff in-block slot j holds a real query.
  std::uint64_t valid_mask(int b) const {
    const int tail = num_queries_ - b * kBlockQueries;
    return tail >= kBlockQueries ? ~std::uint64_t{0}
                                 : (std::uint64_t{1} << tail) - 1;
  }
  // Weights of block b's queries (64 entries, unused slots zero);
  // nullptr for unit-weight sets.
  const long long* block_weights(int b) const {
    return weights_ == nullptr
               ? nullptr
               : weights_ + static_cast<std::size_t>(b) * kBlockQueries;
  }

 private:
  int num_queries_ = 0;
  int num_blocks_ = 0;
  int words_per_query_ = 0;
  std::size_t num_bits_ = 0;
  std::size_t block_stride_ = 0;  // words per block
  long long total_weight_ = 0;
  const std::uint64_t* words_ = nullptr;
  const long long* weights_ = nullptr;
  // Backing storage when no arena was supplied.
  std::unique_ptr<Arena> owned_;
};

}  // namespace soc::kernels

#endif  // SOC_KERNELS_COVERAGE_H_
