// Batch coverage kernels over the CoverageBlockSet layout, in three
// dispatch tiers (portable scalar, AVX2, AVX-512) selected at runtime
// by CPUID.
//
// Contract: every tier is bit-identical to the scalar reference — same
// result masks, same counts, same gains — on every width, remainder and
// alignment (tests/kernel_diff_test.cc sweeps the edges; the property
// catalog fuzzes it nightly). The tiers only differ in the per-block
// mask primitives (KernelOps); the drivers below share one tier-
// independent loop, so exactness reduces to mask equality.
//
// Escape hatches: build with -DSOC_FORCE_SCALAR=ON or set the
// SOC_FORCE_SCALAR environment variable (any non-empty value but "0")
// to pin dispatch to the scalar tier; tests and benches can also pin a
// specific tier with ForceTier().
//
// SolveContext cancellation is honored at block granularity: drivers
// taking a context tick once per 64-query block and return partial
// results flagged completed=false on stop.

#ifndef SOC_KERNELS_KERNELS_H_
#define SOC_KERNELS_KERNELS_H_

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "common/solve_context.h"
#include "kernels/coverage.h"

namespace soc::kernels {

enum class Tier {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

const char* TierName(Tier tier);

// The per-block primitives a tier implements. `block` is one
// CoverageBlockSet block (word-major, 64 queries); `words` is
// words_per_query. Each returns/fills 64-bit masks with bit j describing
// in-block query j. Callers mask the result with the block's valid_mask.
struct KernelOps {
  const char* name;
  // Bit j set iff query j ⊆ sel, i.e. (q & not_sel) == 0 for all words
  // (`not_sel` is the complement of the selection, trailing bits set —
  // harmless because query trailing bits are zero).
  std::uint64_t (*subset_mask)(const std::uint64_t* block, int words,
                               const std::uint64_t* not_sel);
  // Bit j set iff sel ⊆ query j, i.e. (sel & ~q) == 0 for all words.
  std::uint64_t (*superset_mask)(const std::uint64_t* block, int words,
                                 const std::uint64_t* sel);
  // Bit j set iff query j ∩ other ≠ ∅.
  std::uint64_t (*intersect_mask)(const std::uint64_t* block, int words,
                                  const std::uint64_t* other);
  // Per-query popcount(q & not_sel) (attributes of q missing from sel):
  // *eq0 gets the mask of queries with zero missing (⟺ q ⊆ sel), *le
  // the mask with at most `limit` missing.
  void (*missing_le_mask)(const std::uint64_t* block, int words,
                          const std::uint64_t* not_sel, std::uint64_t limit,
                          std::uint64_t* eq0, std::uint64_t* le);
};

// Tiers usable on this host (scalar always; SIMD tiers only when
// compiled in and reported by CPUID). Forcing scalar shrinks this to
// {kScalar}.
std::vector<Tier> AvailableTiers();

// The tier dispatch resolves to: the best available one, unless pinned
// by SOC_FORCE_SCALAR or ForceTier().
Tier ActiveTier();

// Ops table for an explicitly chosen tier; nullptr when the tier is not
// available on this host. GetOps(Tier::kScalar) never fails.
const KernelOps* GetOps(Tier tier);

// Pins ActiveTier() for tests/benches; pass ForceTier(std::nullopt)-style
// ClearForcedTier() to restore CPUID dispatch. The tier must be
// available. Not thread-safe; call from single-threaded setup only.
void ForceTier(Tier tier);
void ClearForcedTier();

// ---- Drivers (tier-independent loops over the block set) ----

// Number of set queries q with q ⊆ sel. Requires a unit-weight set.
long long CountCovered(const CoverageBlockSet& set, const DynamicBitset& sel);
long long CountCoveredWith(const KernelOps& ops, const CoverageBlockSet& set,
                           const DynamicBitset& sel);

// Σ weight(q) over q ⊆ sel (weighted sets; unit sets count queries).
long long AccumulateWeighted(const CoverageBlockSet& set,
                             const DynamicBitset& sel);
long long AccumulateWeightedWith(const KernelOps& ops,
                                 const CoverageBlockSet& set,
                                 const DynamicBitset& sel);

// Per-candidate-attribute marginal gain for the ConsumeAttrCumul
// greedies (co-occurrence direction): over queries q ⊇ sel,
//   base     = Σ weight(q)
//   gains[a] = Σ weight(q) over q ⊇ sel with a ∈ q
// so gains[a] is exactly the joint count of sel ∪ {a} for any a ∉ sel.
// `gains` must hold set.num_bits() entries; the driver zeroes it. Ticks
// `context` per block; on stop returns completed=false (gains partial).
struct GainScan {
  long long base = 0;
  bool completed = true;
};
GainScan CoverageGain(const CoverageBlockSet& set, const DynamicBitset& sel,
                      long long* gains, SolveContext* context);
GainScan CoverageGainWith(const KernelOps& ops, const CoverageBlockSet& set,
                          const DynamicBitset& sel, long long* gains,
                          SolveContext* context);

// The branch-and-bound counting bound, one pass:
//   satisfied = Σ weight(q) over q ⊆ chosen
//   potential = Σ weight(q) over q ⊄ chosen, q ∩ rejected = ∅,
//               |q \ chosen| ≤ slack
struct BoundScan {
  long long satisfied = 0;
  long long potential = 0;
};
BoundScan CoverageBound(const CoverageBlockSet& set,
                        const DynamicBitset& chosen,
                        const DynamicBitset& rejected, int slack);
BoundScan CoverageBoundWith(const KernelOps& ops, const CoverageBlockSet& set,
                            const DynamicBitset& chosen,
                            const DynamicBitset& rejected, int slack);

namespace internal {
// Per-tier ops tables. The SIMD ones return nullptr when their TU was
// compiled without the ISA (non-x86 hosts).
const KernelOps* ScalarOps();
const KernelOps* Avx2Ops();
const KernelOps* Avx512Ops();
}  // namespace internal

}  // namespace soc::kernels

#endif  // SOC_KERNELS_KERNELS_H_
