// A 64-byte-aligned bump allocator backing the blocked coverage layout
// and per-request kernel scratch space.
//
// The serving fast path used to copy a whole DynamicBitset per request;
// the arena replaces that churn with pointer bumps into blocks that are
// allocated once per thread and reused forever. Every allocation is
// aligned to kAlignment (64 bytes) so AVX-512 loads of kernel operands
// are always aligned. Freed regions (Rewind/Reset) are poisoned under
// AddressSanitizer, so a consumer holding a pointer across a Reset trips
// ASan instead of silently reading recycled memory.
//
// Not thread-safe; use ThreadScratchArena() / ScratchScope for the
// per-thread scratch instance.

#ifndef SOC_KERNELS_ARENA_H_
#define SOC_KERNELS_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace soc::kernels {

class Arena {
 public:
  // Every allocation is aligned to this many bytes (one cache line; the
  // widest vector load the kernels issue).
  static constexpr std::size_t kAlignment = 64;

  explicit Arena(std::size_t first_block_bytes = 1 << 14);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns kAlignment-aligned storage for `bytes` bytes (uninitialized).
  // Valid until the enclosing Rewind/Reset. Allocate(0) is legal.
  void* Allocate(std::size_t bytes);

  // Typed helpers for the two element kinds the kernels use.
  std::uint64_t* AllocateWords(std::size_t count) {
    return static_cast<std::uint64_t*>(
        Allocate(count * sizeof(std::uint64_t)));
  }
  long long* AllocateWeights(std::size_t count) {
    return static_cast<long long*>(Allocate(count * sizeof(long long)));
  }

  // A position in the arena; Rewind(mark) frees everything allocated
  // after mark() was taken (LIFO discipline, checked under ASan only).
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
  };
  Mark mark() const { return Mark{active_, Used(active_)}; }
  void Rewind(const Mark& mark);

  // Frees every allocation; the blocks themselves are kept for reuse.
  void Reset() { Rewind(Mark{}); }

  struct Stats {
    std::int64_t blocks_created = 0;  // malloc calls over the lifetime
    std::int64_t bytes_reserved = 0;  // sum of block capacities
    std::int64_t allocations = 0;     // Allocate() calls
  };
  Stats stats() const { return stats_; }

  // Process-wide count of arena blocks ever created (all Arena
  // instances). The serve tests assert this stays flat across warm
  // batches: a steady state allocates nothing.
  static std::int64_t TotalBlocksCreated();

 private:
  struct Block {
    char* data = nullptr;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  std::size_t Used(std::size_t block_index) const {
    return block_index < blocks_.size() ? blocks_[block_index].used : 0;
  }
  void AddBlock(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // bump target; blocks before it are full
  std::size_t next_block_bytes_;
  Stats stats_;
};

// The calling thread's scratch arena (created on first use, reused for
// the thread's lifetime).
Arena& ThreadScratchArena();

// RAII mark/rewind on the thread scratch arena: allocations made through
// the scope die (and are ASan-poisoned) when it closes. Scopes nest.
class ScratchScope {
 public:
  ScratchScope() : arena_(ThreadScratchArena()), mark_(arena_.mark()) {}
  ~ScratchScope() { arena_.Rewind(mark_); }

  ScratchScope(const ScratchScope&) = delete;
  ScratchScope& operator=(const ScratchScope&) = delete;

  Arena& arena() const { return arena_; }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace soc::kernels

#endif  // SOC_KERNELS_ARENA_H_
