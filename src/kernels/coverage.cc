#include "kernels/coverage.h"

#include <cstring>

#include "common/logging.h"

namespace soc::kernels {

CoverageBlockSet::CoverageBlockSet(const std::vector<DynamicBitset>& queries,
                                   std::size_t num_bits,
                                   const long long* weights, Arena* arena) {
  num_queries_ = static_cast<int>(queries.size());
  num_bits_ = num_bits;
  words_per_query_ = static_cast<int>((num_bits + 63) / 64);
  num_blocks_ = (num_queries_ + kBlockQueries - 1) / kBlockQueries;
  block_stride_ =
      static_cast<std::size_t>(words_per_query_) * kBlockQueries;

  if (arena == nullptr) {
    owned_ = std::make_unique<Arena>();
    arena = owned_.get();
  }

  const std::size_t total_words =
      static_cast<std::size_t>(num_blocks_) * block_stride_;
  std::uint64_t* words = arena->AllocateWords(total_words);
  std::memset(words, 0, total_words * sizeof(std::uint64_t));
  for (int i = 0; i < num_queries_; ++i) {
    const DynamicBitset& q = queries[static_cast<std::size_t>(i)];
    SOC_CHECK_EQ(q.size(), num_bits);
    std::uint64_t* block =
        words + static_cast<std::size_t>(i / kBlockQueries) * block_stride_;
    const int slot = i % kBlockQueries;
    const std::uint64_t* q_words = q.words();
    for (int w = 0; w < words_per_query_; ++w) {
      block[static_cast<std::size_t>(w) * kBlockQueries + slot] = q_words[w];
    }
  }
  words_ = words;

  if (weights != nullptr) {
    const std::size_t padded =
        static_cast<std::size_t>(num_blocks_) * kBlockQueries;
    long long* padded_weights = arena->AllocateWeights(padded);
    std::memset(padded_weights, 0, padded * sizeof(long long));
    for (int i = 0; i < num_queries_; ++i) {
      padded_weights[i] = weights[i];
      total_weight_ += weights[i];
    }
    weights_ = padded_weights;
  } else {
    total_weight_ = num_queries_;
  }
}

}  // namespace soc::kernels
