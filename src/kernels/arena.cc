#include "kernels/arena.h"

#include <atomic>
#include <cstdlib>

#include "common/logging.h"

// ASan interface: poison freed arena regions so stale pointers fault in
// sanitizer builds. No-ops everywhere else.
#if defined(__SANITIZE_ADDRESS__)
#define SOC_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SOC_ARENA_ASAN 1
#endif
#endif

#if defined(SOC_ARENA_ASAN)
#include <sanitizer/asan_interface.h>
#define SOC_ARENA_POISON(ptr, size) ASAN_POISON_MEMORY_REGION(ptr, size)
#define SOC_ARENA_UNPOISON(ptr, size) ASAN_UNPOISON_MEMORY_REGION(ptr, size)
#else
#define SOC_ARENA_POISON(ptr, size) ((void)(ptr), (void)(size))
#define SOC_ARENA_UNPOISON(ptr, size) ((void)(ptr), (void)(size))
#endif

namespace soc::kernels {

namespace {

std::atomic<std::int64_t> g_total_blocks_created{0};

std::size_t RoundUp(std::size_t bytes) {
  return (bytes + Arena::kAlignment - 1) & ~(Arena::kAlignment - 1);
}

}  // namespace

Arena::Arena(std::size_t first_block_bytes)
    : next_block_bytes_(RoundUp(
          first_block_bytes < kAlignment ? kAlignment : first_block_bytes)) {}

Arena::~Arena() {
  for (Block& block : blocks_) {
    // ASan forbids freeing memory while part of it is poisoned.
    SOC_ARENA_UNPOISON(block.data, block.capacity);
    std::free(block.data);
  }
}

void Arena::AddBlock(std::size_t min_bytes) {
  Block block;
  block.capacity = RoundUp(min_bytes > next_block_bytes_ ? min_bytes
                                                         : next_block_bytes_);
  block.data =
      static_cast<char*>(std::aligned_alloc(kAlignment, block.capacity));
  SOC_CHECK(block.data != nullptr);
  SOC_ARENA_POISON(block.data, block.capacity);
  blocks_.push_back(block);
  // Geometric growth caps the number of blocks (and thus the wasted tail
  // space) at O(log total bytes).
  next_block_bytes_ *= 2;
  ++stats_.blocks_created;
  stats_.bytes_reserved += static_cast<std::int64_t>(block.capacity);
  g_total_blocks_created.fetch_add(1, std::memory_order_relaxed);
}

void* Arena::Allocate(std::size_t bytes) {
  const std::size_t rounded = RoundUp(bytes);
  ++stats_.allocations;
  // Advance through retained blocks first (they survive Reset); only
  // malloc when nothing retained fits.
  while (active_ < blocks_.size() &&
         blocks_[active_].used + rounded > blocks_[active_].capacity) {
    ++active_;
  }
  if (active_ == blocks_.size()) AddBlock(rounded);
  Block& block = blocks_[active_];
  char* ptr = block.data + block.used;
  block.used += rounded;
  SOC_ARENA_UNPOISON(ptr, rounded);
  return ptr;
}

void Arena::Rewind(const Mark& mark) {
  SOC_CHECK_LE(mark.block, blocks_.size());
  for (std::size_t b = mark.block; b < blocks_.size(); ++b) {
    const std::size_t keep = (b == mark.block) ? mark.used : 0;
    Block& block = blocks_[b];
    if (block.used > keep) {
      SOC_ARENA_POISON(block.data + keep, block.used - keep);
      block.used = keep;
    }
  }
  active_ = mark.block;
}

std::int64_t Arena::TotalBlocksCreated() {
  return g_total_blocks_created.load(std::memory_order_relaxed);
}

Arena& ThreadScratchArena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace soc::kernels
