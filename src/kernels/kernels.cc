// Tier-independent driver loops. Only the per-block mask primitives
// (KernelOps) differ between dispatch tiers, so bit-exactness across
// tiers reduces to mask equality — which the differential battery and
// the nightly property fuzz check directly.

#include "kernels/kernels.h"

#include <bit>
#include <cstring>

#include "common/logging.h"

namespace soc::kernels {

namespace {

// Stack scratch for the complemented selection; wide instances
// (num_bits > 64 * kStackWords = 8192) fall back to the heap.
constexpr int kStackWords = 128;

struct WordBuf {
  std::uint64_t stack[kStackWords];
  std::vector<std::uint64_t> heap;

  std::uint64_t* Get(int words) {
    if (words <= kStackWords) return stack;
    heap.resize(static_cast<std::size_t>(words));
    return heap.data();
  }
};

// ~sel into `out`. Trailing bits of the last word become ones, which is
// harmless: query trailing bits are zero by DynamicBitset invariant.
void ComplementInto(const DynamicBitset& sel, int words, std::uint64_t* out) {
  const std::uint64_t* sel_words = sel.words();
  for (int w = 0; w < words; ++w) out[w] = ~sel_words[w];
}

long long MaskedWeight(const CoverageBlockSet& set, int block,
                       std::uint64_t mask) {
  if (set.unit_weights()) return std::popcount(mask);
  const long long* weights = set.block_weights(block);
  long long sum = 0;
  while (mask != 0) {
    sum += weights[std::countr_zero(mask)];
    mask &= mask - 1;
  }
  return sum;
}

}  // namespace

long long CountCoveredWith(const KernelOps& ops, const CoverageBlockSet& set,
                           const DynamicBitset& sel) {
  SOC_CHECK(set.unit_weights());
  SOC_CHECK_EQ(sel.size(), set.num_bits());
  const int words = set.words_per_query();
  WordBuf buf;
  std::uint64_t* not_sel = buf.Get(words);
  ComplementInto(sel, words, not_sel);
  long long count = 0;
  for (int b = 0; b < set.num_blocks(); ++b) {
    const std::uint64_t mask =
        ops.subset_mask(set.block_words(b), words, not_sel) &
        set.valid_mask(b);
    count += std::popcount(mask);
  }
  return count;
}

long long CountCovered(const CoverageBlockSet& set, const DynamicBitset& sel) {
  return CountCoveredWith(*GetOps(ActiveTier()), set, sel);
}

long long AccumulateWeightedWith(const KernelOps& ops,
                                 const CoverageBlockSet& set,
                                 const DynamicBitset& sel) {
  SOC_CHECK_EQ(sel.size(), set.num_bits());
  const int words = set.words_per_query();
  WordBuf buf;
  std::uint64_t* not_sel = buf.Get(words);
  ComplementInto(sel, words, not_sel);
  long long total = 0;
  for (int b = 0; b < set.num_blocks(); ++b) {
    const std::uint64_t mask =
        ops.subset_mask(set.block_words(b), words, not_sel) &
        set.valid_mask(b);
    total += MaskedWeight(set, b, mask);
  }
  return total;
}

long long AccumulateWeighted(const CoverageBlockSet& set,
                             const DynamicBitset& sel) {
  return AccumulateWeightedWith(*GetOps(ActiveTier()), set, sel);
}

GainScan CoverageGainWith(const KernelOps& ops, const CoverageBlockSet& set,
                          const DynamicBitset& sel, long long* gains,
                          SolveContext* context) {
  SOC_CHECK_EQ(sel.size(), set.num_bits());
  const int words = set.words_per_query();
  std::memset(gains, 0, set.num_bits() * sizeof(long long));
  GainScan scan;
  for (int b = 0; b < set.num_blocks(); ++b) {
    // One tick per 64-query block: cancellation at block granularity.
    if (context != nullptr && context->Checkpoint()) {
      scan.completed = false;
      return scan;
    }
    const std::uint64_t* block = set.block_words(b);
    std::uint64_t mask =
        ops.superset_mask(block, words, sel.words()) & set.valid_mask(b);
    const long long* weights = set.block_weights(b);
    while (mask != 0) {
      const int slot = std::countr_zero(mask);
      mask &= mask - 1;
      const long long weight = weights == nullptr ? 1 : weights[slot];
      scan.base += weight;
      // Scatter the matched query's attributes into the gains table.
      // Scalar on purpose (and identical across tiers): queries are
      // sparse, so the vectorized part is the superset mask above.
      for (int w = 0; w < words; ++w) {
        std::uint64_t q_word =
            block[static_cast<std::size_t>(w) * CoverageBlockSet::kBlockQueries +
                  slot];
        while (q_word != 0) {
          gains[w * 64 + std::countr_zero(q_word)] += weight;
          q_word &= q_word - 1;
        }
      }
    }
  }
  return scan;
}

GainScan CoverageGain(const CoverageBlockSet& set, const DynamicBitset& sel,
                      long long* gains, SolveContext* context) {
  return CoverageGainWith(*GetOps(ActiveTier()), set, sel, gains, context);
}

BoundScan CoverageBoundWith(const KernelOps& ops, const CoverageBlockSet& set,
                            const DynamicBitset& chosen,
                            const DynamicBitset& rejected, int slack) {
  SOC_CHECK_EQ(chosen.size(), set.num_bits());
  SOC_CHECK_EQ(rejected.size(), set.num_bits());
  SOC_CHECK_GE(slack, 0);
  const int words = set.words_per_query();
  WordBuf buf;
  std::uint64_t* not_chosen = buf.Get(words);
  ComplementInto(chosen, words, not_chosen);
  BoundScan scan;
  for (int b = 0; b < set.num_blocks(); ++b) {
    const std::uint64_t* block = set.block_words(b);
    std::uint64_t eq0 = 0;
    std::uint64_t le = 0;
    ops.missing_le_mask(block, words, not_chosen,
                        static_cast<std::uint64_t>(slack), &eq0, &le);
    const std::uint64_t inter =
        ops.intersect_mask(block, words, rejected.words());
    const std::uint64_t valid = set.valid_mask(b);
    scan.satisfied += MaskedWeight(set, b, eq0 & valid);
    scan.potential += MaskedWeight(set, b, le & ~eq0 & ~inter & valid);
  }
  return scan;
}

BoundScan CoverageBound(const CoverageBlockSet& set,
                        const DynamicBitset& chosen,
                        const DynamicBitset& rejected, int slack) {
  return CoverageBoundWith(*GetOps(ActiveTier()), set, chosen, rejected,
                           slack);
}

}  // namespace soc::kernels
