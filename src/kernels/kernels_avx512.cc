// AVX-512 tier: 8 queries per vector, 8 vectors per 64-query block.
// Gated on F (64-bit lane compares to mask registers) + BW (byte
// shuffles/SAD for the popcount); VPOPCNTDQ is deliberately not assumed
// so the tier runs on every avx512f+bw machine.

#include "kernels/kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

#include <cstdint>

namespace soc::kernels {

namespace {

constexpr int kBlock = CoverageBlockSet::kBlockQueries;
constexpr int kLanes = 8;  // 64-bit lanes per __m512i

inline __m512i Popcount64x8(__m512i v) {
  const __m512i lut = _mm512_broadcast_i32x4(
      _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
  const __m512i low_nibble = _mm512_set1_epi8(0x0f);
  const __m512i lo = _mm512_and_si512(v, low_nibble);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low_nibble);
  const __m512i counts = _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                                         _mm512_shuffle_epi8(lut, hi));
  return _mm512_sad_epu8(counts, _mm512_setzero_si512());
}

std::uint64_t Avx512SubsetMask(const std::uint64_t* block, int words,
                               const std::uint64_t* not_sel) {
  std::uint64_t mask = 0;
  for (int j = 0; j < kBlock; j += kLanes) {
    __m512i violation = _mm512_setzero_si512();
    for (int w = 0; w < words; ++w) {
      const __m512i q = _mm512_load_si512(
          block + static_cast<std::size_t>(w) * kBlock + j);
      violation = _mm512_or_si512(
          violation, _mm512_and_si512(q, _mm512_set1_epi64(static_cast<long long>(
                                             not_sel[w]))));
    }
    // testn: lane mask of (violation & violation) == 0.
    const __mmask8 zero = _mm512_testn_epi64_mask(violation, violation);
    mask |= static_cast<std::uint64_t>(zero) << j;
  }
  return mask;
}

std::uint64_t Avx512SupersetMask(const std::uint64_t* block, int words,
                                 const std::uint64_t* sel) {
  std::uint64_t mask = 0;
  for (int j = 0; j < kBlock; j += kLanes) {
    __m512i violation = _mm512_setzero_si512();
    for (int w = 0; w < words; ++w) {
      const __m512i q = _mm512_load_si512(
          block + static_cast<std::size_t>(w) * kBlock + j);
      violation = _mm512_or_si512(
          violation,
          _mm512_andnot_si512(
              q, _mm512_set1_epi64(static_cast<long long>(sel[w]))));
    }
    const __mmask8 zero = _mm512_testn_epi64_mask(violation, violation);
    mask |= static_cast<std::uint64_t>(zero) << j;
  }
  return mask;
}

std::uint64_t Avx512IntersectMask(const std::uint64_t* block, int words,
                                  const std::uint64_t* other) {
  std::uint64_t mask = 0;
  for (int j = 0; j < kBlock; j += kLanes) {
    __m512i overlap = _mm512_setzero_si512();
    for (int w = 0; w < words; ++w) {
      const __m512i q = _mm512_load_si512(
          block + static_cast<std::size_t>(w) * kBlock + j);
      overlap = _mm512_or_si512(
          overlap, _mm512_and_si512(q, _mm512_set1_epi64(static_cast<long long>(
                                           other[w]))));
    }
    const __mmask8 nonzero =
        _mm512_test_epi64_mask(overlap, overlap);
    mask |= static_cast<std::uint64_t>(nonzero) << j;
  }
  return mask;
}

void Avx512MissingLeMask(const std::uint64_t* block, int words,
                         const std::uint64_t* not_sel, std::uint64_t limit,
                         std::uint64_t* eq0, std::uint64_t* le) {
  std::uint64_t eq0_mask = 0;
  std::uint64_t le_mask = 0;
  const __m512i limit_vec =
      _mm512_set1_epi64(static_cast<long long>(limit));
  for (int j = 0; j < kBlock; j += kLanes) {
    __m512i missing = _mm512_setzero_si512();
    for (int w = 0; w < words; ++w) {
      const __m512i q = _mm512_load_si512(
          block + static_cast<std::size_t>(w) * kBlock + j);
      const __m512i masked = _mm512_and_si512(
          q, _mm512_set1_epi64(static_cast<long long>(not_sel[w])));
      missing = _mm512_add_epi64(missing, Popcount64x8(masked));
    }
    const __mmask8 zero = _mm512_testn_epi64_mask(missing, missing);
    eq0_mask |= static_cast<std::uint64_t>(zero) << j;
    const __mmask8 le_lanes = _mm512_cmple_epu64_mask(missing, limit_vec);
    le_mask |= static_cast<std::uint64_t>(le_lanes) << j;
  }
  *eq0 = eq0_mask;
  *le = le_mask;
}

constexpr KernelOps kAvx512Ops = {
    "avx512",
    &Avx512SubsetMask,
    &Avx512SupersetMask,
    &Avx512IntersectMask,
    &Avx512MissingLeMask,
};

}  // namespace

namespace internal {
const KernelOps* Avx512Ops() { return &kAvx512Ops; }
}  // namespace internal

}  // namespace soc::kernels

#else  // !(__AVX512F__ && __AVX512BW__)

namespace soc::kernels::internal {
const KernelOps* Avx512Ops() { return nullptr; }
}  // namespace soc::kernels::internal

#endif  // defined(__AVX512F__) && defined(__AVX512BW__)
