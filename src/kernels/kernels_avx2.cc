// AVX2 tier: 4 queries per vector, 16 vectors per 64-query block.
//
// This TU is compiled with -mavx2 (see src/kernels/CMakeLists.txt) and
// its contents are fenced by the ISA macro, so on compilers/targets
// without AVX2 it collapses to the nullptr registration below and the
// dispatcher falls back to scalar (lint rule "kernel-dispatch" enforces
// exactly this structure).

#include "kernels/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>

namespace soc::kernels {

namespace {

constexpr int kBlock = CoverageBlockSet::kBlockQueries;
constexpr int kLanes = 4;  // 64-bit lanes per __m256i

// Per-lane popcount of 64-bit lanes: nibble-LUT PSHUFB then SAD against
// zero to sum the 8 byte-counts of each lane.
inline __m256i Popcount64x4(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_nibble = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_nibble);
  const __m256i hi =
      _mm256_and_si256(_mm256_srli_epi16(v, 4), low_nibble);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

// 4-bit mask of lanes that are all-zero.
inline unsigned ZeroLaneMask(__m256i v) {
  const __m256i eq = _mm256_cmpeq_epi64(v, _mm256_setzero_si256());
  return static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(eq)));
}

std::uint64_t Avx2SubsetMask(const std::uint64_t* block, int words,
                             const std::uint64_t* not_sel) {
  std::uint64_t mask = 0;
  for (int j = 0; j < kBlock; j += kLanes) {
    __m256i violation = _mm256_setzero_si256();
    for (int w = 0; w < words; ++w) {
      const __m256i q = _mm256_load_si256(reinterpret_cast<const __m256i*>(
          block + static_cast<std::size_t>(w) * kBlock + j));
      violation = _mm256_or_si256(
          violation,
          _mm256_and_si256(q, _mm256_set1_epi64x(
                                  static_cast<long long>(not_sel[w]))));
    }
    mask |= static_cast<std::uint64_t>(ZeroLaneMask(violation)) << j;
  }
  return mask;
}

std::uint64_t Avx2SupersetMask(const std::uint64_t* block, int words,
                               const std::uint64_t* sel) {
  std::uint64_t mask = 0;
  for (int j = 0; j < kBlock; j += kLanes) {
    __m256i violation = _mm256_setzero_si256();
    for (int w = 0; w < words; ++w) {
      const __m256i q = _mm256_load_si256(reinterpret_cast<const __m256i*>(
          block + static_cast<std::size_t>(w) * kBlock + j));
      // sel & ~q
      violation = _mm256_or_si256(
          violation,
          _mm256_andnot_si256(
              q, _mm256_set1_epi64x(static_cast<long long>(sel[w]))));
    }
    mask |= static_cast<std::uint64_t>(ZeroLaneMask(violation)) << j;
  }
  return mask;
}

std::uint64_t Avx2IntersectMask(const std::uint64_t* block, int words,
                                const std::uint64_t* other) {
  std::uint64_t mask = 0;
  for (int j = 0; j < kBlock; j += kLanes) {
    __m256i overlap = _mm256_setzero_si256();
    for (int w = 0; w < words; ++w) {
      const __m256i q = _mm256_load_si256(reinterpret_cast<const __m256i*>(
          block + static_cast<std::size_t>(w) * kBlock + j));
      overlap = _mm256_or_si256(
          overlap, _mm256_and_si256(q, _mm256_set1_epi64x(
                                           static_cast<long long>(other[w]))));
    }
    const unsigned zero = ZeroLaneMask(overlap);
    mask |= static_cast<std::uint64_t>(~zero & 0xfu) << j;
  }
  return mask;
}

void Avx2MissingLeMask(const std::uint64_t* block, int words,
                       const std::uint64_t* not_sel, std::uint64_t limit,
                       std::uint64_t* eq0, std::uint64_t* le) {
  std::uint64_t eq0_mask = 0;
  std::uint64_t le_mask = 0;
  const __m256i limit_vec =
      _mm256_set1_epi64x(static_cast<long long>(limit));
  for (int j = 0; j < kBlock; j += kLanes) {
    __m256i missing = _mm256_setzero_si256();
    for (int w = 0; w < words; ++w) {
      const __m256i q = _mm256_load_si256(reinterpret_cast<const __m256i*>(
          block + static_cast<std::size_t>(w) * kBlock + j));
      const __m256i masked = _mm256_and_si256(
          q, _mm256_set1_epi64x(static_cast<long long>(not_sel[w])));
      missing = _mm256_add_epi64(missing, Popcount64x4(masked));
    }
    eq0_mask |= static_cast<std::uint64_t>(ZeroLaneMask(missing)) << j;
    // Counts and limits are tiny (≤ the attribute width), so the signed
    // 64-bit compare is exact.
    const __m256i gt = _mm256_cmpgt_epi64(missing, limit_vec);
    const unsigned gt_mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(gt)));
    le_mask |= static_cast<std::uint64_t>(~gt_mask & 0xfu) << j;
  }
  *eq0 = eq0_mask;
  *le = le_mask;
}

constexpr KernelOps kAvx2Ops = {
    "avx2",
    &Avx2SubsetMask,
    &Avx2SupersetMask,
    &Avx2IntersectMask,
    &Avx2MissingLeMask,
};

}  // namespace

namespace internal {
const KernelOps* Avx2Ops() { return &kAvx2Ops; }
}  // namespace internal

}  // namespace soc::kernels

#else  // !defined(__AVX2__)

namespace soc::kernels::internal {
const KernelOps* Avx2Ops() { return nullptr; }
}  // namespace soc::kernels::internal

#endif  // defined(__AVX2__)
