// Portable scalar tier: the reference the SIMD tiers must match bit for
// bit. Deliberately straight-line — no manual unrolling or cleverness —
// so its correctness is auditable by eye.

#include <bit>
#include <cstdint>

#include "kernels/kernels.h"

namespace soc::kernels {

namespace {

constexpr int kBlock = CoverageBlockSet::kBlockQueries;

std::uint64_t ScalarSubsetMask(const std::uint64_t* block, int words,
                               const std::uint64_t* not_sel) {
  std::uint64_t mask = 0;
  for (int j = 0; j < kBlock; ++j) {
    std::uint64_t violation = 0;
    for (int w = 0; w < words; ++w) {
      violation |= block[static_cast<std::size_t>(w) * kBlock + j] & not_sel[w];
    }
    mask |= static_cast<std::uint64_t>(violation == 0) << j;
  }
  return mask;
}

std::uint64_t ScalarSupersetMask(const std::uint64_t* block, int words,
                                 const std::uint64_t* sel) {
  std::uint64_t mask = 0;
  for (int j = 0; j < kBlock; ++j) {
    std::uint64_t violation = 0;
    for (int w = 0; w < words; ++w) {
      violation |=
          sel[w] & ~block[static_cast<std::size_t>(w) * kBlock + j];
    }
    mask |= static_cast<std::uint64_t>(violation == 0) << j;
  }
  return mask;
}

std::uint64_t ScalarIntersectMask(const std::uint64_t* block, int words,
                                  const std::uint64_t* other) {
  std::uint64_t mask = 0;
  for (int j = 0; j < kBlock; ++j) {
    std::uint64_t overlap = 0;
    for (int w = 0; w < words; ++w) {
      overlap |= block[static_cast<std::size_t>(w) * kBlock + j] & other[w];
    }
    mask |= static_cast<std::uint64_t>(overlap != 0) << j;
  }
  return mask;
}

void ScalarMissingLeMask(const std::uint64_t* block, int words,
                         const std::uint64_t* not_sel, std::uint64_t limit,
                         std::uint64_t* eq0, std::uint64_t* le) {
  std::uint64_t eq0_mask = 0;
  std::uint64_t le_mask = 0;
  for (int j = 0; j < kBlock; ++j) {
    std::uint64_t missing = 0;
    for (int w = 0; w < words; ++w) {
      missing += static_cast<std::uint64_t>(std::popcount(
          block[static_cast<std::size_t>(w) * kBlock + j] & not_sel[w]));
    }
    eq0_mask |= static_cast<std::uint64_t>(missing == 0) << j;
    le_mask |= static_cast<std::uint64_t>(missing <= limit) << j;
  }
  *eq0 = eq0_mask;
  *le = le_mask;
}

constexpr KernelOps kScalarOps = {
    "scalar",
    &ScalarSubsetMask,
    &ScalarSupersetMask,
    &ScalarIntersectMask,
    &ScalarMissingLeMask,
};

}  // namespace

namespace internal {
const KernelOps* ScalarOps() { return &kScalarOps; }
}  // namespace internal

}  // namespace soc::kernels
