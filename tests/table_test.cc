#include "boolean/table.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace soc {
namespace {

TEST(BooleanTableTest, PaperExampleShape) {
  BooleanTable db = testdata::PaperDatabase();
  EXPECT_EQ(db.num_rows(), 7);
  EXPECT_EQ(db.num_attributes(), 6);
  EXPECT_TRUE(db.row(0).Test(1));   // t1 has FourDoor
  EXPECT_FALSE(db.row(0).Test(0));  // t1 lacks AC
}

TEST(BooleanTableTest, DominationMatchesPaperExample) {
  // Paper Sec II.B: t' = [1,1,0,1,0,1] dominates t1, t4, t5, t6 (4 tuples).
  BooleanTable db = testdata::PaperDatabase();
  DynamicBitset t_prime = DynamicBitset::FromString("110101");
  EXPECT_EQ(db.CountDominatedBy(t_prime), 4);
  EXPECT_TRUE(db.Dominates(t_prime, 0));   // t1
  EXPECT_FALSE(db.Dominates(t_prime, 1));  // t2 has Turbo
  EXPECT_FALSE(db.Dominates(t_prime, 2));  // t3 has AutoTrans
  EXPECT_TRUE(db.Dominates(t_prime, 3));   // t4
  EXPECT_TRUE(db.Dominates(t_prime, 4));   // t5
  EXPECT_TRUE(db.Dominates(t_prime, 5));   // t6
  EXPECT_FALSE(db.Dominates(t_prime, 6));  // t7 has Turbo
}

TEST(BooleanTableTest, EveryTupleDominatesItself) {
  BooleanTable db = testdata::PaperDatabase();
  for (int i = 0; i < db.num_rows(); ++i) {
    EXPECT_TRUE(db.Dominates(db.row(i), i));
  }
}

TEST(BooleanTableTest, AttributeFrequencies) {
  BooleanTable db = testdata::PaperDatabase();
  const std::vector<int> freq = db.AttributeFrequencies();
  // AC appears in t3,t4,t5; FourDoor in t1,t2,t4,t5,t6; Turbo in t2,t7;
  // PowerDoors in t1,t3,t4,t6,t7; AutoTrans in t3; PowerBrakes in t3,t4.
  EXPECT_EQ(freq, (std::vector<int>{3, 5, 2, 5, 1, 2}));
}

TEST(BooleanTableTest, AddRowFromIndices) {
  BooleanTable db(AttributeSchema::Anonymous(5));
  db.AddRowFromIndices({0, 4});
  EXPECT_EQ(db.row(0).ToString(), "10001");
}

TEST(BooleanTableTest, CsvRoundTrip) {
  BooleanTable db = testdata::PaperDatabase();
  const std::string csv = db.ToCsv();
  auto restored = BooleanTable::FromCsv(csv);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_rows(), db.num_rows());
  EXPECT_TRUE(restored->schema() == db.schema());
  for (int i = 0; i < db.num_rows(); ++i) {
    EXPECT_EQ(restored->row(i), db.row(i));
  }
}

TEST(BooleanTableTest, FromCsvRejectsNonBooleanCell) {
  auto result = BooleanTable::FromCsv("a,b\n1,2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(BooleanTableTest, FileRoundTrip) {
  BooleanTable db = testdata::PaperDatabase();
  const std::string path = ::testing::TempDir() + "/soc_table_test.csv";
  ASSERT_TRUE(db.SaveCsvFile(path).ok());
  auto loaded = BooleanTable::LoadCsvFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 7);
  EXPECT_EQ(loaded->row(2), db.row(2));
  std::remove(path.c_str());
}

TEST(BooleanTableTest, EmptyTableDominatedCountIsZero) {
  BooleanTable db(AttributeSchema::Anonymous(3));
  DynamicBitset candidate(3);
  candidate.SetAll();
  EXPECT_EQ(db.CountDominatedBy(candidate), 0);
}

}  // namespace
}  // namespace soc
