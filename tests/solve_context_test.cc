#include "common/solve_context.h"

#include <gtest/gtest.h>

#include <atomic>

#include "common/timer.h"

namespace soc {
namespace {

TEST(SolveContextTest, UnconstrainedNeverStops) {
  SolveContext context;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(context.Checkpoint());
  EXPECT_FALSE(context.stop_requested());
  EXPECT_EQ(context.stop_reason(), StopReason::kNone);
  EXPECT_EQ(context.ticks(), 1000);
}

TEST(SolveContextTest, FirstTickConsultsTheClock) {
  // A deadline that is already over must be noticed on the very first
  // checkpoint, not after kStopCheckInterval ticks.
  SolveContext context;
  context.set_deadline(Deadline::AfterSeconds(0.0));
  EXPECT_TRUE(context.Checkpoint());
  EXPECT_EQ(context.stop_reason(), StopReason::kDeadline);
  EXPECT_EQ(context.ticks(), 1);
}

TEST(SolveContextTest, CancelFlagIsPolledAtTheCadence) {
  std::atomic<bool> cancel{false};
  SolveContext context;
  context.set_cancel_flag(&cancel);
  // Ticks 1..interval: flag unset, no stop.
  for (int i = 0; i < kStopCheckInterval; ++i) {
    EXPECT_FALSE(context.Checkpoint());
  }
  cancel.store(true);
  // The flag is only consulted every kStopCheckInterval ticks, so at most
  // one full interval of extra work happens before the stop lands.
  int extra = 0;
  while (!context.Checkpoint()) ++extra;
  EXPECT_LT(extra, kStopCheckInterval);
  EXPECT_EQ(context.stop_reason(), StopReason::kCancelled);
}

TEST(SolveContextTest, TickBudgetTripsExactly) {
  SolveContext context;
  context.set_tick_budget(10);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(context.Checkpoint()) << i;
  EXPECT_TRUE(context.Checkpoint());
  EXPECT_EQ(context.stop_reason(), StopReason::kTickBudget);
  EXPECT_EQ(context.ticks(), 11);
}

TEST(SolveContextTest, InjectedFaultFiresDeterministically) {
  SolveContext context;
  context.InjectFault(StopReason::kDeadline, 5);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(context.Checkpoint()) << i;
  EXPECT_TRUE(context.Checkpoint());
  EXPECT_EQ(context.stop_reason(), StopReason::kDeadline);
  EXPECT_EQ(context.ticks(), 5);
}

TEST(SolveContextTest, StopIsSticky) {
  SolveContext context;
  context.InjectFault(StopReason::kCancelled, 1);
  EXPECT_TRUE(context.Checkpoint());
  const std::int64_t ticks = context.ticks();
  // Further checkpoints keep reporting the stop without advancing ticks or
  // rewriting the reason.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(context.Checkpoint());
  EXPECT_EQ(context.ticks(), ticks);
  EXPECT_EQ(context.stop_reason(), StopReason::kCancelled);
}

TEST(SolveContextTest, StopReasonNamesAreStable) {
  EXPECT_STREQ(StopReasonToString(StopReason::kNone), "none");
  EXPECT_STREQ(StopReasonToString(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(StopReasonToString(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(StopReasonToString(StopReason::kTickBudget), "tick_budget");
  EXPECT_STREQ(StopReasonToString(StopReason::kResourceLimit),
               "resource_limit");
}

TEST(SolveContextTest, CadenceConstantsAgree) {
  // The shared cadence must stay a power of two for the & masking used by
  // the simplex and the checkpoint fast path.
  EXPECT_EQ(kStopCheckInterval, kStopCheckMask + 1);
  EXPECT_EQ(kStopCheckInterval & kStopCheckMask, 0);
}

}  // namespace
}  // namespace soc
