// Property tests of the simplex solver on structured LP families with
// independently-known optima:
//
//  * assignment problems — the LP relaxation of the assignment polytope is
//    integral (Birkhoff–von Neumann), so the simplex optimum must equal
//    the best permutation, found by brute force;
//  * transportation-style problems with equality supplies/demands
//    (exercises phase 1 / artificial variables);
//  * fractional knapsack — closed-form greedy optimum.

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace soc::lp {
namespace {

// Max-value assignment via permutation enumeration.
double BruteForceAssignment(const std::vector<std::vector<double>>& value) {
  const int n = static_cast<int>(value.size());
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = -1e300;
  do {
    double total = 0;
    for (int i = 0; i < n; ++i) total += value[i][perm[i]];
    best = std::max(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

class AssignmentLpTest : public ::testing::TestWithParam<int> {};

TEST_P(AssignmentLpTest, SimplexMatchesBruteForce) {
  Rng rng(GetParam() * 101 + 7);
  const int n = rng.NextInt(2, 5);
  std::vector<std::vector<double>> value(n, std::vector<double>(n));
  for (auto& row : value) {
    for (double& v : row) v = rng.NextInt(0, 20);
  }

  LinearModel model(ObjectiveSense::kMaximize);
  std::vector<std::vector<int>> x(n, std::vector<int>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      x[i][j] = model.AddVariable("x", 0, 1, value[i][j]);
    }
  }
  for (int i = 0; i < n; ++i) {
    const int row = model.AddConstraint("row", ConstraintSense::kEqual, 1);
    for (int j = 0; j < n; ++j) model.AddTerm(row, x[i][j], 1);
  }
  for (int j = 0; j < n; ++j) {
    const int col = model.AddConstraint("col", ConstraintSense::kEqual, 1);
    for (int i = 0; i < n; ++i) model.AddTerm(col, x[i][j], 1);
  }

  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, BruteForceAssignment(value), 1e-6);
  // Integrality of the assignment polytope: a vertex optimum is a
  // permutation matrix (simplex returns vertices).
  for (int i = 0; i < n; ++i) {
    double row_sum = 0;
    for (int j = 0; j < n; ++j) {
      const double v = result->x[x[i][j]];
      EXPECT_NEAR(v * (1 - v), 0.0, 1e-6) << "fractional vertex";
      row_sum += v;
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomAssignments, AssignmentLpTest,
                         ::testing::Range(0, 20));

TEST(TransportationLpTest, BalancedSupplyDemand) {
  // 2 suppliers (supply 30, 20), 3 consumers (demand 10, 25, 15); cost
  // minimization with known optimum computed by hand:
  // costs: s0: [8, 6, 10], s1: [9, 12, 13].
  // Cheapest: s0->c1 (6) as much as possible... optimum = 10*? compute via
  // enumeration below instead of hand-math: LP must match min over a fine
  // grid of the two free variables (the polytope is 2-dimensional).
  LinearModel model(ObjectiveSense::kMinimize);
  const double cost[2][3] = {{8, 6, 10}, {9, 12, 13}};
  const double supply[2] = {30, 20};
  const double demand[3] = {10, 25, 15};
  int x[2][3];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      x[i][j] = model.AddVariable("x", 0, 50, cost[i][j]);
    }
  }
  for (int i = 0; i < 2; ++i) {
    const int row =
        model.AddConstraint("supply", ConstraintSense::kEqual, supply[i]);
    for (int j = 0; j < 3; ++j) model.AddTerm(row, x[i][j], 1);
  }
  for (int j = 0; j < 3; ++j) {
    const int row =
        model.AddConstraint("demand", ConstraintSense::kEqual, demand[j]);
    for (int i = 0; i < 2; ++i) model.AddTerm(row, x[i][j], 1);
  }
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  // Grid reference over the two free variables (x00, x01):
  double best = 1e300;
  for (double a = 0; a <= 10; a += 0.5) {    // x00 <= demand0
    for (double b = 0; b <= 25; b += 0.5) {  // x01 <= demand1
      const double c = supply[0] - a - b;    // x02
      if (c < 0 || c > demand[2]) continue;
      const double d = demand[0] - a;
      const double e = demand[1] - b;
      const double f = demand[2] - c;
      if (d < 0 || e < 0 || f < 0) continue;
      best = std::min(best, 8 * a + 6 * b + 10 * c + 9 * d + 12 * e + 13 * f);
    }
  }
  EXPECT_NEAR(result->objective, best, 1e-6);
  EXPECT_TRUE(model.IsFeasible(result->x, 1e-6));
}

TEST(FractionalKnapsackTest, MatchesGreedyClosedForm) {
  Rng rng(404);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = rng.NextInt(3, 8);
    std::vector<double> value(n), weight(n);
    for (int i = 0; i < n; ++i) {
      value[i] = 1 + rng.NextInt(1, 30);
      weight[i] = 1 + rng.NextInt(1, 10);
    }
    const double capacity = 1 + rng.NextInt(5, 25);

    LinearModel model(ObjectiveSense::kMaximize);
    for (int i = 0; i < n; ++i) model.AddVariable("x", 0, 1, value[i]);
    const int cap =
        model.AddConstraint("cap", ConstraintSense::kLessEqual, capacity);
    for (int i = 0; i < n; ++i) model.AddTerm(cap, i, weight[i]);
    auto result = SolveLp(model);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->status, SolveStatus::kOptimal);

    // Greedy by density is optimal for fractional knapsack.
    std::vector<int> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return value[a] / weight[a] > value[b] / weight[b];
    });
    double remaining = capacity;
    double expected = 0;
    for (int i : order) {
      const double take = std::min(1.0, remaining / weight[i]);
      expected += take * value[i];
      remaining -= take * weight[i];
      if (remaining <= 1e-12) break;
    }
    EXPECT_NEAR(result->objective, expected, 1e-6) << "trial " << trial;
  }
}

TEST(SimplexLimitsTest, IterationLimitSurfaces) {
  Rng rng(7);
  LinearModel model(ObjectiveSense::kMaximize);
  const int n = 30;
  for (int j = 0; j < n; ++j) {
    model.AddVariable("x", 0, 1, rng.NextDouble());
  }
  for (int i = 0; i < n; ++i) {
    const int row = model.AddConstraint("c", ConstraintSense::kLessEqual,
                                        1 + rng.NextDouble());
    for (int j = 0; j < n; ++j) {
      if (rng.NextBernoulli(0.5)) model.AddTerm(row, j, rng.NextDouble());
    }
  }
  SimplexOptions options;
  options.max_iterations = 2;
  auto result = SolveLp(model, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, SolveStatus::kIterationLimit);
}

}  // namespace
}  // namespace soc::lp
