#include "itemsets/transaction_db.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace soc::itemsets {
namespace {

TransactionDatabase MakeSmallDb() {
  // 4 transactions over 5 items.
  std::vector<DynamicBitset> rows = {
      DynamicBitset::FromString("11010"),
      DynamicBitset::FromString("01110"),
      DynamicBitset::FromString("11000"),
      DynamicBitset::FromString("00011"),
  };
  return TransactionDatabase(std::move(rows));
}

TEST(TransactionDbTest, Dimensions) {
  TransactionDatabase db = MakeSmallDb();
  EXPECT_EQ(db.num_items(), 5);
  EXPECT_EQ(db.num_transactions(), 4);
}

TEST(TransactionDbTest, VerticalColumnsMatchRows) {
  TransactionDatabase db = MakeSmallDb();
  // Item 1 appears in transactions 0, 1, 2.
  EXPECT_EQ(db.item_tids(1).SetBits(), (std::vector<int>{0, 1, 2}));
  // Item 4 appears only in transaction 3.
  EXPECT_EQ(db.item_tids(4).SetBits(), (std::vector<int>{3}));
  for (int i = 0; i < db.num_items(); ++i) {
    for (int t = 0; t < db.num_transactions(); ++t) {
      EXPECT_EQ(db.item_tids(i).Test(t), db.transaction(t).Test(i));
    }
  }
}

TEST(TransactionDbTest, SupportOfItemsets) {
  TransactionDatabase db = MakeSmallDb();
  EXPECT_EQ(db.Support(DynamicBitset::FromString("10000")), 2);  // {0}
  EXPECT_EQ(db.Support(DynamicBitset::FromString("11000")), 2);  // {0,1}
  EXPECT_EQ(db.Support(DynamicBitset::FromString("01100")), 1);  // {1,2}
  EXPECT_EQ(db.Support(DynamicBitset::FromString("10001")), 0);  // {0,4}
}

TEST(TransactionDbTest, EmptyItemsetSupportedByAll) {
  TransactionDatabase db = MakeSmallDb();
  EXPECT_EQ(db.Support(DynamicBitset(5)), 4);
}

TEST(TransactionDbTest, TidsIntersection) {
  TransactionDatabase db = MakeSmallDb();
  DynamicBitset tids = db.Tids(DynamicBitset::FromString("01000"));
  EXPECT_EQ(tids.SetBits(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(db.ExtensionSupport(tids, 0), 2);
  EXPECT_EQ(db.ExtensionSupport(tids, 2), 1);
  EXPECT_EQ(db.ExtensionSupport(tids, 4), 0);
}

TEST(TransactionDbTest, ItemSupports) {
  TransactionDatabase db = MakeSmallDb();
  EXPECT_EQ(db.ItemSupports(), (std::vector<int>{2, 3, 1, 3, 1}));
}

TEST(TransactionDbTest, FromComplementedQueryLog) {
  // Complementing the paper's query log: ~q1 = 001111.
  TransactionDatabase db =
      TransactionDatabase::FromComplementedQueryLog(testdata::PaperQueryLog());
  EXPECT_EQ(db.num_transactions(), 5);
  EXPECT_EQ(db.num_items(), 6);
  EXPECT_EQ(db.transaction(0).ToString(), "001111");
  // freq(~t) over ~Q == number of queries disjoint from ~t == number of
  // queries contained in t.
  DynamicBitset t = testdata::PaperNewTuple();
  EXPECT_EQ(db.Support(t.Complement()), 4);
}

TEST(TransactionDbTest, FromBooleanTable) {
  TransactionDatabase db =
      TransactionDatabase::FromBooleanTable(testdata::PaperDatabase());
  EXPECT_EQ(db.num_transactions(), 7);
  // FourDoor (item 1) appears in 5 cars.
  EXPECT_EQ(db.item_tids(1).Count(), 5u);
}

TEST(TransactionDbTest, EmptyDatabase) {
  TransactionDatabase db((std::vector<DynamicBitset>()));
  EXPECT_EQ(db.num_items(), 0);
  EXPECT_EQ(db.num_transactions(), 0);
  EXPECT_EQ(db.Support(DynamicBitset(0)), 0);
}

}  // namespace
}  // namespace soc::itemsets
