// Cross-checked tests of the four itemset miners: Apriori and Eclat must
// agree exactly; the maximal DFS miner must equal the maximal subsets of
// the frequent collection; the random walk must find the same maximal sets
// on small inputs.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "itemsets/apriori.h"
#include "itemsets/eclat.h"
#include "itemsets/maximal_dfs.h"
#include "itemsets/random_walk.h"
#include "itemsets/transaction_db.h"
#include "paper_example.h"

namespace soc::itemsets {
namespace {

using ItemsetMap = std::map<DynamicBitset, int>;

ItemsetMap ToMap(const std::vector<FrequentItemset>& itemsets) {
  ItemsetMap map;
  for (const FrequentItemset& f : itemsets) {
    const bool inserted = map.emplace(f.items, f.support).second;
    EXPECT_TRUE(inserted) << "duplicate itemset reported";
  }
  return map;
}

TransactionDatabase MakeClassicDb() {
  // The canonical Agrawal-Srikant style example over items {0..4}:
  std::vector<DynamicBitset> rows = {
      DynamicBitset::FromString("11100"),  // {0,1,2}
      DynamicBitset::FromString("01110"),  // {1,2,3}
      DynamicBitset::FromString("11010"),  // {0,1,3}
      DynamicBitset::FromString("01100"),  // {1,2}
      DynamicBitset::FromString("10100"),  // {0,2}
      DynamicBitset::FromString("01101"),  // {1,2,4}
  };
  return TransactionDatabase(std::move(rows));
}

// Reference miner: enumerate all 2^n itemsets (n small).
ItemsetMap BruteForceFrequent(const TransactionDatabase& db, int min_support) {
  ItemsetMap map;
  const int n = db.num_items();
  for (int mask = 1; mask < (1 << n); ++mask) {
    DynamicBitset itemset(n);
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1) itemset.Set(i);
    }
    const int support = db.Support(itemset);
    if (support >= min_support) map.emplace(std::move(itemset), support);
  }
  return map;
}

ItemsetMap BruteForceMaximal(const TransactionDatabase& db, int min_support) {
  ItemsetMap frequent = BruteForceFrequent(db, min_support);
  ItemsetMap maximal;
  for (const auto& [items, support] : frequent) {
    bool is_maximal = true;
    for (const auto& [other, other_support] : frequent) {
      if (items.IsProperSubsetOf(other)) {
        is_maximal = false;
        break;
      }
    }
    if (is_maximal) maximal.emplace(items, support);
  }
  if (maximal.empty() && db.num_transactions() >= min_support) {
    maximal.emplace(DynamicBitset(db.num_items()), db.num_transactions());
  }
  return maximal;
}

TEST(AprioriTest, ClassicExample) {
  TransactionDatabase db = MakeClassicDb();
  auto result = MineFrequentItemsetsApriori(db, 3);
  ASSERT_TRUE(result.ok());
  ItemsetMap map = ToMap(*result);
  EXPECT_EQ(map, BruteForceFrequent(db, 3));
  // Spot values: {1} support 5, {1,2} support 4, {0,1} support 2 (absent).
  EXPECT_EQ(map.at(DynamicBitset::FromString("01000")), 5);
  EXPECT_EQ(map.at(DynamicBitset::FromString("01100")), 4);
  EXPECT_FALSE(map.contains(DynamicBitset::FromString("11000")));
}

TEST(AprioriTest, ThresholdOneFindsEverything) {
  TransactionDatabase db = MakeClassicDb();
  auto result = MineFrequentItemsetsApriori(db, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ToMap(*result), BruteForceFrequent(db, 1));
}

TEST(AprioriTest, HighThresholdYieldsNothing) {
  TransactionDatabase db = MakeClassicDb();
  auto result = MineFrequentItemsetsApriori(db, 7);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(AprioriTest, MaxLevelStopsEarly) {
  TransactionDatabase db = MakeClassicDb();
  AprioriOptions options;
  options.max_level = 1;
  auto result = MineFrequentItemsetsApriori(db, 1, options);
  ASSERT_TRUE(result.ok());
  for (const FrequentItemset& f : *result) {
    EXPECT_EQ(f.items.Count(), 1u);
  }
}

TEST(AprioriTest, ExplosionGuardTrips) {
  // Dense database: every transaction contains every item -> 2^20 - 1
  // frequent itemsets.
  std::vector<DynamicBitset> rows;
  DynamicBitset full(20);
  full.SetAll();
  for (int i = 0; i < 3; ++i) rows.push_back(full);
  TransactionDatabase db(std::move(rows));
  AprioriOptions options;
  options.max_itemsets = 1000;
  auto result = MineFrequentItemsetsApriori(db, 1, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(EclatTest, MatchesAprioriOnClassicExample) {
  TransactionDatabase db = MakeClassicDb();
  for (int min_support = 1; min_support <= 6; ++min_support) {
    auto apriori = MineFrequentItemsetsApriori(db, min_support);
    auto eclat = MineFrequentItemsetsEclat(db, min_support);
    ASSERT_TRUE(apriori.ok());
    ASSERT_TRUE(eclat.ok());
    EXPECT_EQ(ToMap(*apriori), ToMap(*eclat)) << "r=" << min_support;
  }
}

TEST(EclatTest, ExplosionGuardTrips) {
  std::vector<DynamicBitset> rows;
  DynamicBitset full(25);
  full.SetAll();
  rows.push_back(full);
  TransactionDatabase db(std::move(rows));
  EclatOptions options;
  options.max_itemsets = 500;
  auto result = MineFrequentItemsetsEclat(db, 1, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(MaximalDfsTest, ClassicExample) {
  TransactionDatabase db = MakeClassicDb();
  auto result = MineMaximalItemsetsDfs(db, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ToMap(*result), BruteForceMaximal(db, 3));
}

TEST(MaximalDfsTest, AllThresholdsMatchBruteForce) {
  TransactionDatabase db = MakeClassicDb();
  for (int min_support = 1; min_support <= 6; ++min_support) {
    auto result = MineMaximalItemsetsDfs(db, min_support);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(ToMap(*result), BruteForceMaximal(db, min_support))
        << "r=" << min_support;
  }
}

TEST(MaximalDfsTest, DenseComplementedQueryLog) {
  // The actual workload shape of MaxFreqItemSets-SOC-CB-QL: a dense table.
  TransactionDatabase db =
      TransactionDatabase::FromComplementedQueryLog(testdata::PaperQueryLog());
  for (int min_support = 1; min_support <= 5; ++min_support) {
    auto result = MineMaximalItemsetsDfs(db, min_support);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(ToMap(*result), BruteForceMaximal(db, min_support))
        << "r=" << min_support;
  }
}

TEST(MaximalDfsTest, EmptyItemsetWhenNoItemFrequent) {
  std::vector<DynamicBitset> rows = {DynamicBitset::FromString("10"),
                                     DynamicBitset::FromString("01")};
  TransactionDatabase db(std::move(rows));
  auto result = MineMaximalItemsetsDfs(db, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_TRUE((*result)[0].items.None());
  EXPECT_EQ((*result)[0].support, 2);
}

TEST(MaximalDfsTest, NothingWhenThresholdExceedsTransactions) {
  std::vector<DynamicBitset> rows = {DynamicBitset::FromString("11")};
  TransactionDatabase db(std::move(rows));
  auto result = MineMaximalItemsetsDfs(db, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(MaximalDfsTest, IsMaximalFrequentHelper) {
  TransactionDatabase db = MakeClassicDb();
  // {1,2} has support 4 and extension {1,2,x} all below 3 except... check:
  // {0,1,2}: t0 only -> 1; {1,2,3}: t1 -> 1; {1,2,4}: t5 -> 1. Maximal at 3.
  EXPECT_TRUE(IsMaximalFrequent(db, DynamicBitset::FromString("01100"), 3));
  EXPECT_FALSE(IsMaximalFrequent(db, DynamicBitset::FromString("01000"), 3));
  EXPECT_FALSE(IsMaximalFrequent(db, DynamicBitset::FromString("10010"), 3));
}

TEST(RandomWalkTest, SingleWalkReachesMaximalItemset) {
  TransactionDatabase db = MakeClassicDb();
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    FrequentItemset found = TwoPhaseRandomWalk(db, 3, rng);
    EXPECT_GE(found.support, 3);
    EXPECT_TRUE(IsMaximalFrequent(db, found.items, 3));
  }
}

TEST(RandomWalkTest, FindsAllMaximalSetsOnSmallInput) {
  TransactionDatabase db = MakeClassicDb();
  for (int min_support = 1; min_support <= 5; ++min_support) {
    RandomWalkOptions options;
    options.seed = 1000 + min_support;
    auto result = MineMaximalItemsetsRandomWalk(db, min_support, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(ToMap(*result), BruteForceMaximal(db, min_support))
        << "r=" << min_support;
  }
}

TEST(RandomWalkTest, DenseComplementedLogMatchesDfs) {
  TransactionDatabase db =
      TransactionDatabase::FromComplementedQueryLog(testdata::PaperQueryLog());
  for (int min_support = 1; min_support <= 4; ++min_support) {
    auto walk = MineMaximalItemsetsRandomWalk(db, min_support);
    auto dfs = MineMaximalItemsetsDfs(db, min_support);
    ASSERT_TRUE(walk.ok());
    ASSERT_TRUE(dfs.ok());
    EXPECT_EQ(ToMap(*walk), ToMap(*dfs)) << "r=" << min_support;
  }
}

TEST(RandomWalkTest, GoodTuringStopsEarly) {
  TransactionDatabase db = MakeClassicDb();
  RandomWalkOptions options;
  options.max_iterations = 5000;
  RandomWalkStats stats;
  auto result = MineMaximalItemsetsRandomWalk(db, 3, options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(stats.stopped_by_rule);
  EXPECT_LT(stats.walks, 5000);
  EXPECT_EQ(stats.distinct_maximal, static_cast<int>(result->size()));
}

TEST(RandomWalkTest, EmptyResultWhenThresholdTooHigh) {
  std::vector<DynamicBitset> rows = {DynamicBitset::FromString("11")};
  TransactionDatabase db(std::move(rows));
  auto result = MineMaximalItemsetsRandomWalk(db, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(RandomWalkTest, RejectsNonPositiveIterations) {
  TransactionDatabase db = MakeClassicDb();
  RandomWalkOptions options;
  options.max_iterations = 0;
  auto result = MineMaximalItemsetsRandomWalk(db, 1, options);
  EXPECT_FALSE(result.ok());
}

// Property sweep: on random databases, all miners agree.
class MinerAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(MinerAgreementTest, AllMinersAgreeOnRandomDatabases) {
  const int seed = GetParam();
  Rng rng(seed);
  const int n = rng.NextInt(3, 9);
  const int rows = rng.NextInt(2, 14);
  const double density = 0.2 + 0.6 * rng.NextDouble();
  std::vector<DynamicBitset> transactions;
  for (int t = 0; t < rows; ++t) {
    DynamicBitset row(n);
    for (int i = 0; i < n; ++i) {
      if (rng.NextBernoulli(density)) row.Set(i);
    }
    transactions.push_back(std::move(row));
  }
  TransactionDatabase db(std::move(transactions));
  const int min_support = rng.NextInt(1, std::max(1, rows / 2));

  auto apriori = MineFrequentItemsetsApriori(db, min_support);
  auto eclat = MineFrequentItemsetsEclat(db, min_support);
  ASSERT_TRUE(apriori.ok());
  ASSERT_TRUE(eclat.ok());
  const ItemsetMap expected_frequent = BruteForceFrequent(db, min_support);
  EXPECT_EQ(ToMap(*apriori), expected_frequent);
  EXPECT_EQ(ToMap(*eclat), expected_frequent);

  auto dfs = MineMaximalItemsetsDfs(db, min_support);
  ASSERT_TRUE(dfs.ok());
  const ItemsetMap expected_maximal = BruteForceMaximal(db, min_support);
  EXPECT_EQ(ToMap(*dfs), expected_maximal);

  // With the Good-Turing stop the walk is complete only with high
  // probability; every reported itemset must still be genuinely maximal.
  RandomWalkOptions walk_options;
  walk_options.seed = seed * 31 + 7;
  auto walk = MineMaximalItemsetsRandomWalk(db, min_support, walk_options);
  ASSERT_TRUE(walk.ok());
  for (const FrequentItemset& f : *walk) {
    EXPECT_TRUE(IsMaximalFrequent(db, f.items, min_support));
    EXPECT_EQ(f.support, db.Support(f.items));
    EXPECT_TRUE(expected_maximal.contains(f.items));
  }

  // With the stop disabled and a generous walk budget it finds everything.
  walk_options.good_turing_stop = false;
  walk_options.max_iterations = 2000;
  auto exhaustive_walk =
      MineMaximalItemsetsRandomWalk(db, min_support, walk_options);
  ASSERT_TRUE(exhaustive_walk.ok());
  EXPECT_EQ(ToMap(*exhaustive_walk), expected_maximal);
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, MinerAgreementTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace soc::itemsets
