// The property suite checked against itself: the catalog holds on every
// registry solver over seeded trials, the parity list matches the
// registry, and — the part that proves the harness has teeth — deliberately
// broken solvers are caught and their failing instances shrunk to a
// handful of queries.

#include "check/properties.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/instance.h"
#include "check/runner.h"
#include "check/shrink.h"
#include "core/greedy.h"
#include "core/solver_registry.h"

namespace soc::check {
namespace {

TEST(PropertyCatalogTest, NamesAreUniqueAndDocumented) {
  std::set<std::string> names;
  for (const PropertyCheck& property : PropertyCatalog()) {
    EXPECT_TRUE(names.insert(property.name).second) << property.name;
    EXPECT_NE(std::string(property.description), "") << property.name;
  }
  EXPECT_GE(names.size(), 8u);
}

TEST(PropertyCatalogTest, ParityListMatchesRegistry) {
  std::vector<std::string> checked = PropertyCheckedSolvers();
  std::vector<std::string> registered = RegisteredSolverNames();
  std::sort(checked.begin(), checked.end());
  std::sort(registered.begin(), registered.end());
  EXPECT_EQ(checked, registered);
}

TEST(PropertyTrialsTest, RegistrySolversPassSeededTrials) {
  TrialOptions options;
  options.trials = 25;
  options.seed = 1;
  const TrialReport report = RunTrials(options);
  EXPECT_EQ(report.trials, 25);
  ASSERT_TRUE(report.ok()) << FailureToText(report.failures.front());
  // 25 instances x 9 solvers x 9 properties.
  EXPECT_EQ(report.checks, 25 * 9 * 9);
}

TEST(PropertyTrialsTest, ReplayInstanceAcceptsCleanInstances) {
  const Instance instance = GenerateInstance(7);
  EXPECT_TRUE(ReplayInstance(instance, {"BruteForce", "ConsumeAttr"}).ok());
}

// --- Broken-solver demos: the harness must catch and shrink. ---

// ConsumeAttr with a classic off-by-one: the ranking loop starts at index
// 1, silently dropping the most frequent attribute whenever a spare
// attribute exists to take its place. The context contract is honored (so
// degrade-contract stays green) — the *only* bug is the shifted pick.
class OffByOneConsumeAttr : public SocSolver {
 public:
  StatusOr<SocSolution> SolveWithContext(const QueryLog& log,
                                         const DynamicBitset& tuple, int m,
                                         SolveContext* context) const override {
    const int m_eff = internal::EffectiveBudget(log, tuple, m);
    const std::vector<int> freq = log.AttributeFrequencies();
    std::vector<int> attrs = tuple.SetBits();
    std::sort(attrs.begin(), attrs.end(), [&freq](int a, int b) {
      if (freq[a] != freq[b]) return freq[a] > freq[b];
      return a < b;
    });
    const int offset = static_cast<int>(attrs.size()) > m_eff ? 1 : 0;
    DynamicBitset selected(log.num_attributes());
    for (int i = 0; i < m_eff; ++i) {
      if (internal::ShouldStop(context)) break;
      selected.Set(static_cast<std::size_t>(attrs[i + offset]));
    }
    internal::PadSelection(log, tuple, m_eff, &selected);
    SocSolution solution = internal::FinishSolution(
        log, std::move(selected), /*proved_optimal=*/false);
    if (context != nullptr && context->stop_requested()) {
      internal::MarkDegraded(context->stop_reason(), &solution);
    }
    return solution;
  }
  std::string name() const override { return "ConsumeAttr"; }
};

TEST(BrokenSolverTest, OffByOneIsCaughtAndShrunkToAtMostEightQueries) {
  OffByOneConsumeAttr broken;
  TrialOptions options;
  options.trials = 50;
  options.seed = 1;
  const TrialReport report = RunTrialsOnSolver(broken, options);
  ASSERT_FALSE(report.ok()) << "the off-by-one escaped 50 trials";
  const PropertyFailure& failure = report.failures.front();
  EXPECT_EQ(failure.property, "consume-attr-spec");
  EXPECT_LE(failure.shrunken.log.size(), 8) << FailureToText(failure);
  // The minimized instance still reproduces.
  EXPECT_FALSE(CheckAllProperties(failure.shrunken, broken).ok());
  // And the report hands the human a repro command.
  const std::string text = FailureToText(failure);
  EXPECT_NE(text.find("repro: socvis_check"), std::string::npos);
  EXPECT_NE(text.find("--seed=" + std::to_string(failure.seed)),
            std::string::npos);
  const std::string json = FailureToJson(failure).ToString();
  EXPECT_NE(json.find("\"property\":\"consume-attr-spec\""),
            std::string::npos);
}

// A solver that inflates its objective: the reference-recount invariant
// (valid-solution) must flag it immediately.
class OverReportingSolver : public SocSolver {
 public:
  StatusOr<SocSolution> SolveWithContext(const QueryLog& log,
                                         const DynamicBitset& tuple, int m,
                                         SolveContext* context) const override {
    const GreedySolver honest(GreedyKind::kConsumeAttr);
    SOC_ASSIGN_OR_RETURN(SocSolution solution,
                         honest.SolveWithContext(log, tuple, m, context));
    solution.satisfied_queries += 1;
    return solution;
  }
  std::string name() const override { return "OverReporter"; }
};

TEST(BrokenSolverTest, ObjectiveInflationIsCaught) {
  OverReportingSolver broken;
  TrialOptions options;
  options.trials = 5;
  options.seed = 1;
  const TrialReport report = RunTrialsOnSolver(broken, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.failures.front().property, "valid-solution");
}

// A solver that ignores its SolveContext entirely: the degrade-contract
// property must notice that a pre-expired deadline went unhonored.
class ContextIgnoringSolver : public SocSolver {
 public:
  StatusOr<SocSolution> SolveWithContext(const QueryLog& log,
                                         const DynamicBitset& tuple, int m,
                                         SolveContext* context) const override {
    (void)context;  // The bug.
    const GreedySolver honest(GreedyKind::kConsumeAttr);
    return honest.SolveWithContext(log, tuple, m, nullptr);
  }
  std::string name() const override { return "ContextIgnorer"; }
};

TEST(BrokenSolverTest, IgnoredDeadlineIsCaught) {
  ContextIgnoringSolver broken;
  TrialOptions options;
  options.trials = 25;
  options.seed = 1;
  const TrialReport report = RunTrialsOnSolver(broken, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.failures.front().property, "degrade-contract");
}

// --- Shrinker unit behavior. ---

TEST(ShrinkTest, ReachesTheMinimalFailingShape) {
  // "Fails" whenever the instance still has >= 3 queries and >= 2 tuple
  // bits; the shrinker must land exactly on that boundary with m == 0.
  const Instance original = GenerateInstance(11);
  const auto still_fails = [](const Instance& candidate) {
    return candidate.log.size() >= 3 && candidate.tuple.Count() >= 2;
  };
  if (!still_fails(original)) GTEST_SKIP() << "seed produced a small shape";
  ShrinkStats stats;
  const Instance shrunk = Shrink(original, still_fails, &stats);
  EXPECT_EQ(shrunk.log.size(), 3);
  EXPECT_EQ(shrunk.tuple.Count(), 2u);
  EXPECT_EQ(shrunk.m, 0);
  EXPECT_GT(stats.attempts, 0);
  EXPECT_GT(stats.accepted, 0);
}

TEST(ShrinkTest, LeavesAnUnshrinkableInstanceAlone) {
  Instance instance = GenerateInstance(13);
  const std::string before = InstanceToText(instance);
  // Any simplification "fixes" the failure, so nothing may change.
  const std::string after = InstanceToText(Shrink(
      std::move(instance),
      [&before](const Instance& candidate) {
        return InstanceToText(candidate) == before;
      }));
  EXPECT_EQ(after, before);
}

}  // namespace
}  // namespace soc::check
