// The paper's running example (Fig 1 / EXAMPLE 1): an auto-dealer database
// of 7 cars over 6 Boolean attributes, a 5-query log, and the new tuple t.
// Used as a fixture across test suites.

#ifndef SOC_TESTS_PAPER_EXAMPLE_H_
#define SOC_TESTS_PAPER_EXAMPLE_H_

#include "boolean/query_log.h"
#include "boolean/table.h"
#include "common/bitset.h"

namespace soc {
namespace testdata {

// Attribute order: AC, FourDoor, Turbo, PowerDoors, AutoTrans, PowerBrakes.
inline AttributeSchema PaperSchema() {
  auto schema = AttributeSchema::Create({"AC", "FourDoor", "Turbo",
                                         "PowerDoors", "AutoTrans",
                                         "PowerBrakes"});
  SOC_CHECK(schema.ok());
  return std::move(schema).value();
}

inline BooleanTable PaperDatabase() {
  BooleanTable db(PaperSchema());
  db.AddRow(DynamicBitset::FromString("010100"));  // t1
  db.AddRow(DynamicBitset::FromString("011000"));  // t2
  db.AddRow(DynamicBitset::FromString("100111"));  // t3
  db.AddRow(DynamicBitset::FromString("110101"));  // t4
  db.AddRow(DynamicBitset::FromString("110000"));  // t5
  db.AddRow(DynamicBitset::FromString("010100"));  // t6
  db.AddRow(DynamicBitset::FromString("001100"));  // t7
  return db;
}

inline QueryLog PaperQueryLog() {
  QueryLog log(PaperSchema());
  log.AddQuery(DynamicBitset::FromString("110000"));  // q1: AC, FourDoor
  log.AddQuery(DynamicBitset::FromString("100100"));  // q2: AC, PowerDoors
  log.AddQuery(DynamicBitset::FromString("010100"));  // q3: FourDoor, PowerDoors
  log.AddQuery(DynamicBitset::FromString("000101"));  // q4: PowerDoors, PowerBrakes
  log.AddQuery(DynamicBitset::FromString("001010"));  // q5: Turbo, AutoTrans
  return log;
}

// The new car t = [1,1,0,1,1,1].
inline DynamicBitset PaperNewTuple() {
  return DynamicBitset::FromString("110111");
}

}  // namespace testdata
}  // namespace soc

#endif  // SOC_TESTS_PAPER_EXAMPLE_H_
