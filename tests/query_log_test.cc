#include "boolean/query_log.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace soc {
namespace {

TEST(QueryLogTest, PaperExampleShape) {
  QueryLog log = testdata::PaperQueryLog();
  EXPECT_EQ(log.size(), 5);
  EXPECT_EQ(log.num_attributes(), 6);
  EXPECT_FALSE(log.empty());
  EXPECT_EQ(log.query(0).SetBits(), (std::vector<int>{0, 1}));
}

TEST(QueryLogTest, AttributeFrequencies) {
  QueryLog log = testdata::PaperQueryLog();
  // AC: q1,q2; FourDoor: q1,q3; Turbo: q5; PowerDoors: q2,q3,q4;
  // AutoTrans: q5; PowerBrakes: q4.
  EXPECT_EQ(log.AttributeFrequencies(), (std::vector<int>{2, 2, 1, 3, 1, 1}));
}

TEST(QueryLogTest, CountQueriesContainingAll) {
  QueryLog log = testdata::PaperQueryLog();
  // Queries containing PowerDoors: q2, q3, q4.
  DynamicBitset power_doors = DynamicBitset::FromString("000100");
  EXPECT_EQ(log.CountQueriesContainingAll(power_doors), 3);
  // Queries containing both AC and PowerDoors: q2 only.
  DynamicBitset both = DynamicBitset::FromString("100100");
  EXPECT_EQ(log.CountQueriesContainingAll(both), 1);
  // Empty attribute set is contained in every query.
  EXPECT_EQ(log.CountQueriesContainingAll(DynamicBitset(6)), 5);
}

TEST(QueryLogTest, ComplementedFlipsEveryBit) {
  QueryLog log = testdata::PaperQueryLog();
  QueryLog complemented = log.Complemented();
  ASSERT_EQ(complemented.size(), log.size());
  for (int i = 0; i < log.size(); ++i) {
    for (int a = 0; a < log.num_attributes(); ++a) {
      EXPECT_NE(log.query(i).Test(a), complemented.query(i).Test(a));
    }
  }
  // ~q1 = [0,0,1,1,1,1].
  EXPECT_EQ(complemented.query(0).ToString(), "001111");
}

TEST(QueryLogTest, EmptyQueryAllowed) {
  QueryLog log(AttributeSchema::Anonymous(4));
  log.AddQuery(DynamicBitset(4));
  EXPECT_EQ(log.size(), 1);
  EXPECT_TRUE(log.query(0).None());
}

TEST(QueryLogTest, AddQueryFromIndices) {
  QueryLog log(AttributeSchema::Anonymous(4));
  log.AddQueryFromIndices({1, 3});
  EXPECT_EQ(log.query(0).ToString(), "0101");
}

TEST(QueryLogTest, CsvRoundTrip) {
  QueryLog log = testdata::PaperQueryLog();
  auto restored = QueryLog::FromCsv(log.ToCsv());
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), log.size());
  for (int i = 0; i < log.size(); ++i) {
    EXPECT_EQ(restored->query(i), log.query(i));
  }
}

}  // namespace
}  // namespace soc
