// Tests of the MFI preprocessing cache persistence (offline mining, as the
// paper suggests in "Preprocessing Opportunities", Sec IV.C).

#include <gtest/gtest.h>

#include "core/mfi_solver.h"
#include "datagen/workload.h"
#include "paper_example.h"

namespace soc {
namespace {

QueryLog MakeLog() {
  const AttributeSchema schema = AttributeSchema::Anonymous(12);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = 80;
  wl.seed = 11;
  return datagen::MakeSyntheticWorkload(schema, wl);
}

TEST(MfiCacheTest, SaveAndReloadReproducesSolutions) {
  const QueryLog log = MakeLog();
  MfiSocOptions options;
  MfiSocSolver solver(options);

  // Warm an index by solving a few instances.
  MfiPreprocessedIndex warm(log, options);
  DynamicBitset t(12);
  for (int a = 0; a < 12; a += 2) t.Set(a);
  std::vector<int> expected;
  for (int m = 1; m <= 5; ++m) {
    auto solution = solver.SolveWithIndex(warm, log, t, m);
    ASSERT_TRUE(solution.ok());
    expected.push_back(solution->satisfied_queries);
  }

  // Persist, load into a cold index, re-solve.
  const std::string serialized = warm.SerializeCache();
  EXPECT_FALSE(serialized.empty());
  MfiPreprocessedIndex cold(log, options);
  ASSERT_TRUE(cold.LoadCache(serialized).ok());
  for (int m = 1; m <= 5; ++m) {
    auto solution = solver.SolveWithIndex(cold, log, t, m);
    ASSERT_TRUE(solution.ok());
    EXPECT_EQ(solution->satisfied_queries, expected[m - 1]) << "m=" << m;
  }
}

TEST(MfiCacheTest, LoadedItemsetsAreServedWithoutRemining) {
  const QueryLog log = MakeLog();
  MfiSocOptions options;
  MfiPreprocessedIndex warm(log, options);
  auto mined = warm.MaximalItemsets(3);
  ASSERT_TRUE(mined.ok());
  const std::size_t count = (*mined)->size();

  MfiPreprocessedIndex cold(log, options);
  ASSERT_TRUE(cold.LoadCache(warm.SerializeCache()).ok());
  auto loaded = cold.MaximalItemsets(3);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->size(), count);
}

TEST(MfiCacheTest, RejectsCacheFromDifferentLog) {
  const QueryLog log = MakeLog();
  MfiSocOptions options;
  MfiPreprocessedIndex warm(log, options);
  ASSERT_TRUE(warm.MaximalItemsets(2).ok());
  const std::string serialized = warm.SerializeCache();

  // A different workload over the same schema: supports will not match.
  const AttributeSchema schema = AttributeSchema::Anonymous(12);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = 80;
  wl.seed = 999;
  const QueryLog other = datagen::MakeSyntheticWorkload(schema, wl);
  MfiPreprocessedIndex cold(other, options);
  const Status status = cold.LoadCache(serialized);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(MfiCacheTest, RejectsWrongWidth) {
  const QueryLog log = MakeLog();
  MfiSocOptions options;
  MfiPreprocessedIndex index(log, options);
  const Status status = index.LoadCache(
      "threshold,support,itemset\n2,1,10101\n");  // Width 5, log has 12.
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(MfiCacheTest, EmptyThresholdMarkerRoundTrips) {
  QueryLog log(AttributeSchema::Anonymous(3));
  log.AddQueryFromIndices({0, 1, 2});  // ~q is empty: nothing frequent at 1.
  MfiSocOptions options;
  MfiPreprocessedIndex warm(log, options);
  auto mined = warm.MaximalItemsets(1);
  ASSERT_TRUE(mined.ok());
  MfiPreprocessedIndex cold(log, options);
  ASSERT_TRUE(cold.LoadCache(warm.SerializeCache()).ok());
  auto loaded = cold.MaximalItemsets(1);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->size(), (*mined)->size());
}

}  // namespace
}  // namespace soc
