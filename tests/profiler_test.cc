// Sampling profiler tests. SIGPROF is process-global and the profiler
// is a singleton, so the lifecycle (start → concurrent-start rejected →
// busy loop → stop → collapsed output) runs as one ordered test; on
// platforms without backtrace support Start() reports kUnimplemented
// and the test skips.

#include "obs/profiler.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/status.h"

namespace soc::obs {
namespace {

// Burns CPU the profiler can see; returns a value so the loop cannot be
// optimized away.
volatile std::uint64_t burn_sink = 0;
void BurnCpuMs(double budget_ms) {
  // ITIMER_PROF counts CPU time, so the loop must actually compute.
  const std::int64_t rounds = static_cast<std::int64_t>(budget_ms) * 40000;
  std::uint64_t x = 1469598103934665603ull;
  for (std::int64_t i = 0; i < rounds; ++i) {
    x ^= static_cast<std::uint64_t>(i);
    x *= 1099511628211ull;
  }
  burn_sink = x;
}

TEST(ProfilerTest, LifecycleStartBusyStopProducesStacks) {
  Profiler& profiler = Profiler::Instance();
  ASSERT_FALSE(profiler.running());

  ProfilerOptions options;
  options.sample_hz = 997;  // Fast sampling keeps the test short.
  const Status started = profiler.Start(options);
  if (started.code() == StatusCode::kUnimplemented) {
    GTEST_SKIP() << "no backtrace support on this platform";
  }
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_TRUE(profiler.running());

  // The timer is process-global: a second concurrent Start must fail
  // without disturbing the running session.
  const Status again = profiler.Start(options);
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(profiler.running());

  BurnCpuMs(200);

  ASSERT_TRUE(profiler.Stop().ok());
  EXPECT_FALSE(profiler.running());
  EXPECT_GT(profiler.samples(), 0);

  const auto stacks = profiler.CollapsedStacks();
  ASSERT_FALSE(stacks.empty());
  std::int64_t total = 0;
  for (const auto& [stack, count] : stacks) {
    EXPECT_FALSE(stack.empty());
    EXPECT_GT(count, 0);
    total += count;
  }
  // Folding skips trampoline-only stacks, so the folded total is
  // bounded by (not necessarily equal to) the captured count.
  EXPECT_GT(total, 0);
  EXPECT_LE(total, profiler.samples());

  // WriteCollapsed emits "stack count" lines, one per folded stack.
  const std::string path = testing::TempDir() + "/profile_collapsed.txt";
  ASSERT_TRUE(profiler.WriteCollapsed(path).ok());
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::fseek(file, 0, SEEK_END);
  EXPECT_GT(std::ftell(file), 0);
  std::fclose(file);

  // Stop is idempotent once stopped.
  EXPECT_TRUE(profiler.Stop().ok());

  // A second session is allowed after the first finishes.
  const Status restarted = profiler.Start(options);
  ASSERT_TRUE(restarted.ok()) << restarted.ToString();
  ASSERT_TRUE(profiler.Stop().ok());
}

}  // namespace
}  // namespace soc::obs
