// JsonExtractTopLevelKey / JsonSpliceTopLevelKey: the minimal top-level
// JSON surgery that lets serve_throughput and multitenant_load co-own
// BENCH_serve.json, each rewriting only its own section. The scanner
// must respect strings (braces and escapes inside them) and nested
// containers, and splicing must leave every other byte untouched.

#include "common/json_splice.h"

#include <string>

#include <gtest/gtest.h>

namespace soc {
namespace {

constexpr char kDoc[] =
    R"({"meta":{"host":"m1{}","note":"a \"quoted\" } brace"},)"
    R"("sweep":[{"workers":1},{"workers":2}],"scaling_valid":false})";

TEST(JsonSpliceTest, ExtractFindsNestedObjectValuesVerbatim) {
  auto meta = JsonExtractTopLevelKey(kDoc, "meta");
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(*meta, R"({"host":"m1{}","note":"a \"quoted\" } brace"})");

  auto sweep = JsonExtractTopLevelKey(kDoc, "sweep");
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(*sweep, R"([{"workers":1},{"workers":2}])");

  auto scalar = JsonExtractTopLevelKey(kDoc, "scaling_valid");
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(*scalar, "false");
}

TEST(JsonSpliceTest, ExtractMissesAreNotFound) {
  EXPECT_EQ(JsonExtractTopLevelKey(kDoc, "multitenant").status().code(),
            StatusCode::kNotFound);
  // Keys nested inside values are not top-level keys.
  EXPECT_EQ(JsonExtractTopLevelKey(kDoc, "host").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(JsonExtractTopLevelKey(kDoc, "workers").status().code(),
            StatusCode::kNotFound);
}

TEST(JsonSpliceTest, NonObjectsAreRejected) {
  for (const char* text : {"", "[1,2]", "42", "\"str\"", "{\"a\":1"}) {
    EXPECT_FALSE(JsonExtractTopLevelKey(text, "a").ok()) << text;
    EXPECT_FALSE(JsonSpliceTopLevelKey(text, "a", "1").ok()) << text;
  }
}

TEST(JsonSpliceTest, SpliceReplacesOnlyTheNamedSection) {
  auto spliced = JsonSpliceTopLevelKey(kDoc, "sweep", R"([{"workers":8}])");
  ASSERT_TRUE(spliced.ok()) << spliced.status().ToString();
  EXPECT_EQ(*spliced,
            R"({"meta":{"host":"m1{}","note":"a \"quoted\" } brace"},)"
            R"("sweep":[{"workers":8}],"scaling_valid":false})");
  // The other sections survive byte-for-byte.
  EXPECT_EQ(*JsonExtractTopLevelKey(*spliced, "meta"),
            *JsonExtractTopLevelKey(kDoc, "meta"));
}

TEST(JsonSpliceTest, SpliceAppendsMissingKeysBeforeTheClosingBrace) {
  auto spliced = JsonSpliceTopLevelKey(kDoc, "multitenant", R"({"hits":9})");
  ASSERT_TRUE(spliced.ok());
  EXPECT_EQ(*JsonExtractTopLevelKey(*spliced, "multitenant"), R"({"hits":9})");
  // Appending then replacing round-trips.
  auto replaced =
      JsonSpliceTopLevelKey(*spliced, "multitenant", R"({"hits":10})");
  ASSERT_TRUE(replaced.ok());
  EXPECT_EQ(*JsonExtractTopLevelKey(*replaced, "multitenant"),
            R"({"hits":10})");
  EXPECT_EQ(*JsonExtractTopLevelKey(*replaced, "sweep"),
            *JsonExtractTopLevelKey(kDoc, "sweep"));
}

TEST(JsonSpliceTest, AppendToEmptyObjectNeedsNoComma) {
  auto spliced = JsonSpliceTopLevelKey("{}", "multitenant", "{}");
  ASSERT_TRUE(spliced.ok());
  EXPECT_EQ(*spliced, R"({"multitenant":{}})");
}

TEST(JsonSpliceTest, ToleratesWhitespaceAroundStructure) {
  const std::string doc = "  {\n  \"a\" : { \"b\" : [1, 2] } ,\n"
                          " \"c\" : \"x\"\n}  ";
  auto extracted = JsonExtractTopLevelKey(doc, "a");
  ASSERT_TRUE(extracted.ok()) << extracted.status().ToString();
  EXPECT_EQ(*extracted, R"({ "b" : [1, 2] })");
  auto spliced = JsonSpliceTopLevelKey(doc, "c", "\"y\"");
  ASSERT_TRUE(spliced.ok());
  EXPECT_EQ(*JsonExtractTopLevelKey(*spliced, "c"), "\"y\"");
}

}  // namespace
}  // namespace soc
