#include "check/instance.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace soc::check {
namespace {

TEST(GenerateInstanceTest, DeterministicInSeed) {
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 999ull}) {
    const Instance a = GenerateInstance(seed);
    const Instance b = GenerateInstance(seed);
    EXPECT_EQ(a.tuple, b.tuple) << seed;
    EXPECT_EQ(a.m, b.m) << seed;
    EXPECT_EQ(a.log.queries(), b.log.queries()) << seed;
  }
}

TEST(GenerateInstanceTest, ConsecutiveSeedsDecorrelated) {
  int distinct = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance a = GenerateInstance(seed);
    const Instance b = GenerateInstance(seed + 1);
    if (a.log.queries() != b.log.queries() || a.tuple != b.tuple) ++distinct;
  }
  EXPECT_GE(distinct, 9);
}

TEST(GenerateInstanceTest, AlwaysWellFormed) {
  GeneratorOptions options;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const Instance instance = GenerateInstance(seed, options);
    EXPECT_GE(instance.log.num_attributes(), options.min_attrs);
    EXPECT_LE(instance.log.num_attributes(), options.max_attrs);
    EXPECT_LE(instance.log.size(), options.max_queries);
    EXPECT_EQ(static_cast<int>(instance.tuple.size()),
              instance.log.num_attributes());
    EXPECT_GE(instance.m, 0);
    for (const DynamicBitset& q : instance.log.queries()) {
      EXPECT_EQ(q.size(), instance.tuple.size());
    }
  }
}

TEST(GenerateInstanceTest, CoversEdgeShapes) {
  bool saw_empty_log = false;
  bool saw_empty_tuple = false;
  bool saw_full_tuple = false;
  bool saw_over_budget = false;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const Instance instance = GenerateInstance(seed);
    saw_empty_log |= instance.log.empty();
    saw_empty_tuple |= instance.tuple.None();
    saw_full_tuple |= instance.tuple.All();
    saw_over_budget |=
        instance.m > static_cast<int>(instance.tuple.Count());
  }
  EXPECT_TRUE(saw_empty_log);
  EXPECT_TRUE(saw_empty_tuple);
  EXPECT_TRUE(saw_full_tuple);
  EXPECT_TRUE(saw_over_budget);
}

TEST(InstanceTextTest, RoundTripsBitExactly) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Instance instance = GenerateInstance(seed);
    const std::string text = InstanceToText(instance);
    auto parsed = InstanceFromText(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->tuple, instance.tuple);
    EXPECT_EQ(parsed->m, instance.m);
    EXPECT_EQ(parsed->log.queries(), instance.log.queries());
    EXPECT_EQ(InstanceToText(*parsed), text);
  }
}

TEST(InstanceTextTest, RejectsMalformedInput) {
  EXPECT_FALSE(InstanceFromText("").ok());
  EXPECT_FALSE(InstanceFromText("tuple=101").ok());          // No m line.
  EXPECT_FALSE(InstanceFromText("m=1\ntuple=101\na\n").ok());  // Swapped.
  EXPECT_FALSE(InstanceFromText("tuple=102\nm=1\na0,a1,a2\n").ok());
  EXPECT_FALSE(InstanceFromText("tuple=101\nm=x\na0,a1,a2\n").ok());
  EXPECT_FALSE(InstanceFromText("tuple=101\nm=-1\na0,a1,a2\n").ok());
  // Tuple width disagrees with the CSV attribute count.
  EXPECT_FALSE(InstanceFromText("tuple=10\nm=1\na0,a1,a2\n").ok());
}

TEST(InstanceTextTest, SummaryMentionsTheShape) {
  Instance instance = GenerateInstance(3);
  const std::string summary = InstanceSummary(instance);
  EXPECT_NE(summary.find("attrs"), std::string::npos);
  EXPECT_NE(summary.find("queries"), std::string::npos);
  EXPECT_NE(summary.find("m="), std::string::npos);
}

}  // namespace
}  // namespace soc::check
