#include "boolean/evaluator.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace soc {
namespace {

TEST(EvaluatorTest, PaperExampleOptimumSatisfiesThreeQueries) {
  // Sec II.A: retaining {AC, FourDoor, PowerDoors} satisfies q1, q2, q3.
  QueryLog log = testdata::PaperQueryLog();
  DynamicBitset t_prime = DynamicBitset::FromString("110100");
  EXPECT_EQ(CountSatisfiedQueries(log, t_prime), 3);
  EXPECT_EQ(SatisfiedQueryIndices(log, t_prime), (std::vector<int>{0, 1, 2}));
}

TEST(EvaluatorTest, FullTupleSatisfiesAllButTurboQuery) {
  QueryLog log = testdata::PaperQueryLog();
  DynamicBitset t = testdata::PaperNewTuple();
  // t lacks Turbo, so q5 = {Turbo, AutoTrans} cannot be satisfied.
  EXPECT_EQ(CountSatisfiedQueries(log, t), 4);
}

TEST(EvaluatorTest, ConjunctiveEmptyQueryMatchesEverything) {
  QueryLog log(AttributeSchema::Anonymous(3));
  log.AddQuery(DynamicBitset(3));
  DynamicBitset empty_tuple(3);
  EXPECT_EQ(CountSatisfiedQueries(log, empty_tuple,
                                  RetrievalSemantics::kConjunctive),
            1);
}

TEST(EvaluatorTest, DisjunctiveSemantics) {
  QueryLog log = testdata::PaperQueryLog();
  // Under disjunction, retaining only AutoTrans satisfies just q5.
  DynamicBitset only_auto = DynamicBitset::FromString("000010");
  EXPECT_EQ(
      CountSatisfiedQueries(log, only_auto, RetrievalSemantics::kDisjunctive),
      1);
  // Retaining PowerDoors intersects q2, q3, q4.
  DynamicBitset only_pd = DynamicBitset::FromString("000100");
  EXPECT_EQ(
      CountSatisfiedQueries(log, only_pd, RetrievalSemantics::kDisjunctive),
      3);
}

TEST(EvaluatorTest, DisjunctiveEmptyQueryMatchesNothing) {
  QueryLog log(AttributeSchema::Anonymous(3));
  log.AddQuery(DynamicBitset(3));
  DynamicBitset full(3);
  full.SetAll();
  EXPECT_EQ(
      CountSatisfiedQueries(log, full, RetrievalSemantics::kDisjunctive), 0);
}

TEST(EvaluatorTest, QueryRetrievesDirect) {
  DynamicBitset q = DynamicBitset::FromString("101");
  DynamicBitset yes = DynamicBitset::FromString("111");
  DynamicBitset no = DynamicBitset::FromString("110");
  EXPECT_TRUE(QueryRetrieves(q, yes, RetrievalSemantics::kConjunctive));
  EXPECT_FALSE(QueryRetrieves(q, no, RetrievalSemantics::kConjunctive));
  EXPECT_TRUE(QueryRetrieves(q, no, RetrievalSemantics::kDisjunctive));
}

TEST(SatisfiableQueryViewTest, FiltersUnwinnableQueries) {
  QueryLog log = testdata::PaperQueryLog();
  DynamicBitset t = testdata::PaperNewTuple();
  SatisfiableQueryView view(log, t);
  // q5 requires Turbo which t lacks; the other four are satisfiable.
  EXPECT_EQ(view.size(), 4);
  EXPECT_EQ(view.original_index(0), 0);
  EXPECT_EQ(view.original_index(3), 3);
}

TEST(SatisfiableQueryViewTest, CountMatchesFullEvaluator) {
  QueryLog log = testdata::PaperQueryLog();
  DynamicBitset t = testdata::PaperNewTuple();
  SatisfiableQueryView view(log, t);
  // For candidates t' ⊆ t the view count equals the full count.
  DynamicBitset candidate = DynamicBitset::FromString("110100");
  EXPECT_EQ(view.CountSatisfied(candidate),
            CountSatisfiedQueries(log, candidate));
  DynamicBitset candidate2 = DynamicBitset::FromString("000101");
  EXPECT_EQ(view.CountSatisfied(candidate2),
            CountSatisfiedQueries(log, candidate2));
}

TEST(SatisfiableQueryViewTest, EmptyLog) {
  QueryLog log(AttributeSchema::Anonymous(3));
  DynamicBitset t(3);
  t.SetAll();
  SatisfiableQueryView view(log, t);
  EXPECT_EQ(view.size(), 0);
  EXPECT_EQ(view.CountSatisfied(t), 0);
}

}  // namespace
}  // namespace soc
