// Wide-event schema tests: encode/parse round trips are a fixed point,
// optional fields are omitted at their defaults, the strict parser
// rejects malformed lines, and the shed-reason vocabulary matches the
// serve-layer constants it mirrors (the compile-time half of soc_lint's
// event-field-parity rule).

#include "obs/wide_event.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "serve/visibility_service.h"

namespace soc::obs {
namespace {

// A fully populated "ok" event touching every optional field.
WideEvent FullOkEvent() {
  WideEvent event;
  event.ts_ms = 1234.5;
  event.id = "req-7";
  event.tenant = "acme";
  event.shard = 3;
  event.epoch = 11;
  event.solver_req = "ILP";
  event.solver = "Fallback";
  event.m = 4;
  event.deadline_ms = 50;
  event.num_queries = 120;
  event.num_attributes = 14;
  event.collapse_ratio = 0.4;
  event.queue_ms = 0.25;
  event.solve_ms = 3.75;
  event.total_ms = 4.0;
  event.predicted_ms = 3.5;
  event.outcome = "ok";
  event.code = "OK";
  event.stop_reason = "deadline";
  event.degraded = true;
  event.fast_path = false;
  event.cache_hit = true;
  event.breaker_rerouted = true;
  event.ladder_downgraded = true;
  event.satisfied = 97;
  return event;
}

// encode(parse(encode(e))) == encode(e): the documented fixed point.
void ExpectFixedPoint(const WideEvent& event) {
  const std::string line = WideEventToJsonLine(event);
  StatusOr<WideEvent> parsed = ParseWideEventLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  EXPECT_EQ(WideEventToJsonLine(*parsed), line);
}

TEST(WideEventTest, RoundTripIsAFixedPointForEveryOutcome) {
  ExpectFixedPoint(FullOkEvent());

  WideEvent shed;
  shed.id = "req-8";
  shed.solver_req = "BranchAndBound";
  shed.solver = "BranchAndBound";
  shed.m = 2;
  shed.num_queries = 10;
  shed.num_attributes = 6;
  shed.collapse_ratio = 1;
  shed.outcome = "shed";
  shed.code = "Overloaded";
  shed.shed_reason = "queue_full";
  shed.retry_after_ms = 12.5;
  ExpectFixedPoint(shed);

  WideEvent invalid;
  invalid.id = "req-9";
  invalid.solver_req = "NoSuchSolver";
  invalid.outcome = "invalid";
  invalid.code = "NotFound";
  ExpectFixedPoint(invalid);

  WideEvent error;
  error.id = "req-10";
  error.solver_req = "ILP";
  error.solver = "ILP";
  error.outcome = "error";
  error.code = "Internal";
  ExpectFixedPoint(error);
}

TEST(WideEventTest, OptionalFieldsAreOmittedAtTheirDefaults) {
  WideEvent event;
  event.id = "req-1";
  event.solver_req = "ILP";
  event.solver = "ILP";
  const std::string line = WideEventToJsonLine(event);
  // Optional fields at defaults must not appear at all — this is what
  // keeps encode(parse(line)) == line for minimal lines.
  for (const char* absent :
       {"tenant", "shard", "epoch", "deadline_ms", "predicted_ms",
        "shed_reason", "stop_reason", "degraded", "fast_path", "cache_hit",
        "breaker_rerouted", "ladder_downgraded", "satisfied",
        "retry_after_ms"}) {
    EXPECT_EQ(line.find(std::string("\"") + absent + "\""),
              std::string::npos)
        << absent << " should be omitted in: " << line;
  }
  ExpectFixedPoint(event);
}

TEST(WideEventTest, NegativeBudgetSentinelRoundTripsButBelowItRejects) {
  // m == -1 is the documented "client sent a negative budget" sentinel.
  WideEvent event;
  event.id = "req-2";
  event.solver_req = "ILP";
  event.solver = "";
  event.m = -1;
  event.outcome = "invalid";
  event.code = "InvalidArgument";
  ExpectFixedPoint(event);

  // Anything below the sentinel is out of schema.
  std::string line = WideEventToJsonLine(event);
  const auto at = line.find("\"m\":-1");
  ASSERT_NE(at, std::string::npos);
  line.replace(at, 6, "\"m\":-2");
  EXPECT_FALSE(ParseWideEventLine(line).ok());
}

TEST(WideEventTest, ParserRejectsMalformedLines) {
  const std::string good = WideEventToJsonLine(FullOkEvent());
  ASSERT_TRUE(ParseWideEventLine(good).ok());

  // Unknown field.
  std::string unknown = good;
  unknown.insert(unknown.size() - 1, ",\"mystery\":1");
  EXPECT_FALSE(ParseWideEventLine(unknown).ok());

  // Wrong schema version.
  std::string version = good;
  const auto v = version.find("\"v\":1");
  ASSERT_NE(v, std::string::npos);
  version.replace(v, 5, "\"v\":2");
  EXPECT_FALSE(ParseWideEventLine(version).ok());

  // Wrong type for a numeric field.
  std::string typed = good;
  const auto q = typed.find("\"num_queries\":120");
  ASSERT_NE(q, std::string::npos);
  typed.replace(q, 17, "\"num_queries\":\"x\"");
  EXPECT_FALSE(ParseWideEventLine(typed).ok());

  // Out-of-vocabulary enums.
  std::string outcome = good;
  const auto o = outcome.find("\"outcome\":\"ok\"");
  ASSERT_NE(o, std::string::npos);
  outcome.replace(o, 14, "\"outcome\":\"eh\"");
  EXPECT_FALSE(ParseWideEventLine(outcome).ok());

  // Negative latency.
  std::string latency = good;
  const auto l = latency.find("\"queue_ms\":0.25");
  ASSERT_NE(l, std::string::npos);
  latency.replace(l, 15, "\"queue_ms\":-0.2");
  EXPECT_FALSE(ParseWideEventLine(latency).ok());

  // Not JSON at all / empty.
  EXPECT_FALSE(ParseWideEventLine("").ok());
  EXPECT_FALSE(ParseWideEventLine("not json").ok());
}

TEST(WideEventTest, NonCanonicalSpellingConvergesInOneEncode) {
  // A hand-written line with an accepted but non-canonical number
  // spelling re-encodes to the canonical form, and that form is stable.
  WideEvent event;
  event.id = "req-3";
  event.solver_req = "ILP";
  event.solver = "ILP";
  event.queue_ms = 0.1;
  event.total_ms = 0.1;
  const std::string canonical = WideEventToJsonLine(event);
  StatusOr<WideEvent> parsed = ParseWideEventLine(canonical);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(WideEventToJsonLine(*parsed), canonical);
}

TEST(WideEventTest, ShedReasonVocabularyMatchesServeConstants) {
  // The two lists live apart by design (obs cannot include serve);
  // soc_lint checks the sources, this checks the compiled values.
  std::set<std::string> schema;
  for (const char* reason : kWideEventShedReasons) schema.insert(reason);
  const std::set<std::string> serve = {
      serve::kShedReasonQueueFull,
      serve::kShedReasonPredicted,
      serve::kShedReasonExpired,
      serve::kShedReasonShutdown,
  };
  EXPECT_EQ(schema, serve);
  for (const std::string& reason : serve) {
    EXPECT_TRUE(IsWideEventShedReason(reason)) << reason;
  }
  EXPECT_FALSE(IsWideEventShedReason("brownout"));
  for (const char* outcome : {"ok", "shed", "invalid", "error"}) {
    EXPECT_TRUE(IsWideEventOutcome(outcome)) << outcome;
  }
  EXPECT_FALSE(IsWideEventOutcome("meh"));
}

}  // namespace
}  // namespace soc::obs
