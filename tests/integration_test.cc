// Cross-module integration tests: the full advertise-a-car pipeline at
// reduced scale, preprocessing reuse, variant consistency, and solver
// agreement on the generated (rather than hand-built) data.

#include <memory>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/greedy.h"
#include "core/ilp_solver.h"
#include "core/mfi_solver.h"
#include "core/topk.h"
#include "core/variants.h"
#include "datagen/car_dataset.h"
#include "datagen/workload.h"

namespace soc {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::CarDatasetOptions car_options;
    car_options.num_cars = 800;
    market_ = datagen::GenerateCarDataset(car_options);
    datagen::RealLikeWorkloadOptions workload;
    workload.num_queries = 90;
    log_ = datagen::MakeRealLikeWorkload(market_, workload);
    car_ = market_.row(datagen::PickAdvertisedTuples(market_, 1, 17)[0]);
  }

  BooleanTable market_;
  QueryLog log_;
  DynamicBitset car_;
};

TEST_F(PipelineTest, ExactSolversAgreeOnGeneratedData) {
  const BruteForceSolver brute;
  const IlpSocSolver ilp;
  const MfiSocSolver mfi_walk;
  MfiSocOptions dfs_options;
  dfs_options.engine = MfiEngine::kExactDfs;
  const MfiSocSolver mfi_dfs(dfs_options);
  for (int m : {2, 4, 6}) {
    auto a = brute.Solve(log_, car_, m);
    auto b = ilp.Solve(log_, car_, m);
    auto c = mfi_walk.Solve(log_, car_, m);
    auto d = mfi_dfs.Solve(log_, car_, m);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
    EXPECT_EQ(a->satisfied_queries, b->satisfied_queries) << m;
    EXPECT_EQ(a->satisfied_queries, c->satisfied_queries) << m;
    EXPECT_EQ(a->satisfied_queries, d->satisfied_queries) << m;
  }
}

TEST_F(PipelineTest, ObjectiveIsMonotoneInBudget) {
  const BruteForceSolver brute;
  int previous = -1;
  for (int m = 0; m <= 10; ++m) {
    auto solution = brute.Solve(log_, car_, m);
    ASSERT_TRUE(solution.ok());
    EXPECT_GE(solution->satisfied_queries, previous) << "m=" << m;
    previous = solution->satisfied_queries;
  }
}

TEST_F(PipelineTest, GreedySandwichedBetweenZeroAndOptimal) {
  const BruteForceSolver brute;
  for (int m : {3, 5, 7}) {
    auto optimal = brute.Solve(log_, car_, m);
    ASSERT_TRUE(optimal.ok());
    for (GreedyKind kind :
         {GreedyKind::kConsumeAttr, GreedyKind::kConsumeAttrCumul,
          GreedyKind::kConsumeQueries}) {
      auto greedy = GreedySolver(kind).Solve(log_, car_, m);
      ASSERT_TRUE(greedy.ok());
      EXPECT_GE(greedy->satisfied_queries, 0);
      EXPECT_LE(greedy->satisfied_queries, optimal->satisfied_queries);
    }
  }
}

TEST_F(PipelineTest, PreprocessedIndexMatchesFreshSolves) {
  MfiSocOptions options;
  MfiSocSolver solver(options);
  MfiPreprocessedIndex index(log_, options);
  for (int m : {3, 5, 7}) {
    for (int row : datagen::PickAdvertisedTuples(market_, 5, 23)) {
      const DynamicBitset& tuple = market_.row(row);
      auto fresh = solver.Solve(log_, tuple, m);
      auto indexed = solver.SolveWithIndex(index, log_, tuple, m);
      ASSERT_TRUE(fresh.ok());
      ASSERT_TRUE(indexed.ok());
      EXPECT_EQ(fresh->satisfied_queries, indexed->satisfied_queries);
    }
  }
}

TEST_F(PipelineTest, SocCbDOptimumDominatesSampledSelections) {
  const BruteForceSolver brute;
  auto solution = SolveSocCbD(brute, market_, car_, 5);
  ASSERT_TRUE(solution.ok());
  // No random 5-subset of the car's attributes may dominate more rows.
  Rng rng(3);
  std::vector<int> attrs = car_.SetBits();
  for (int trial = 0; trial < 50; ++trial) {
    rng.Shuffle(attrs);
    DynamicBitset candidate(market_.num_attributes());
    for (int i = 0; i < 5 && i < static_cast<int>(attrs.size()); ++i) {
      candidate.Set(attrs[i]);
    }
    EXPECT_LE(market_.CountDominatedBy(candidate),
              solution->satisfied_queries);
  }
}

TEST_F(PipelineTest, TopkReductionConsistentOnGeneratedData) {
  const GlobalScoring scoring = MakeAttributeCountScoring(market_);
  const BruteForceSolver brute;
  for (int k : {1, 3, 10}) {
    auto solution = SolveTopk(brute, market_, scoring, log_, car_, 5, k);
    ASSERT_TRUE(solution.ok()) << "k=" << k;
    // Direct evaluation of the returned selection must agree.
    EXPECT_EQ(solution->satisfied_queries,
              CountTopkSatisfied(market_, scoring, log_, solution->selected,
                                 k));
  }
}

TEST_F(PipelineTest, TopkObjectiveMonotoneInK) {
  const GlobalScoring scoring = MakeAttributeCountScoring(market_);
  const BruteForceSolver brute;
  int previous = -1;
  for (int k : {1, 2, 5, 20, 10000}) {
    auto solution = SolveTopk(brute, market_, scoring, log_, car_, 5, k);
    ASSERT_TRUE(solution.ok());
    EXPECT_GE(solution->satisfied_queries, previous);
    previous = solution->satisfied_queries;
  }
  // At k >= |DB|+1 top-k degenerates to plain conjunctive retrieval.
  auto plain = brute.Solve(log_, car_, 5);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(previous, plain->satisfied_queries);
}

TEST_F(PipelineTest, PerAttributeConsistentWithBudgetSweep) {
  const BruteForceSolver brute;
  auto best = SolvePerAttribute(brute, log_, car_);
  ASSERT_TRUE(best.ok());
  double best_ratio = 0;
  for (int m = 1; m <= static_cast<int>(car_.Count()); ++m) {
    auto solution = brute.Solve(log_, car_, m);
    ASSERT_TRUE(solution.ok());
    best_ratio = std::max(
        best_ratio, static_cast<double>(solution->satisfied_queries) / m);
  }
  EXPECT_DOUBLE_EQ(best->ratio, best_ratio);
}

TEST_F(PipelineTest, CsvRoundTripPreservesSolverResults) {
  // Persist the log, reload it, and confirm a solver sees the same world.
  auto reloaded = QueryLog::FromCsv(log_.ToCsv());
  ASSERT_TRUE(reloaded.ok());
  const BruteForceSolver brute;
  auto before = brute.Solve(log_, car_, 5);
  auto after = brute.Solve(*reloaded, car_, 5);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->satisfied_queries, after->satisfied_queries);
  EXPECT_EQ(before->selected, after->selected);
}

TEST_F(PipelineTest, SolversAreDeterministic) {
  const MfiSocSolver mfi;  // Seeded random walk inside.
  auto a = mfi.Solve(log_, car_, 5);
  auto b = mfi.Solve(log_, car_, 5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->selected, b->selected);
  EXPECT_EQ(a->satisfied_queries, b->satisfied_queries);
}

}  // namespace
}  // namespace soc
