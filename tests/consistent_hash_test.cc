// ConsistentHashRing: routing stability, balance under virtual nodes,
// the ~1/(N+1) remap guarantee when a shard is added, and the pinned
// platform-stable hash (a silent hash change would remap every tenant in
// a deployed fleet, so the exact values are part of the contract).

#include "tenant/consistent_hash.h"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace soc::tenant {
namespace {

std::vector<std::string> Keys(int n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) keys.push_back("tenant" + std::to_string(i));
  return keys;
}

TEST(ConsistentHashTest, HashBytesIsPinned) {
  // Regression pins: HashBytes must never change across platforms,
  // standard libraries or refactors (see header rationale).
  EXPECT_EQ(ConsistentHashRing::HashBytes(""), 0xc3817c016ba4ff30ull);
  EXPECT_EQ(ConsistentHashRing::HashBytes("acme"), 0x4279cfb04f79f3bfull);
  EXPECT_EQ(ConsistentHashRing::HashBytes("tenant42"), 0x3686a5853c5556d0ull);
}

TEST(ConsistentHashTest, RoutingIsDeterministicAcrossInstances) {
  const ConsistentHashRing a(8), b(8);
  for (const std::string& key : Keys(500)) {
    const int shard = a.ShardOf(key);
    EXPECT_EQ(shard, b.ShardOf(key));
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 8);
  }
}

TEST(ConsistentHashTest, ClampsDegenerateParameters) {
  const ConsistentHashRing ring(0, 0);
  EXPECT_EQ(ring.num_shards(), 1);
  EXPECT_EQ(ring.vnodes_per_shard(), 1);
  EXPECT_EQ(ring.ShardOf("anything"), 0);
}

TEST(ConsistentHashTest, VirtualNodesBalanceTheLoad) {
  const int kShards = 8;
  const ConsistentHashRing ring(kShards, /*vnodes_per_shard=*/64);
  std::map<int, int> load;
  const int kKeys = 10000;
  for (const std::string& key : Keys(kKeys)) ++load[ring.ShardOf(key)];
  ASSERT_EQ(static_cast<int>(load.size()), kShards) << "some shard got nothing";
  // 64 vnodes keep every shard within a small factor of the fair share.
  const int fair = kKeys / kShards;
  for (const auto& [shard, count] : load) {
    EXPECT_GT(count, fair / 3) << "shard " << shard << " underloaded";
    EXPECT_LT(count, fair * 3) << "shard " << shard << " overloaded";
  }
}

TEST(ConsistentHashTest, GrowingTheRingOnlyMovesKeysToTheNewShard) {
  const ConsistentHashRing before(4), after(5);
  int moved = 0;
  const int kKeys = 10000;
  for (const std::string& key : Keys(kKeys)) {
    const int old_shard = before.ShardOf(key);
    const int new_shard = after.ShardOf(key);
    if (new_shard != old_shard) {
      ++moved;
      // The consistent-hashing property: a key either stays put or moves
      // to the shard that just joined — never between surviving shards.
      EXPECT_EQ(new_shard, 4) << key;
    }
  }
  // ~1/5 of the keyspace should remap; allow generous slack either way.
  EXPECT_GT(moved, kKeys / 20);
  EXPECT_LT(moved, kKeys / 2);
}

}  // namespace
}  // namespace soc::tenant
