#include "core/weighted.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/brute_force.h"
#include "datagen/workload.h"
#include "paper_example.h"

namespace soc {
namespace {

TEST(WeightedTest, FromLogCollapsesDuplicates) {
  QueryLog log(AttributeSchema::Anonymous(4));
  for (int i = 0; i < 7; ++i) log.AddQueryFromIndices({0, 1});
  for (int i = 0; i < 2; ++i) log.AddQueryFromIndices({2});
  const WeightedSocInstance instance = WeightedSocInstance::FromLog(log);
  EXPECT_EQ(instance.queries.size(), 2);
  EXPECT_EQ(instance.weights, (std::vector<int>{7, 2}));
  EXPECT_EQ(instance.total_weight, 9);
}

TEST(WeightedTest, WeightedObjectiveMatchesRawLog) {
  Rng rng(314);
  const AttributeSchema schema = AttributeSchema::Anonymous(10);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = 300;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
  const WeightedSocInstance instance = WeightedSocInstance::FromLog(log);
  EXPECT_LT(instance.queries.size(), log.size());
  for (int trial = 0; trial < 20; ++trial) {
    DynamicBitset t(10);
    for (int a = 0; a < 10; ++a) {
      if (rng.NextBernoulli(0.5)) t.Set(a);
    }
    EXPECT_EQ(CountSatisfiedWeight(instance, t),
              CountSatisfiedQueries(log, t));
  }
}

TEST(WeightedTest, ExactSolversMatchUnweightedOptimum) {
  Rng rng(2718);
  const AttributeSchema schema = AttributeSchema::Anonymous(12);
  const BruteForceSolver reference;
  for (int trial = 0; trial < 15; ++trial) {
    datagen::SyntheticWorkloadOptions wl;
    wl.num_queries = 150;
    wl.seed = trial;
    const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
    const WeightedSocInstance instance = WeightedSocInstance::FromLog(log);
    DynamicBitset t(12);
    for (int a = 0; a < 12; ++a) {
      if (rng.NextBernoulli(0.65)) t.Set(a);
    }
    const int m = rng.NextInt(0, 6);
    auto expected = reference.Solve(log, t, m);
    ASSERT_TRUE(expected.ok());
    auto brute = SolveWeightedBruteForce(instance, t, m);
    ASSERT_TRUE(brute.ok());
    EXPECT_EQ(brute->satisfied_weight, expected->satisfied_queries)
        << "trial " << trial;
    EXPECT_TRUE(brute->proved_optimal);
    auto bnb = SolveWeightedBnb(instance, t, m);
    ASSERT_TRUE(bnb.ok());
    EXPECT_EQ(bnb->satisfied_weight, expected->satisfied_queries)
        << "trial " << trial;
  }
}

TEST(WeightedTest, WeightsChangeTheOptimum) {
  // Unweighted: two distinct queries {0,1} and {2} — at m=1 only {2}
  // (weight 1 each, {0,1} needs two attrs). Weighted: {2}'s multiplicity 1
  // vs {3}'s 5 decides.
  QueryLog log(AttributeSchema::Anonymous(4));
  log.AddQueryFromIndices({2});
  for (int i = 0; i < 5; ++i) log.AddQueryFromIndices({3});
  const WeightedSocInstance instance = WeightedSocInstance::FromLog(log);
  DynamicBitset t(4);
  t.SetAll();
  auto solution = SolveWeightedBnb(instance, t, 1);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->satisfied_weight, 5);
  EXPECT_TRUE(solution->selected.Test(3));
}

TEST(WeightedTest, GreedyBoundedByExact) {
  Rng rng(161803);
  const AttributeSchema schema = AttributeSchema::Anonymous(10);
  for (int trial = 0; trial < 10; ++trial) {
    datagen::SyntheticWorkloadOptions wl;
    wl.num_queries = 120;
    wl.seed = 50 + trial;
    const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
    const WeightedSocInstance instance = WeightedSocInstance::FromLog(log);
    DynamicBitset t(10);
    for (int a = 0; a < 10; ++a) {
      if (rng.NextBernoulli(0.7)) t.Set(a);
    }
    const int m = rng.NextInt(1, 5);
    auto exact = SolveWeightedBruteForce(instance, t, m);
    ASSERT_TRUE(exact.ok());
    for (GreedyKind kind :
         {GreedyKind::kConsumeAttr, GreedyKind::kConsumeAttrCumul}) {
      auto greedy = SolveWeightedGreedy(instance, t, m, kind);
      ASSERT_TRUE(greedy.ok());
      EXPECT_LE(greedy->satisfied_weight, exact->satisfied_weight);
      EXPECT_EQ(greedy->selected.Count(),
                static_cast<std::size_t>(std::min<int>(m, t.Count())));
    }
  }
}

TEST(WeightedTest, ConsumeQueriesUnimplemented) {
  const WeightedSocInstance instance =
      WeightedSocInstance::FromLog(testdata::PaperQueryLog());
  auto result = SolveWeightedGreedy(instance, testdata::PaperNewTuple(), 2,
                                    GreedyKind::kConsumeQueries);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(WeightedTest, PaperExampleWeighted) {
  const WeightedSocInstance instance =
      WeightedSocInstance::FromLog(testdata::PaperQueryLog());
  // No duplicates in the paper log: weights all 1, optimum 3 at m=3.
  EXPECT_EQ(instance.queries.size(), 5);
  auto solution = SolveWeightedBnb(instance, testdata::PaperNewTuple(), 3);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->satisfied_weight, 3);
}

}  // namespace
}  // namespace soc
