// Service-level chaos tests. The first half drives the src/check chaos
// harness (injected faults, stalls, slow workers, bursts) and requires
// its ledger/breaker audits to pass; the second half pins the overload
// acceptance property directly: under a sustained ~4x overload, cost-aware
// admission sheds at the door, so the requests it *does* accept finish
// near the unloaded latency profile instead of queueing behind the storm.

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/fuzz.h"
#include "datagen/workload.h"
#include "serve/visibility_service.h"

namespace soc::check {
namespace {

TEST(ServeChaosTest, ChaosStormBalancesLedgerAndTripsBreaker) {
  ChaosServeOptions options;
  options.requests = 200;
  options.seed = 1;
  const Status status = FuzzServeChaos(options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ServeChaosTest, SeedSweepStaysAuditClean) {
  for (std::uint64_t seed = 2; seed < 5; ++seed) {
    ChaosServeOptions options;
    options.requests = 120;
    options.seed = seed;
    const Status status = FuzzServeChaos(options);
    EXPECT_TRUE(status.ok()) << "seed " << seed << ": " << status.ToString();
  }
}

TEST(ServeChaosTest, SingleWorkerChaosSurvivesStallsAndFaults) {
  ChaosServeOptions options;
  options.requests = 100;
  options.seed = 9;
  options.num_workers = 1;
  options.submitter_threads = 2;
  options.max_queue = 4;
  const Status status = FuzzServeChaos(options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace soc::check

namespace soc::serve {
namespace {

QueryLog MakeLog() {
  const AttributeSchema schema = AttributeSchema::Anonymous(12);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = 120;
  wl.seed = 11;
  return datagen::MakeSyntheticWorkload(schema, wl);
}

SolveRequest MakeRequest(const QueryLog& log, double deadline_ms) {
  SolveRequest request;
  request.tuple = DynamicBitset(log.num_attributes());
  request.tuple.Set(1);
  request.tuple.Set(4);
  request.tuple.Set(7);
  request.m = 3;
  request.solver = "Fallback";
  request.deadline_ms = deadline_ms;
  return request;
}

VisibilityServiceOptions SlowWorkerOptions(bool predictive_shedding) {
  VisibilityServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 0;  // Unbounded: admission is the cost model's call.
  options.predictive_shedding = predictive_shedding;
  options.worker_hook = [](const WorkerHookContext&) {
    // Pin the per-solve cost at ~2ms so "4x overload" is well-defined.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return Status::OK();
  };
  return options;
}

// Sequential warm-up: teaches the cost model the hook-inflated solve cost
// (past its warmup blend) and populates the latency histogram.
void WarmUp(VisibilityService& service, int requests) {
  for (int i = 0; i < requests; ++i) {
    const SolveResponse response =
        service.Submit(MakeRequest(service.log(), 0)).get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  }
}

TEST(ServeChaosTest, SheddingBoundsAcceptedLatencyUnderSustainedOverload) {
  constexpr double kDeadlineMs = 20;
  constexpr int kBurst = 160;  // ~320ms of work against a 20ms deadline.

  // Unloaded baseline: sequential requests on the same slow worker.
  double unloaded_p99 = 0;
  {
    VisibilityService service(MakeLog(), SlowWorkerOptions(true));
    WarmUp(service, 40);
    unloaded_p99 =
        service.Metrics().histograms.at("total").Quantile(0.99);
    EXPECT_GT(unloaded_p99, 0);
  }

  // Overload with predictive shedding: the burst lands all at once, the
  // cost model sheds everything whose predicted wait blows the deadline.
  double shed_p99 = 0;
  std::int64_t shed_count = 0;
  {
    VisibilityService service(MakeLog(), SlowWorkerOptions(true));
    WarmUp(service, 10);
    std::vector<std::future<SolveResponse>> futures;
    for (int i = 0; i < kBurst; ++i) {
      futures.push_back(service.Submit(MakeRequest(service.log(),
                                                   kDeadlineMs)));
    }
    for (auto& future : futures) {
      const SolveResponse response = future.get();
      if (!response.status.ok()) {
        ASSERT_EQ(response.status.code(), StatusCode::kOverloaded);
        EXPECT_EQ(response.shed_reason, kShedReasonPredicted);
      }
    }
    const MetricsSnapshot metrics = service.Metrics();
    shed_count = metrics.counters.at("shed_predicted");
    shed_p99 = metrics.histograms.at("total").Quantile(0.99);
  }
  EXPECT_GT(shed_count, 0);

  // Same storm without shedding: everything queues, so completed-request
  // latency inflates toward the full backlog drain time.
  double fifo_p99 = 0;
  {
    VisibilityService service(MakeLog(), SlowWorkerOptions(false));
    WarmUp(service, 10);
    std::vector<std::future<SolveResponse>> futures;
    for (int i = 0; i < kBurst; ++i) {
      futures.push_back(service.Submit(MakeRequest(service.log(),
                                                   kDeadlineMs)));
    }
    for (auto& future : futures) {
      EXPECT_TRUE(future.get().status.ok());
    }
    fifo_p99 = service.Metrics().histograms.at("total").Quantile(0.99);
  }

  // The acceptance bar: accepted-request p99 stays within 2x the unloaded
  // p99 (with a deadline-sized noise floor — accepted requests may
  // legitimately wait up to their deadline), and decisively beats the
  // no-shedding FIFO collapse.
  EXPECT_LE(shed_p99, 2.0 * std::max(unloaded_p99, kDeadlineMs))
      << "unloaded p99 " << unloaded_p99 << "ms, shed p99 " << shed_p99
      << "ms";
  EXPECT_LT(shed_p99, fifo_p99)
      << "shedding did not improve on FIFO (" << shed_p99 << "ms vs "
      << fifo_p99 << "ms)";
}

}  // namespace
}  // namespace soc::serve
