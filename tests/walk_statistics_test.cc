// Statistical behavior of the two-phase random walk: coverage of all
// maximal itemsets across repeated walks, stopping-rule behavior, and
// seed-sensitivity.

#include <map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "itemsets/maximal_dfs.h"
#include "itemsets/random_walk.h"
#include "itemsets/transaction_db.h"

namespace soc::itemsets {
namespace {

TransactionDatabase MakeDb() {
  // Three clearly separated maximal itemsets at support 2:
  // {0,1,2}, {2,3}, {4,5}.
  std::vector<DynamicBitset> rows = {
      DynamicBitset::FromString("111000"), DynamicBitset::FromString("111000"),
      DynamicBitset::FromString("001100"), DynamicBitset::FromString("001100"),
      DynamicBitset::FromString("000011"), DynamicBitset::FromString("000011"),
  };
  return TransactionDatabase(std::move(rows));
}

TEST(WalkStatisticsTest, EveryMaximalItemsetIsReachable) {
  const TransactionDatabase db = MakeDb();
  auto expected = MineMaximalItemsetsDfs(db, 2);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(expected->size(), 3u);

  Rng rng(4242);
  std::map<DynamicBitset, int> hits;
  const int walks = 600;
  for (int i = 0; i < walks; ++i) {
    hits[TwoPhaseRandomWalk(db, 2, rng).items] += 1;
  }
  // All three maximal itemsets are hit, each a nontrivial share of times.
  ASSERT_EQ(hits.size(), 3u);
  for (const auto& [itemset, count] : hits) {
    EXPECT_TRUE(IsMaximalFrequent(db, itemset, 2));
    EXPECT_GT(count, walks / 20) << itemset.ToString();
  }
}

TEST(WalkStatisticsTest, StoppingRuleScalesWithDiversity) {
  // A database with many maximal itemsets requires more walks before every
  // one has been seen twice than a database with a single one.
  std::vector<DynamicBitset> single_rows = {DynamicBitset::FromString("1111"),
                                            DynamicBitset::FromString("1111")};
  TransactionDatabase single(std::move(single_rows));
  RandomWalkStats single_stats;
  RandomWalkOptions options;
  options.min_iterations = 4;
  auto single_result =
      MineMaximalItemsetsRandomWalk(single, 1, options, &single_stats);
  ASSERT_TRUE(single_result.ok());

  const TransactionDatabase diverse = MakeDb();
  RandomWalkStats diverse_stats;
  auto diverse_result =
      MineMaximalItemsetsRandomWalk(diverse, 2, options, &diverse_stats);
  ASSERT_TRUE(diverse_result.ok());

  EXPECT_EQ(single_stats.distinct_maximal, 1);
  EXPECT_EQ(diverse_stats.distinct_maximal, 3);
  EXPECT_GE(diverse_stats.walks, single_stats.walks);
  EXPECT_TRUE(single_stats.stopped_by_rule);
}

TEST(WalkStatisticsTest, DifferentSeedsSameItemsets) {
  const TransactionDatabase db = MakeDb();
  RandomWalkOptions a_options;
  a_options.seed = 1;
  RandomWalkOptions b_options;
  b_options.seed = 2;
  auto a = MineMaximalItemsetsRandomWalk(db, 2, a_options);
  auto b = MineMaximalItemsetsRandomWalk(db, 2, b_options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Order may differ; compare as sets.
  std::map<DynamicBitset, int> sa, sb;
  for (const auto& f : *a) sa[f.items] = f.support;
  for (const auto& f : *b) sb[f.items] = f.support;
  EXPECT_EQ(sa, sb);
}

TEST(WalkStatisticsTest, WalkCapRespected) {
  const TransactionDatabase db = MakeDb();
  RandomWalkOptions options;
  options.max_iterations = 3;
  options.min_iterations = 1;
  RandomWalkStats stats;
  auto result = MineMaximalItemsetsRandomWalk(db, 2, options, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(stats.walks, 3);
  EXPECT_FALSE(stats.stopped_by_rule);
}

TEST(WalkStatisticsTest, DownPhaseAloneSufficesOnUniformDb) {
  // Every transaction identical: the only maximal itemset is the full
  // transaction, reached regardless of randomness.
  std::vector<DynamicBitset> rows(4, DynamicBitset::FromString("0110"));
  TransactionDatabase db(std::move(rows));
  Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    const FrequentItemset found = TwoPhaseRandomWalk(db, 3, rng);
    EXPECT_EQ(found.items.ToString(), "0110");
    EXPECT_EQ(found.support, 4);
  }
}

}  // namespace
}  // namespace soc::itemsets
