#include "boolean/schema.h"

#include <gtest/gtest.h>

namespace soc {
namespace {

TEST(SchemaTest, CreateAndLookup) {
  auto schema = AttributeSchema::Create({"AC", "Turbo", "Price"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->size(), 3);
  EXPECT_EQ(schema->name(0), "AC");
  EXPECT_EQ(schema->name(2), "Price");
  EXPECT_EQ(schema->Find("Turbo"), 1);
  EXPECT_EQ(schema->Find("Missing"), -1);
}

TEST(SchemaTest, DuplicateNamesRejected) {
  auto schema = AttributeSchema::Create({"AC", "AC"});
  ASSERT_FALSE(schema.ok());
  EXPECT_EQ(schema.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, AnonymousSchema) {
  AttributeSchema schema = AttributeSchema::Anonymous(4);
  EXPECT_EQ(schema.size(), 4);
  EXPECT_EQ(schema.name(0), "a0");
  EXPECT_EQ(schema.name(3), "a3");
  EXPECT_EQ(schema.Find("a2"), 2);
}

TEST(SchemaTest, EmptySchema) {
  AttributeSchema schema = AttributeSchema::Anonymous(0);
  EXPECT_EQ(schema.size(), 0);
}

TEST(SchemaTest, Equality) {
  AttributeSchema a = AttributeSchema::Anonymous(2);
  AttributeSchema b = AttributeSchema::Anonymous(2);
  AttributeSchema c = AttributeSchema::Anonymous(3);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace soc
