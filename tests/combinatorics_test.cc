#include "common/combinatorics.h"

#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace soc {
namespace {

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(BinomialSaturating(0, 0), 1u);
  EXPECT_EQ(BinomialSaturating(5, 0), 1u);
  EXPECT_EQ(BinomialSaturating(5, 5), 1u);
  EXPECT_EQ(BinomialSaturating(5, 2), 10u);
  EXPECT_EQ(BinomialSaturating(10, 3), 120u);
  EXPECT_EQ(BinomialSaturating(32, 16), 601080390u);
}

TEST(BinomialTest, OutOfRangeIsZero) {
  EXPECT_EQ(BinomialSaturating(3, 5), 0u);
  EXPECT_EQ(BinomialSaturating(-1, 0), 0u);
  EXPECT_EQ(BinomialSaturating(3, -1), 0u);
}

TEST(BinomialTest, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(BinomialSaturating(200, 100),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(BinomialTest, PascalIdentityHolds) {
  for (int n = 1; n <= 30; ++n) {
    for (int k = 1; k < n; ++k) {
      EXPECT_EQ(BinomialSaturating(n, k),
                BinomialSaturating(n - 1, k - 1) + BinomialSaturating(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(CombinationEnumeratorTest, EnumeratesAllLexicographically) {
  CombinationEnumerator combos(5, 3);
  std::vector<std::vector<int>> all;
  while (combos.HasValue()) {
    all.push_back(combos.Value());
    combos.Advance();
  }
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(all.front(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(all.back(), (std::vector<int>{2, 3, 4}));
  // Strictly increasing lexicographic order, all distinct.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1], all[i]);
  }
}

TEST(CombinationEnumeratorTest, KZeroYieldsOneEmptyCombination) {
  CombinationEnumerator combos(4, 0);
  ASSERT_TRUE(combos.HasValue());
  EXPECT_TRUE(combos.Value().empty());
  combos.Advance();
  EXPECT_FALSE(combos.HasValue());
}

TEST(CombinationEnumeratorTest, KGreaterThanNIsEmpty) {
  CombinationEnumerator combos(2, 3);
  EXPECT_FALSE(combos.HasValue());
}

TEST(CombinationEnumeratorTest, FullSelection) {
  CombinationEnumerator combos(3, 3);
  ASSERT_TRUE(combos.HasValue());
  EXPECT_EQ(combos.Value(), (std::vector<int>{0, 1, 2}));
  combos.Advance();
  EXPECT_FALSE(combos.HasValue());
}

TEST(CombinationEnumeratorTest, CountMatchesBinomialForSweep) {
  for (int n = 0; n <= 12; ++n) {
    for (int k = 0; k <= n; ++k) {
      CombinationEnumerator combos(n, k);
      std::uint64_t count = 0;
      while (combos.HasValue()) {
        ++count;
        combos.Advance();
      }
      EXPECT_EQ(count, BinomialSaturating(n, k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(ForEachCombinationTest, MapsPoolValues) {
  const std::vector<int> pool = {10, 20, 30};
  std::set<std::vector<int>> seen;
  ForEachCombination(pool, 2, [&seen](const std::vector<int>& combo) {
    seen.insert(combo);
    return true;
  });
  EXPECT_EQ(seen, (std::set<std::vector<int>>{{10, 20}, {10, 30}, {20, 30}}));
}

TEST(ForEachCombinationTest, EarlyStop) {
  const std::vector<int> pool = {1, 2, 3, 4};
  int calls = 0;
  ForEachCombination(pool, 2, [&calls](const std::vector<int>&) {
    ++calls;
    return calls < 2;
  });
  EXPECT_EQ(calls, 2);
}

TEST(ForEachCombinationTest, InvalidKIsNoop) {
  const std::vector<int> pool = {1, 2};
  int calls = 0;
  ForEachCombination(pool, 3, [&calls](const std::vector<int>&) {
    ++calls;
    return true;
  });
  EXPECT_EQ(calls, 0);
}

}  // namespace
}  // namespace soc
