// Robustness sweeps: hostile and randomized inputs must produce clean
// Status errors (or valid results), never crashes or checked aborts.

#include <gtest/gtest.h>

#include "boolean/query_log.h"
#include "boolean/table.h"
#include "common/csv.h"
#include "common/random.h"
#include "lp/lp_writer.h"
#include "lp/simplex.h"

namespace soc {
namespace {

// Random byte soup through the CSV parser: must return OK or a clean
// error, and OK results must re-serialize.
TEST(RobustnessTest, CsvParserSurvivesRandomBytes) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string soup;
    const int length = rng.NextInt(0, 120);
    for (int i = 0; i < length; ++i) {
      // Printable-heavy alphabet with CSV metacharacters over-represented.
      const char alphabet[] = "abc,\"\n\r01;\t ";
      soup.push_back(alphabet[rng.NextUint64(sizeof(alphabet) - 1)]);
    }
    auto parsed = ParseCsv(soup, rng.NextBernoulli(0.5));
    if (parsed.ok()) {
      const std::string round = WriteCsv(*parsed);
      auto reparsed = ParseCsv(round, !parsed->header.empty());
      EXPECT_TRUE(reparsed.ok()) << "round-trip failed for: " << soup;
    }
  }
}

TEST(RobustnessTest, BooleanTableParserRejectsGarbageCleanly) {
  const std::string inputs[] = {
      "",                      // Empty.
      "a,b\n1\n",              // Ragged.
      "a,a\n1,0\n",            // Duplicate attribute.
      "a,b\nx,y\n",            // Non-Boolean.
      "a,b\n\"1,0\n",          // Unterminated quote.
  };
  for (const std::string& input : inputs) {
    auto table = BooleanTable::FromCsv(input);
    if (table.ok()) {
      // Only the empty input may parse (as an empty table).
      EXPECT_EQ(table->num_rows(), 0) << input;
    }
  }
}

TEST(RobustnessTest, QueryLogParserMatchesTableParserBehavior) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    // Structurally valid CSV with occasional bad cells.
    const int cols = rng.NextInt(1, 4);
    const int rows = rng.NextInt(0, 5);
    std::string csv;
    for (int c = 0; c < cols; ++c) {
      csv += (c ? "," : "") + std::string(1, static_cast<char>('a' + c));
    }
    csv += '\n';
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (c) csv += ',';
        const int die = rng.NextInt(0, 9);
        csv += die < 4 ? "0" : (die < 8 ? "1" : "2");  // 20% bad cells.
      }
      csv += '\n';
    }
    auto log = QueryLog::FromCsv(csv);
    auto table = BooleanTable::FromCsv(csv);
    EXPECT_EQ(log.ok(), table.ok());
    if (log.ok()) EXPECT_EQ(log->size(), table->num_rows());
  }
}

TEST(RobustnessTest, LpWriterHandlesRandomModels) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    lp::LinearModel model(rng.NextBernoulli(0.5)
                              ? lp::ObjectiveSense::kMaximize
                              : lp::ObjectiveSense::kMinimize);
    const int n = rng.NextInt(1, 8);
    for (int j = 0; j < n; ++j) {
      const double lo = rng.NextBernoulli(0.2) ? -lp::kInfinity
                                               : rng.NextInt(-5, 0);
      const double hi = rng.NextBernoulli(0.2) ? lp::kInfinity
                                               : rng.NextInt(1, 9);
      model.AddVariable("v?" + std::to_string(j), lo, hi,
                        rng.NextInt(-3, 3), rng.NextBernoulli(0.5));
    }
    for (int i = rng.NextInt(0, 4); i > 0; --i) {
      const int row = model.AddConstraint(
          "", static_cast<lp::ConstraintSense>(rng.NextInt(0, 2)),
          rng.NextInt(-10, 10));
      for (int j = 0; j < n; ++j) {
        if (rng.NextBernoulli(0.5)) model.AddTerm(row, j, rng.NextInt(-4, 4));
      }
    }
    const std::string text = lp::WriteLpFormat(model);
    EXPECT_NE(text.find("End"), std::string::npos);
    EXPECT_NE(text.find("Subject To"), std::string::npos);
  }
}

TEST(RobustnessTest, SimplexSurvivesDegenerateRandomModels) {
  // Random models with zero rows, fixed variables and contradictory
  // bounds must come back with a definitive status, never hang or abort.
  Rng rng(4);
  for (int trial = 0; trial < 60; ++trial) {
    lp::LinearModel model(lp::ObjectiveSense::kMaximize);
    const int n = rng.NextInt(1, 6);
    for (int j = 0; j < n; ++j) {
      const int lo = rng.NextInt(-3, 3);
      model.AddVariable("x", lo, lo + rng.NextInt(0, 4), rng.NextInt(-2, 2));
    }
    for (int i = rng.NextInt(0, 5); i > 0; --i) {
      const int row = model.AddConstraint(
          "c", static_cast<lp::ConstraintSense>(rng.NextInt(0, 2)),
          rng.NextInt(-6, 6));
      for (int j = 0; j < n; ++j) {
        if (rng.NextBernoulli(0.4)) model.AddTerm(row, j, rng.NextInt(-3, 3));
      }
    }
    lp::SimplexOptions options;
    options.max_iterations = 20000;
    auto result = lp::SolveLp(model, options);
    ASSERT_TRUE(result.ok());
    if (result->status == lp::SolveStatus::kOptimal) {
      EXPECT_TRUE(model.IsFeasible(result->x, 1e-5)) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace soc
