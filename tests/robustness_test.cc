// Robustness sweeps: hostile and randomized inputs must produce clean
// Status errors (or valid results), never crashes or checked aborts.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "boolean/evaluator.h"
#include "boolean/query_log.h"
#include "boolean/table.h"
#include "common/csv.h"
#include "common/random.h"
#include "common/solve_context.h"
#include "core/brute_force.h"
#include "core/fallback_solver.h"
#include "core/solver_registry.h"
#include "datagen/workload.h"
#include "lp/lp_writer.h"
#include "lp/simplex.h"

namespace soc {
namespace {

// Random byte soup through the CSV parser: must return OK or a clean
// error, and OK results must re-serialize.
TEST(RobustnessTest, CsvParserSurvivesRandomBytes) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string soup;
    const int length = rng.NextInt(0, 120);
    for (int i = 0; i < length; ++i) {
      // Printable-heavy alphabet with CSV metacharacters over-represented.
      const char alphabet[] = "abc,\"\n\r01;\t ";
      soup.push_back(alphabet[rng.NextUint64(sizeof(alphabet) - 1)]);
    }
    auto parsed = ParseCsv(soup, rng.NextBernoulli(0.5));
    if (parsed.ok()) {
      const std::string round = WriteCsv(*parsed);
      auto reparsed = ParseCsv(round, !parsed->header.empty());
      EXPECT_TRUE(reparsed.ok()) << "round-trip failed for: " << soup;
    }
  }
}

TEST(RobustnessTest, BooleanTableParserRejectsGarbageCleanly) {
  const std::string inputs[] = {
      "",                      // Empty.
      "a,b\n1\n",              // Ragged.
      "a,a\n1,0\n",            // Duplicate attribute.
      "a,b\nx,y\n",            // Non-Boolean.
      "a,b\n\"1,0\n",          // Unterminated quote.
  };
  for (const std::string& input : inputs) {
    auto table = BooleanTable::FromCsv(input);
    if (table.ok()) {
      // Only the empty input may parse (as an empty table).
      EXPECT_EQ(table->num_rows(), 0) << input;
    }
  }
}

TEST(RobustnessTest, QueryLogParserMatchesTableParserBehavior) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    // Structurally valid CSV with occasional bad cells.
    const int cols = rng.NextInt(1, 4);
    const int rows = rng.NextInt(0, 5);
    std::string csv;
    for (int c = 0; c < cols; ++c) {
      csv += (c ? "," : "") + std::string(1, static_cast<char>('a' + c));
    }
    csv += '\n';
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (c) csv += ',';
        const int die = rng.NextInt(0, 9);
        csv += die < 4 ? "0" : (die < 8 ? "1" : "2");  // 20% bad cells.
      }
      csv += '\n';
    }
    auto log = QueryLog::FromCsv(csv);
    auto table = BooleanTable::FromCsv(csv);
    EXPECT_EQ(log.ok(), table.ok());
    if (log.ok()) {
      EXPECT_EQ(log->size(), table->num_rows());
    }
  }
}

TEST(RobustnessTest, LpWriterHandlesRandomModels) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    lp::LinearModel model(rng.NextBernoulli(0.5)
                              ? lp::ObjectiveSense::kMaximize
                              : lp::ObjectiveSense::kMinimize);
    const int n = rng.NextInt(1, 8);
    for (int j = 0; j < n; ++j) {
      const double lo = rng.NextBernoulli(0.2) ? -lp::kInfinity
                                               : rng.NextInt(-5, 0);
      const double hi = rng.NextBernoulli(0.2) ? lp::kInfinity
                                               : rng.NextInt(1, 9);
      model.AddVariable("v?" + std::to_string(j), lo, hi,
                        rng.NextInt(-3, 3), rng.NextBernoulli(0.5));
    }
    for (int i = rng.NextInt(0, 4); i > 0; --i) {
      const int row = model.AddConstraint(
          "", static_cast<lp::ConstraintSense>(rng.NextInt(0, 2)),
          rng.NextInt(-10, 10));
      for (int j = 0; j < n; ++j) {
        if (rng.NextBernoulli(0.5)) model.AddTerm(row, j, rng.NextInt(-4, 4));
      }
    }
    const std::string text = lp::WriteLpFormat(model);
    EXPECT_NE(text.find("End"), std::string::npos);
    EXPECT_NE(text.find("Subject To"), std::string::npos);
  }
}

TEST(RobustnessTest, SimplexSurvivesDegenerateRandomModels) {
  // Random models with zero rows, fixed variables and contradictory
  // bounds must come back with a definitive status, never hang or abort.
  Rng rng(4);
  for (int trial = 0; trial < 60; ++trial) {
    lp::LinearModel model(lp::ObjectiveSense::kMaximize);
    const int n = rng.NextInt(1, 6);
    for (int j = 0; j < n; ++j) {
      const int lo = rng.NextInt(-3, 3);
      model.AddVariable("x", lo, lo + rng.NextInt(0, 4), rng.NextInt(-2, 2));
    }
    for (int i = rng.NextInt(0, 5); i > 0; --i) {
      const int row = model.AddConstraint(
          "c", static_cast<lp::ConstraintSense>(rng.NextInt(0, 2)),
          rng.NextInt(-6, 6));
      for (int j = 0; j < n; ++j) {
        if (rng.NextBernoulli(0.4)) model.AddTerm(row, j, rng.NextInt(-3, 3));
      }
    }
    lp::SimplexOptions options;
    options.max_iterations = 20000;
    auto result = lp::SolveLp(model, options);
    ASSERT_TRUE(result.ok());
    if (result->status == lp::SolveStatus::kOptimal) {
      EXPECT_TRUE(model.IsFeasible(result->x, 1e-5)) << "trial " << trial;
    }
  }
}

// ---------------------------------------------------------------------------
// Execution-harness sweeps: every registered solver, stopped at arbitrary
// points via fault injection, must return a valid (if degraded) solution.
// ---------------------------------------------------------------------------

QueryLog HarnessLog() {
  const AttributeSchema schema = AttributeSchema::Anonymous(18);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = 60;
  wl.seed = 77;
  return datagen::MakeSyntheticWorkload(schema, wl);
}

DynamicBitset HarnessTuple() {
  DynamicBitset t(18);
  t.SetAll();
  t.Reset(2);
  t.Reset(11);
  return t;
}

// The invariants every solution — complete or degraded — must satisfy.
void ExpectValidSolution(const QueryLog& log, const DynamicBitset& tuple,
                         int m, const SocSolution& solution,
                         const std::string& label) {
  EXPECT_TRUE(solution.selected.IsSubsetOf(tuple)) << label;
  const int m_eff = std::min<int>(m, static_cast<int>(tuple.Count()));
  EXPECT_EQ(static_cast<int>(solution.selected.Count()), m_eff) << label;
  EXPECT_EQ(solution.satisfied_queries,
            CountSatisfiedQueries(log, solution.selected))
      << label;
  if (IsDegraded(solution)) {
    EXPECT_FALSE(solution.proved_optimal) << label;
    EXPECT_NE(SolutionStopReason(solution), StopReason::kNone) << label;
  }
}

TEST(RobustnessTest, FaultInjectedSolversDegradeToValidSolutions) {
  const QueryLog log = HarnessLog();
  const DynamicBitset tuple = HarnessTuple();
  const StopReason reasons[] = {StopReason::kDeadline, StopReason::kCancelled,
                                StopReason::kTickBudget};
  const std::int64_t inject_ticks[] = {1, 5, 50};
  for (const std::string& name : RegisteredSolverNames()) {
    auto solver = CreateSolverByName(name);
    ASSERT_TRUE(solver.ok()) << name;
    for (const StopReason reason : reasons) {
      for (const std::int64_t at_tick : inject_ticks) {
        SolveContext context;
        context.InjectFault(reason, at_tick);
        auto solution = (*solver)->SolveWithContext(log, tuple, 6, &context);
        const std::string label = name + " reason=" +
                                  StopReasonToString(reason) + " tick=" +
                                  std::to_string(at_tick);
        ASSERT_TRUE(solution.ok()) << label << ": "
                                   << solution.status().ToString();
        ExpectValidSolution(log, tuple, 6, *solution, label);
        // A solver that was actually stopped must report the injected
        // reason; one that finished under the wire must claim optimality
        // honestly (proved or not, but undegraded).
        if (IsDegraded(*solution)) {
          EXPECT_EQ(SolutionStopReason(*solution), reason) << label;
        }
      }
    }
  }
}

TEST(RobustnessTest, PreExpiredDeadlineDegradesEverySolver) {
  const QueryLog log = HarnessLog();
  const DynamicBitset tuple = HarnessTuple();
  for (const std::string& name : RegisteredSolverNames()) {
    auto solver = CreateSolverByName(name);
    ASSERT_TRUE(solver.ok()) << name;
    SolveContext context;
    context.set_deadline(Deadline::AfterSeconds(0.0));
    auto solution = (*solver)->SolveWithContext(log, tuple, 6, &context);
    ASSERT_TRUE(solution.ok()) << name;
    ExpectValidSolution(log, tuple, 6, *solution, name);
    EXPECT_TRUE(IsDegraded(*solution)) << name;
    EXPECT_EQ(SolutionStopReason(*solution), StopReason::kDeadline) << name;
  }
}

TEST(RobustnessTest, PreSetCancelFlagDegradesEverySolver) {
  const QueryLog log = HarnessLog();
  const DynamicBitset tuple = HarnessTuple();
  std::atomic<bool> cancel{true};
  for (const std::string& name : RegisteredSolverNames()) {
    auto solver = CreateSolverByName(name);
    ASSERT_TRUE(solver.ok()) << name;
    SolveContext context;
    context.set_cancel_flag(&cancel);
    auto solution = (*solver)->SolveWithContext(log, tuple, 6, &context);
    ASSERT_TRUE(solution.ok()) << name;
    ExpectValidSolution(log, tuple, 6, *solution, name);
    EXPECT_TRUE(IsDegraded(*solution)) << name;
    EXPECT_EQ(SolutionStopReason(*solution), StopReason::kCancelled) << name;
  }
}

TEST(RobustnessTest, ConcurrentCancellationStopsLongSolve) {
  // A genuinely concurrent cancel on a large instance. The assertions are
  // timing-tolerant: whichever way the race goes, the answer must be valid;
  // a stop must be attributed to cancellation.
  const AttributeSchema schema = AttributeSchema::Anonymous(26);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = 400;
  wl.seed = 5;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
  DynamicBitset tuple(26);
  tuple.SetAll();

  std::atomic<bool> cancel{false};
  SolveContext context;
  context.set_cancel_flag(&cancel);
  BruteForceOptions options;
  options.max_combinations = 0;  // Unlimited: only the flag can stop it.
  const BruteForceSolver solver(options);
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.store(true);
  });
  auto solution = solver.SolveWithContext(log, tuple, 13, &context);
  canceller.join();
  ASSERT_TRUE(solution.ok());
  ExpectValidSolution(log, tuple, 13, *solution, "concurrent-cancel");
  if (IsDegraded(*solution)) {
    EXPECT_EQ(SolutionStopReason(*solution), StopReason::kCancelled);
  }
}

TEST(RobustnessTest, TickBudgetBoundsWorkPerformed) {
  const QueryLog log = HarnessLog();
  const DynamicBitset tuple = HarnessTuple();
  for (const std::string& name : RegisteredSolverNames()) {
    auto solver = CreateSolverByName(name);
    ASSERT_TRUE(solver.ok()) << name;
    SolveContext context;
    context.set_tick_budget(100);
    auto solution = (*solver)->SolveWithContext(log, tuple, 6, &context);
    ASSERT_TRUE(solution.ok()) << name;
    ExpectValidSolution(log, tuple, 6, *solution, name);
    // The budget admits at most budget + 1 ticks (the trip itself).
    EXPECT_LE(context.ticks(), 101) << name;
    if (IsDegraded(*solution)) {
      EXPECT_EQ(SolutionStopReason(*solution), StopReason::kTickBudget)
          << name;
    }
  }
}

TEST(RobustnessTest, FallbackRescuesCappedBruteForce) {
  const QueryLog log = HarnessLog();
  const DynamicBitset tuple = HarnessTuple();
  BruteForceOptions cap;
  cap.max_combinations = 1;
  FallbackSolver fallback(std::make_unique<BruteForceSolver>(cap));
  auto solution = fallback.Solve(log, tuple, 6);
  ASSERT_TRUE(solution.ok());
  ExpectValidSolution(log, tuple, 6, *solution, "fallback-capped");
  EXPECT_TRUE(IsDegraded(*solution));
  EXPECT_EQ(SolutionStopReason(*solution), StopReason::kResourceLimit);
  double tier = -1.0;
  for (const auto& [key, value] : solution->metrics) {
    if (key == "fallback_tier") tier = value;
  }
  EXPECT_GE(tier, 0.0);
}

TEST(RobustnessTest, FallbackIsCleanWhenExactTierFinishes) {
  const QueryLog log = HarnessLog();
  const DynamicBitset tuple = HarnessTuple();
  const FallbackSolver fallback;
  auto unconstrained = fallback.Solve(log, tuple, 6);
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_FALSE(IsDegraded(*unconstrained));
  EXPECT_TRUE(unconstrained->proved_optimal);
  double tier = -1.0;
  for (const auto& [key, value] : unconstrained->metrics) {
    if (key == "fallback_tier") tier = value;
  }
  EXPECT_EQ(tier, 0.0);

  // Under an impossible budget the portfolio still answers, and never
  // worse than its greedy tier.
  SolveContext context;
  context.InjectFault(StopReason::kDeadline, 1);
  auto degraded = fallback.SolveWithContext(log, tuple, 6, &context);
  ASSERT_TRUE(degraded.ok());
  ExpectValidSolution(log, tuple, 6, *degraded, "fallback-degraded");
  EXPECT_TRUE(IsDegraded(*degraded));
  EXPECT_LE(degraded->satisfied_queries, unconstrained->satisfied_queries);
}

}  // namespace
}  // namespace soc
