#include "common/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace soc {
namespace {

TEST(CsvTest, ParseSimpleWithHeader) {
  auto result = ParseCsv("a,b,c\n1,2,3\n4,5,6\n", /*has_header=*/true);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0], (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_EQ(result->rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, ParseWithoutHeader) {
  auto result = ParseCsv("1,2\n3,4\n", /*has_header=*/false);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->header.empty());
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST(CsvTest, QuotedFields) {
  auto result =
      ParseCsv("name,desc\ncar,\"power, locks\"\nbike,\"say \"\"hi\"\"\"\n",
               /*has_header=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][1], "power, locks");
  EXPECT_EQ(result->rows[1][1], "say \"hi\"");
}

TEST(CsvTest, CrlfLineEndings) {
  auto result = ParseCsv("a,b\r\n1,2\r\n", /*has_header=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][1], "2");
}

TEST(CsvTest, BlankLinesSkipped) {
  auto result = ParseCsv("a,b\n\n1,2\n\n", /*has_header=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST(CsvTest, RaggedRowIsError) {
  auto result = ParseCsv("a,b\n1,2,3\n", /*has_header=*/true);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  auto result = ParseCsv("a\n\"oops\n", /*has_header=*/true);
  ASSERT_FALSE(result.ok());
}

TEST(CsvTest, EmptyInput) {
  auto result = ParseCsv("", /*has_header=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->header.empty());
  EXPECT_TRUE(result->rows.empty());
}

TEST(CsvTest, WriteRoundTrips) {
  CsvTable table;
  table.header = {"x", "y"};
  table.rows = {{"hello", "a,b"}, {"\"q\"", ""}};
  const std::string text = WriteCsv(table);
  auto parsed = ParseCsv(text, /*has_header=*/true);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, table.header);
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable table;
  table.header = {"a"};
  table.rows = {{"1"}, {"0"}};
  const std::string path = ::testing::TempDir() + "/soc_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(table, path).ok());
  auto loaded = ReadCsvFile(path, /*has_header=*/true);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto loaded = ReadCsvFile("/nonexistent/really/not/here.csv", true);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace soc
