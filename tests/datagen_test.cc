#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "datagen/car_dataset.h"
#include "datagen/clique.h"
#include "datagen/workload.h"

namespace soc::datagen {
namespace {

TEST(CarDatasetTest, ShapeMatchesPaper) {
  CarDatasetOptions options;
  options.num_cars = 500;  // Keep the test fast; the default is 15,211.
  const BooleanTable db = GenerateCarDataset(options);
  EXPECT_EQ(db.num_rows(), 500);
  EXPECT_EQ(db.num_attributes(), kNumCarAttributes);
  EXPECT_EQ(db.schema().Find("AC"), 0);
  EXPECT_NE(db.schema().Find("Turbo"), -1);
}

TEST(CarDatasetTest, DeterministicForSeed) {
  CarDatasetOptions options;
  options.num_cars = 50;
  const BooleanTable a = GenerateCarDataset(options);
  const BooleanTable b = GenerateCarDataset(options);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.row(i), b.row(i));
  options.seed = 999;
  const BooleanTable c = GenerateCarDataset(options);
  int diffs = 0;
  for (int i = 0; i < 50; ++i) diffs += (a.row(i) != c.row(i));
  EXPECT_GT(diffs, 0);
}

TEST(CarDatasetTest, PrevalencesAreSkewed) {
  CarDatasetOptions options;
  options.num_cars = 2000;
  const BooleanTable db = GenerateCarDataset(options);
  const std::vector<int> freq = db.AttributeFrequencies();
  // AC should be near-universal, Turbo rare, and features correlated:
  EXPECT_GT(freq[0], 1500);                                // AC.
  const int turbo = db.schema().Find("Turbo");
  EXPECT_LT(freq[turbo], 600);
  EXPECT_GT(freq[turbo], 10);
}

TEST(CarDatasetTest, SportBundleIsCorrelated) {
  CarDatasetOptions options;
  options.num_cars = 4000;
  const BooleanTable db = GenerateCarDataset(options);
  const int turbo = db.schema().Find("Turbo");
  const int spoiler = db.schema().Find("Spoiler");
  int turbo_count = 0, spoiler_count = 0, both = 0;
  for (const DynamicBitset& row : db.rows()) {
    const bool has_turbo = row.Test(turbo);
    const bool has_spoiler = row.Test(spoiler);
    turbo_count += has_turbo;
    spoiler_count += has_spoiler;
    both += has_turbo && has_spoiler;
  }
  // P(both) should clearly exceed the independence baseline.
  const double n = db.num_rows();
  EXPECT_GT(both / n, 1.5 * (turbo_count / n) * (spoiler_count / n));
}

TEST(SyntheticWorkloadTest, SizeDistributionRespected) {
  const AttributeSchema schema = AttributeSchema::Anonymous(32);
  SyntheticWorkloadOptions options;
  options.num_queries = 5000;
  const QueryLog log = MakeSyntheticWorkload(schema, options);
  ASSERT_EQ(log.size(), 5000);
  std::vector<int> size_counts(8, 0);
  for (const DynamicBitset& q : log.queries()) {
    ASSERT_GE(q.Count(), 1u);
    ASSERT_LE(q.Count(), 5u);
    ++size_counts[q.Count()];
  }
  // Paper's mix: 20/30/30/10/10 percent.
  EXPECT_NEAR(size_counts[1] / 5000.0, 0.20, 0.03);
  EXPECT_NEAR(size_counts[2] / 5000.0, 0.30, 0.03);
  EXPECT_NEAR(size_counts[3] / 5000.0, 0.30, 0.03);
  EXPECT_NEAR(size_counts[4] / 5000.0, 0.10, 0.03);
  EXPECT_NEAR(size_counts[5] / 5000.0, 0.10, 0.03);
}

TEST(SyntheticWorkloadTest, DeterministicForSeed) {
  const AttributeSchema schema = AttributeSchema::Anonymous(16);
  SyntheticWorkloadOptions options;
  options.num_queries = 20;
  const QueryLog a = MakeSyntheticWorkload(schema, options);
  const QueryLog b = MakeSyntheticWorkload(schema, options);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.query(i), b.query(i));
}

TEST(RealLikeWorkloadTest, AllQueriesHaveAtLeastFourAttributes) {
  // Matches the paper's Fig 7: no real query has <= 3 attributes, so m = 3
  // satisfies nothing.
  CarDatasetOptions car_options;
  car_options.num_cars = 1000;
  const BooleanTable db = GenerateCarDataset(car_options);
  const QueryLog log = MakeRealLikeWorkload(db);
  ASSERT_EQ(log.size(), kPaperRealWorkloadSize);
  for (const DynamicBitset& q : log.queries()) {
    EXPECT_GE(q.Count(), 4u);
    EXPECT_LE(q.Count(), 6u);
  }
}

TEST(RealLikeWorkloadTest, PopularAttributesQueriedMore) {
  CarDatasetOptions car_options;
  car_options.num_cars = 1000;
  const BooleanTable db = GenerateCarDataset(car_options);
  RealLikeWorkloadOptions options;
  options.num_queries = 2000;
  const QueryLog log = MakeRealLikeWorkload(db, options);
  const std::vector<int> freq = log.AttributeFrequencies();
  const int ac = db.schema().Find("AC");
  const int turbo = db.schema().Find("Turbo");
  EXPECT_GT(freq[ac], freq[turbo]);
}

TEST(PickAdvertisedTuplesTest, DistinctAndInRange) {
  CarDatasetOptions options;
  options.num_cars = 200;
  const BooleanTable db = GenerateCarDataset(options);
  const std::vector<int> picks = PickAdvertisedTuples(db, 100, 1);
  EXPECT_EQ(picks.size(), 100u);
  std::set<int> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 100u);
  for (int p : picks) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 200);
  }
  // Asking for more than available clamps.
  EXPECT_EQ(PickAdvertisedTuples(db, 500, 1).size(), 200u);
}

TEST(GraphTest, ErdosRenyiEdgeCount) {
  const Graph g = Graph::ErdosRenyi(30, 0.5, 7);
  const int max_edges = 30 * 29 / 2;
  EXPECT_GT(static_cast<int>(g.edges().size()), max_edges / 4);
  EXPECT_LT(static_cast<int>(g.edges().size()), 3 * max_edges / 4);
  for (const auto& [u, v] : g.edges()) {
    EXPECT_TRUE(g.HasEdge(u, v));
    EXPECT_TRUE(g.HasEdge(v, u));
    EXPECT_LT(u, v);
  }
}

TEST(GraphTest, CliqueDetection) {
  Graph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(0, 2);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  EXPECT_TRUE(g.IsClique(DynamicBitset::FromString("11100")));
  EXPECT_FALSE(g.IsClique(DynamicBitset::FromString("11110")));
  EXPECT_TRUE(g.IsClique(DynamicBitset::FromString("00011")));
  EXPECT_TRUE(g.IsClique(DynamicBitset::FromString("10000")));  // Singleton.
  EXPECT_EQ(g.MaxCliqueSize(), 3);
}

TEST(GraphTest, MaxCliqueOnCompleteAndEmptyGraphs) {
  Graph complete(6);
  for (int u = 0; u < 6; ++u) {
    for (int v = u + 1; v < 6; ++v) complete.AddEdge(u, v);
  }
  EXPECT_EQ(complete.MaxCliqueSize(), 6);
  Graph empty(6);
  EXPECT_EQ(empty.MaxCliqueSize(), 1);
  Graph zero(0);
  EXPECT_EQ(zero.MaxCliqueSize(), 0);
}

TEST(CliqueReductionTest, InstanceShape) {
  Graph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  const CliqueSocInstance instance = CliqueToSoc(g);
  EXPECT_EQ(instance.log.size(), 2);
  EXPECT_EQ(instance.log.num_attributes(), 4);
  EXPECT_EQ(instance.log.query(0).SetBits(), (std::vector<int>{0, 1}));
  EXPECT_TRUE(instance.tuple.All());
  EXPECT_EQ(CliqueCertificate(4), 6);
}

}  // namespace
}  // namespace soc::datagen
