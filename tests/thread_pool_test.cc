#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

namespace soc {
namespace {

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.num_threads(), 4);
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 500; ++i) {
      EXPECT_TRUE(pool.Submit([&counter] { ++counter; }));
    }
  }  // Destructor drains the queue before joining.
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, TasksRunOnMultipleThreads) {
  std::mutex mutex;
  std::set<std::thread::id> thread_ids;
  std::atomic<int> started{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&] {
        ++started;
        // Hold the task long enough that one thread cannot run them all.
        while (started.load() < 4) {
          std::this_thread::yield();
        }
        std::lock_guard<std::mutex> lock(mutex);
        thread_ids.insert(std::this_thread::get_id());
      });
    }
  }
  EXPECT_GE(thread_ids.size(), 2u);
}

TEST(ThreadPoolTest, ShutdownIsIdempotentAndStopsIntake) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.Submit([&counter] { ++counter; }));
  pool.Shutdown();
  pool.Shutdown();  // Second call must be a no-op.
  EXPECT_EQ(counter.load(), 1);
  EXPECT_FALSE(pool.Submit([&counter] { ++counter; }));
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ExceptionInTaskDoesNotKillWorker) {
  ThreadPool pool(1);
  std::atomic<bool> ran_after{false};
  pool.Submit([] { throw std::runtime_error("task failure"); });
  pool.Submit([&ran_after] { ran_after = true; });
  pool.Shutdown();
  EXPECT_TRUE(ran_after.load());
  EXPECT_EQ(pool.tasks_failed(), 1);
  EXPECT_EQ(pool.tasks_completed(), 2);
}

TEST(ThreadPoolTest, CountsCompletedTasks) {
  ThreadPool pool(3);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([] {});
  }
  pool.Shutdown();
  EXPECT_EQ(pool.tasks_completed(), 64);
  EXPECT_EQ(pool.tasks_failed(), 0);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, ConcurrentShutdownWaitsForDrain) {
  // Every Shutdown call must return only after the queue is drained and
  // the workers joined — including a call that loses the joining race to
  // a concurrent Shutdown. (Regression: the loser used to return early
  // while tasks were still running.)
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    std::thread other([&pool] { pool.Shutdown(); });
    pool.Shutdown();
    // This caller may have lost the race, but the contract still holds:
    // all 64 tasks finished before Shutdown returned.
    EXPECT_EQ(counter.load(), 64);
    other.join();
  }
}

TEST(ThreadPoolTest, SubmitFromWithinATask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    ++counter;
    pool.Submit([&counter] { ++counter; });
  });
  // Give the nested task a chance to be queued before shutdown drains.
  while (pool.tasks_completed() < 1) {
    std::this_thread::yield();
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, AccountsQueueWaitAndExecuteTime) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.Submit([&release] {
    // Keep the only worker busy so the next task measurably queues.
    while (!release.load()) {
      std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  pool.Submit([] {});
  // Both tasks submitted; the second sits queued behind the blocker.
  while (pool.busy_workers() < 1 || pool.queue_depth() < 1) {
    std::this_thread::yield();
  }
  EXPECT_EQ(pool.busy_workers(), 1);
  release = true;
  pool.Shutdown();

  // The second task waited at least as long as the blocker's sleep
  // (claim-time accounting: the blocker's run time is its successor's
  // queue wait, not its own execute time).
  EXPECT_GE(pool.total_queue_wait_ms(), 15.0);
  EXPECT_GE(pool.total_execute_ms(), 15.0);
  EXPECT_EQ(pool.busy_workers(), 0);
}

TEST(ThreadPoolTest, IdlePoolHasNegligibleQueueWait) {
  ThreadPool pool(2);
  pool.Submit([] {});
  pool.Shutdown();
  // One task on an idle pool is claimed nearly immediately; the counter
  // must not inflate wait with execute time.
  EXPECT_LT(pool.total_queue_wait_ms(), 1000.0);
  EXPECT_GE(pool.total_queue_wait_ms(), 0.0);
  EXPECT_EQ(pool.tasks_completed(), 1);
}

}  // namespace
}  // namespace soc
