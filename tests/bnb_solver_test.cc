#include "core/bnb_solver.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/brute_force.h"
#include "core/solver_registry.h"
#include "datagen/clique.h"
#include "datagen/workload.h"
#include "paper_example.h"

namespace soc {
namespace {

TEST(BnbSolverTest, PaperExample) {
  const BnbSocSolver solver;
  auto solution =
      solver.Solve(testdata::PaperQueryLog(), testdata::PaperNewTuple(), 3);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->satisfied_queries, 3);
  EXPECT_EQ(solution->selected, DynamicBitset::FromString("110100"));
  EXPECT_TRUE(solution->proved_optimal);
}

TEST(BnbSolverTest, NodeBudgetDegradesToIncumbent) {
  const datagen::Graph graph = datagen::Graph::ErdosRenyi(30, 0.6, 1);
  const datagen::CliqueSocInstance instance = datagen::CliqueToSoc(graph);
  BnbSocOptions options;
  options.max_nodes = 10;
  const BnbSocSolver solver(options);
  auto solution = solver.Solve(instance.log, instance.tuple, 8);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(IsDegraded(*solution));
  EXPECT_EQ(SolutionStopReason(*solution), StopReason::kResourceLimit);
  EXPECT_FALSE(solution->proved_optimal);
  EXPECT_EQ(solution->selected.Count(), 8u);
  EXPECT_TRUE(solution->selected.IsSubsetOf(instance.tuple));
  // The greedy incumbent seeded before the search survives the truncation.
  EXPECT_GE(solution->satisfied_queries, 0);
}

TEST(BnbSolverTest, ReportsNodeMetric) {
  const BnbSocSolver solver;
  auto solution =
      solver.Solve(testdata::PaperQueryLog(), testdata::PaperNewTuple(), 3);
  ASSERT_TRUE(solution.ok());
  ASSERT_FALSE(solution->metrics.empty());
  EXPECT_EQ(solution->metrics[0].first, "nodes");
  EXPECT_GE(solution->metrics[0].second, 1.0);
}

TEST(BnbSolverTest, SolvesCliqueInstancesExactly) {
  for (int trial = 0; trial < 5; ++trial) {
    const datagen::Graph graph =
        datagen::Graph::ErdosRenyi(12, 0.5, 100 + trial);
    const datagen::CliqueSocInstance instance = datagen::CliqueToSoc(graph);
    const int omega = graph.MaxCliqueSize();
    const BnbSocSolver solver;
    for (int r = 2; r <= 5; ++r) {
      auto solution = solver.Solve(instance.log, instance.tuple, r);
      ASSERT_TRUE(solution.ok());
      EXPECT_EQ(solution->satisfied_queries >= datagen::CliqueCertificate(r),
                omega >= r)
          << "trial " << trial << " r " << r;
    }
  }
}

TEST(BnbSolverTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(2468);
  const BruteForceSolver reference;
  const BnbSocSolver solver;
  for (int trial = 0; trial < 25; ++trial) {
    const int num_attrs = rng.NextInt(5, 16);
    const AttributeSchema schema = AttributeSchema::Anonymous(num_attrs);
    datagen::SyntheticWorkloadOptions wl;
    wl.num_queries = rng.NextInt(5, 120);
    wl.seed = trial * 13 + 1;
    const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
    DynamicBitset t(num_attrs);
    for (int a = 0; a < num_attrs; ++a) {
      if (rng.NextBernoulli(0.6)) t.Set(a);
    }
    const int m = rng.NextInt(0, num_attrs);
    auto expected = reference.Solve(log, t, m);
    auto actual = solver.Solve(log, t, m);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(actual->satisfied_queries, expected->satisfied_queries)
        << "trial " << trial;
  }
}

TEST(SolverRegistryTest, AllNamesConstruct) {
  for (const std::string& name : RegisteredSolverNames()) {
    auto solver = CreateSolverByName(name);
    ASSERT_TRUE(solver.ok()) << name;
    // The registry name round-trips through the instance (the -dfs variant
    // reports its family name).
    if (name != "MaxFreqItemSets-dfs") {
      EXPECT_EQ((*solver)->name(), name);
    }
  }
}

TEST(SolverRegistryTest, UnknownNameIsNotFound) {
  auto solver = CreateSolverByName("Simplex2000");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), StatusCode::kNotFound);
  EXPECT_NE(solver.status().message().find("BruteForce"), std::string::npos);
}

TEST(SolverRegistryTest, RegistryInstancesSolve) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  for (const std::string& name : RegisteredSolverNames()) {
    auto solver = CreateSolverByName(name);
    ASSERT_TRUE(solver.ok());
    auto solution = (*solver)->Solve(log, t, 3);
    ASSERT_TRUE(solution.ok()) << name;
    EXPECT_GE(solution->satisfied_queries, 0);
    EXPECT_LE(solution->satisfied_queries, 3);
  }
}

}  // namespace
}  // namespace soc
