// End-to-end golden regression: runs the real socvis_solve binary on two
// pinned inputs — the paper's worked example (Fig 1 / EXAMPLE 1) and a
// fixed-seed synthetic instance — and compares the full stdout against
// checked-in golden files. Timing fields are normalized to "X.XX ms"
// before comparison; everything else (solver order, objective values,
// selected attribute names, [optimal]/[degraded] markers) must match
// byte-for-byte.
//
// To refresh a golden after an intentional output change:
//   socvis_solve --log=tests/golden/<name>-log.csv --tuple=... --m=... --all |
//     sed -E 's/ *[0-9]+\.[0-9]+ ms/ X.XX ms/' > tests/golden/<name>-expected.txt

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>

#ifndef SOC_SOLVE_BINARY
#error "SOC_SOLVE_BINARY must point at the socvis_solve executable"
#endif
#ifndef SOC_GOLDEN_DIR
#error "SOC_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

std::string RunSolve(const std::string& args) {
  const std::string command = std::string(SOC_SOLVE_BINARY) + " " + args;
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << command;
  if (pipe == nullptr) return "";
  std::string output;
  char buffer[4096];
  std::size_t n;
  while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    output.append(buffer, n);
  }
  const int status = pclose(pipe);
  EXPECT_EQ(status, 0) << command << "\n" << output;
  return output;
}

std::string NormalizeTimings(const std::string& text) {
  static const std::regex timing(" *[0-9]+\\.[0-9]+ ms");
  return std::regex_replace(text, timing, " X.XX ms");
}

std::string ReadGolden(const std::string& name) {
  const std::string path = std::string(SOC_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string GoldenPath(const std::string& name) {
  return std::string(SOC_GOLDEN_DIR) + "/" + name;
}

// The paper's running example: 5 queries over 6 auto-dealer attributes,
// new tuple t = [1,1,0,1,1,1], budget m = 3. Every registry solver must
// report the known optimum of 3 satisfied queries.
TEST(GoldenRegressionTest, PaperWorkedExampleAllSolvers) {
  const std::string output = RunSolve(
      "--log=" + GoldenPath("paper-log.csv") + " --tuple=110111 --m=3 --all");
  EXPECT_EQ(NormalizeTimings(output), ReadGolden("paper-expected.txt"));
}

// A denser fixed-seed synthetic instance (socvis_check --dump=17: 55
// queries over 9 attributes, checked in once) exercised at a mid-range
// budget.
TEST(GoldenRegressionTest, FixedSeedSyntheticAllSolvers) {
  const std::string output =
      RunSolve("--log=" + GoldenPath("synthetic-log.csv") +
               " --tuple=111011010 --m=4 --all");
  EXPECT_EQ(NormalizeTimings(output), ReadGolden("synthetic-expected.txt"));
}

// The JSON surface of the same worked example, with the volatile
// "milliseconds" fields normalized away.
TEST(GoldenRegressionTest, PaperWorkedExampleJson) {
  const std::string output =
      RunSolve("--log=" + GoldenPath("paper-log.csv") +
               " --tuple=110111 --m=3 --all --json");
  static const std::regex millis("\"milliseconds\":[0-9.eE+-]+");
  const std::string normalized =
      std::regex_replace(output, millis, "\"milliseconds\":0");
  EXPECT_EQ(normalized, ReadGolden("paper-expected.json"));
}

}  // namespace
