// ShardedService: consistent-hash routing to shards, admission
// validation (unknown tenant / missing tenant / wrong width), the result
// cache on the data path (cache_hit echo, single solve per key), epoch
// visibility across PublishEpoch (zero stale results, including with a
// publisher racing the submitters — the TSan target for the RCU path),
// per-tenant ledger counters and the merged `shard.<i>.*` gauge view.

#include "tenant/sharded_service.h"

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "boolean/evaluator.h"
#include "boolean/query_log.h"
#include "boolean/schema.h"
#include "common/thread_pool.h"

namespace soc::tenant {
namespace {

QueryLog MakeLog(int width, std::vector<std::vector<int>> queries) {
  QueryLog log(AttributeSchema::Anonymous(width));
  for (const auto& q : queries) log.AddQueryFromIndices(q);
  return log;
}

ShardedServiceOptions SmallOptions(int num_shards = 2) {
  ShardedServiceOptions options;
  options.num_shards = num_shards;
  options.shard.num_workers = 2;
  options.shard.max_queue = 0;  // Unbounded: these tests measure
                                // correctness, not shedding.
  return options;
}

serve::SolveRequest MakeRequest(const std::string& id,
                                const std::string& tenant,
                                const std::string& tuple_bits, int m) {
  serve::SolveRequest request;
  request.id = id;
  request.tenant_id = tenant;
  request.tuple = DynamicBitset::FromString(tuple_bits);
  request.m = m;
  request.solver = "ConsumeAttrCumul";
  return request;
}

TEST(ShardedServiceTest, RoutesEveryTenantToItsRingShard) {
  ShardedService service(SmallOptions(4));
  std::vector<std::future<serve::SolveResponse>> futures;
  for (int t = 0; t < 8; ++t) {
    const std::string tenant = "tenant" + std::to_string(t);
    ASSERT_TRUE(
        service.CreateTenant(tenant, MakeLog(6, {{0, 1}, {1, 2}, {0}})).ok());
    EXPECT_EQ(service.ShardOf(tenant), service.registry().ShardOf(tenant));
    futures.push_back(
        service.Submit(MakeRequest("r" + std::to_string(t), tenant, "011011", 2)));
  }
  service.Drain();
  for (int t = 0; t < 8; ++t) {
    const serve::SolveResponse response = futures[t].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.tenant_id, "tenant" + std::to_string(t));
    EXPECT_EQ(response.epoch, 1);
    EXPECT_FALSE(response.cache_hit);
  }
}

TEST(ShardedServiceTest, RejectsMissingAndUnknownTenants) {
  ShardedService service(SmallOptions());
  ASSERT_TRUE(service.CreateTenant("acme", MakeLog(4, {{0}, {1}})).ok());

  auto missing = service.Submit(MakeRequest("r1", "", "0110", 1));
  auto unknown = service.Submit(MakeRequest("r2", "ghost", "0110", 1));
  service.Drain();
  EXPECT_EQ(missing.get().status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(unknown.get().status.code(), StatusCode::kNotFound);
}

TEST(ShardedServiceTest, RejectsTupleWidthMismatchAtAdmission) {
  ShardedService service(SmallOptions());
  ASSERT_TRUE(service.CreateTenant("acme", MakeLog(6, {{0}, {1}})).ok());

  // Width is checked against the tenant's own catalog, not a global one.
  auto narrow = service.Submit(MakeRequest("r1", "acme", "01", 1));
  service.Drain();
  const serve::SolveResponse response = narrow.get();
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(response.tenant_id, "acme");
}

TEST(ShardedServiceTest, RepeatedRequestIsACacheHitWithTheSameAnswer) {
  ShardedService service(SmallOptions());
  ASSERT_TRUE(
      service.CreateTenant("acme", MakeLog(6, {{0, 1}, {1}, {2, 4}, {1, 4}}))
          .ok());

  auto first = service.Submit(MakeRequest("r1", "acme", "010110", 2));
  service.Drain();
  auto second = service.Submit(MakeRequest("r2", "acme", "010110", 2));
  service.Drain();

  const serve::SolveResponse cold = first.get();
  const serve::SolveResponse warm = second.get();
  ASSERT_TRUE(cold.status.ok()) << cold.status.ToString();
  ASSERT_TRUE(warm.status.ok()) << warm.status.ToString();
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.epoch, cold.epoch);
  EXPECT_EQ(warm.solver, cold.solver);
  EXPECT_EQ(warm.solution.selected.ToString(),
            cold.solution.selected.ToString());
  EXPECT_EQ(warm.solution.satisfied_queries, cold.solution.satisfied_queries);

  const serve::MetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.counters.at("result_cache.hits"), 1);
  EXPECT_EQ(metrics.counters.at("result_cache.misses"), 1);
}

TEST(ShardedServiceTest, PublishEpochIsVisibleToSubsequentRequests) {
  ShardedService service(SmallOptions());
  const QueryLog log_v1 = MakeLog(4, {{0}, {0}, {1}});
  const QueryLog log_v2 = MakeLog(4, {{3}, {3}, {3}, {2}});
  ASSERT_TRUE(service.CreateTenant("acme", MakeLog(4, {{0}, {0}, {1}})).ok());

  auto before = service.Submit(MakeRequest("r1", "acme", "1111", 1));
  service.Drain();
  auto epoch = service.PublishEpoch("acme", MakeLog(4, {{3}, {3}, {3}, {2}}));
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 2);
  auto after = service.Submit(MakeRequest("r2", "acme", "1111", 1));
  service.Drain();

  const serve::SolveResponse v1 = before.get();
  const serve::SolveResponse v2 = after.get();
  ASSERT_TRUE(v1.status.ok());
  ASSERT_TRUE(v2.status.ok());
  EXPECT_EQ(v1.epoch, 1);
  EXPECT_EQ(v2.epoch, 2);
  // The post-publish answer is optimal against the *new* catalog — the
  // v1 cache entry (same tenant/tuple/m) must not leak across epochs.
  EXPECT_FALSE(v2.cache_hit);
  EXPECT_EQ(v1.solution.satisfied_queries,
            CountSatisfiedQueries(log_v1, v1.solution.selected));
  EXPECT_EQ(v2.solution.satisfied_queries,
            CountSatisfiedQueries(log_v2, v2.solution.selected));
  EXPECT_EQ(v1.solution.selected.ToString(), "1000");
  EXPECT_EQ(v2.solution.selected.ToString(), "0001");
}

// The RCU/TSan target: submitters hammer one tenant while a publisher
// swaps epochs under them. Every response must carry an epoch at least
// as new as the one pinned at submit time, and its objective must
// recount exactly against the log of the epoch it claims — a stale
// cache replay or a torn snapshot read fails one of the two.
TEST(ShardedServiceTest, ConcurrentPublishesNeverYieldStaleResults) {
  ShardedService service(SmallOptions());
  // Epoch e's log: e queries, each {e % 4}; distinguishable objectives.
  const auto log_for_epoch = [](std::int64_t epoch) {
    std::vector<std::vector<int>> queries;
    for (std::int64_t q = 0; q <= epoch; ++q) {
      queries.push_back({static_cast<int>(epoch % 4)});
    }
    return MakeLog(4, queries);
  };
  ASSERT_TRUE(service.CreateTenant("acme", log_for_epoch(1)).ok());

  constexpr int kRequests = 200;
  constexpr int kPublishes = 8;
  std::vector<std::future<serve::SolveResponse>> futures(kRequests);
  std::vector<std::int64_t> pinned(kRequests, 0);
  std::atomic<std::int64_t> last_epoch{1};
  {
    ThreadPool drivers(3);
    for (int s = 0; s < 2; ++s) {
      drivers.Submit([s, &service, &futures, &pinned] {
        for (int i = s; i < kRequests; i += 2) {
          pinned[i] = service.registry().Acquire("acme")->epoch();
          futures[i] = service.Submit(MakeRequest(
              "r" + std::to_string(i), "acme",
              (i % 3 == 0) ? "1111" : (i % 3 == 1) ? "0111" : "1110", 1));
        }
      });
    }
    drivers.Submit([&service, &log_for_epoch, &last_epoch] {
      for (int p = 0; p < kPublishes; ++p) {
        const auto epoch =
            service.PublishEpoch("acme", log_for_epoch(2 + p));
        ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
        last_epoch.store(*epoch);
      }
    });
    drivers.Shutdown();
  }
  service.Drain();

  int hits = 0;
  for (int i = 0; i < kRequests; ++i) {
    const serve::SolveResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_GE(response.epoch, pinned[i]) << "went back in time";
    ASSERT_LE(response.epoch, last_epoch.load());
    const QueryLog epoch_log = log_for_epoch(response.epoch);
    EXPECT_EQ(response.solution.satisfied_queries,
              CountSatisfiedQueries(epoch_log, response.solution.selected))
        << "objective does not match the epoch the response claims";
    if (response.cache_hit) ++hits;
  }
  // Repeated tuples per epoch make hits overwhelmingly likely; the point
  // of the assertion is that hits and publishes genuinely interleaved.
  EXPECT_GT(hits, 0);
  EXPECT_EQ(service.registry().epochs_published(), kPublishes);
}

TEST(ShardedServiceTest, MetricsMergeLedgersAndPerShardGauges) {
  ShardedService service(SmallOptions(3));
  ASSERT_TRUE(service.CreateTenant("acme", MakeLog(4, {{0}, {1}})).ok());
  ASSERT_TRUE(service.CreateTenant("globex", MakeLog(5, {{2}})).ok());

  std::vector<std::future<serve::SolveResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.Submit(
        MakeRequest("a" + std::to_string(i), "acme", "1100", 1)));
  }
  for (int i = 0; i < 3; ++i) {
    futures.push_back(service.Submit(
        MakeRequest("g" + std::to_string(i), "globex", "11100", 1)));
  }
  service.Drain();
  for (auto& future : futures) ASSERT_TRUE(future.get().status.ok());

  const serve::MetricsSnapshot metrics = service.Metrics();
  // Per-tenant ledgers: the per-tenant accepted counters partition the
  // service-wide accepted count.
  EXPECT_EQ(metrics.counters.at("tenant.acme.accepted"), 6);
  EXPECT_EQ(metrics.counters.at("tenant.globex.accepted"), 3);
  EXPECT_EQ(metrics.counters.at("accepted"), 9);
  EXPECT_EQ(metrics.counters.at("tenant.acme.completed"), 6);
  // Registry gauges plus one gauge set per shard.
  EXPECT_EQ(metrics.gauges.at("tenants"), 2);
  for (int shard = 0; shard < 3; ++shard) {
    const std::string prefix = "shard." + std::to_string(shard) + ".";
    EXPECT_TRUE(metrics.gauges.count(prefix + "queue_depth")) << prefix;
    EXPECT_TRUE(metrics.gauges.count(prefix + "result_cache.entries"))
        << prefix;
  }
}

}  // namespace
}  // namespace soc::tenant
