#include "common/status.h"

#include <string>

#include <gtest/gtest.h>

namespace soc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad m");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad m");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad m");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(OverloadedError("x").code(), StatusCode::kOverloaded);
}

TEST(StatusTest, OverloadedRendersItsName) {
  EXPECT_EQ(OverloadedError("queue full").ToString(),
            "Overloaded: queue full");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOverloaded), "Overloaded");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> value = std::move(result).value();
  EXPECT_EQ(*value, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> result = std::string("hello");
  EXPECT_EQ(result->size(), 5u);
}

namespace macro_helpers {

Status FailIf(bool fail) {
  if (fail) return InternalError("boom");
  return Status::OK();
}

Status Chain(bool fail) {
  SOC_RETURN_IF_ERROR(FailIf(fail));
  return Status::OK();
}

StatusOr<int> MakeValue(bool fail) {
  if (fail) return OutOfRangeError("nope");
  return 10;
}

StatusOr<int> UseAssign(bool fail) {
  SOC_ASSIGN_OR_RETURN(const int v, MakeValue(fail));
  return v * 2;
}

}  // namespace macro_helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(macro_helpers::Chain(false).ok());
  EXPECT_EQ(macro_helpers::Chain(true).code(), StatusCode::kInternal);
}

TEST(StatusMacrosTest, AssignOrReturn) {
  auto ok = macro_helpers::UseAssign(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 20);
  auto err = macro_helpers::UseAssign(true);
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace soc
