// EventLog pipeline tests: the hot-path gate (enabled + sampling), ring
// ordering and drop accounting, cross-thread recording, the JSONL sink's
// size rotation, and the pump's drain-everything-on-Stop contract.

#include "obs/event_log.h"

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "common/thread_pool.h"
#include "obs/wide_event.h"

namespace soc::obs {
namespace {

WideEvent EventWithId(const std::string& id) {
  WideEvent event;
  event.id = id;
  event.solver_req = "ILP";
  event.solver = "ILP";
  return event;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// Reads a whole file; empty string when missing.
std::string Slurp(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return "";
  std::string content;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(file);
  return content;
}

TEST(EventLogTest, DisabledLogNeverRecords) {
  EventLog log;
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.ShouldRecord());
  std::vector<WideEvent> drained;
  EXPECT_EQ(log.Drain(&drained), 0u);
  EXPECT_EQ(log.events_recorded(), 0);
  EXPECT_EQ(log.events_sampled_out(), 0);
}

TEST(EventLogTest, RecordsInOrderAndStampsMonotonicTimestamps) {
  EventLog log;
  log.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(log.ShouldRecord());
    log.Record(EventWithId("req-" + std::to_string(i)));
  }
  std::vector<WideEvent> drained;
  EXPECT_EQ(log.Drain(&drained), 10u);
  ASSERT_EQ(drained.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(drained[i].id, "req-" + std::to_string(i));
    if (i > 0) {
      EXPECT_GE(drained[i].ts_ms, drained[i - 1].ts_ms);
    }
  }
  EXPECT_EQ(log.events_recorded(), 10);
  EXPECT_EQ(log.events_dropped(), 0);
  // A second drain finds nothing new.
  EXPECT_EQ(log.Drain(&drained), 0u);
}

TEST(EventLogTest, SamplingIsGloballyExact) {
  EventLogOptions options;
  options.sample_every = 4;
  EventLog log(options);
  log.set_enabled(true);
  int recorded = 0;
  for (int i = 0; i < 100; ++i) {
    if (log.ShouldRecord()) {
      log.Record(EventWithId("s"));
      ++recorded;
    }
  }
  EXPECT_EQ(recorded, 25);
  EXPECT_EQ(log.events_sampled_out(), 75);
  EXPECT_EQ(log.events_recorded(), 25);
}

TEST(EventLogTest, FullRingDropsInsteadOfBlocking) {
  EventLogOptions options;
  options.per_thread_capacity = 8;
  EventLog log(options);
  log.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(log.ShouldRecord());
    log.Record(EventWithId("req-" + std::to_string(i)));
  }
  EXPECT_EQ(log.events_recorded(), 8);
  EXPECT_EQ(log.events_dropped(), 12);
  std::vector<WideEvent> drained;
  EXPECT_EQ(log.Drain(&drained), 8u);
  // The survivors are the oldest 8, in order.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(drained[i].id, "req-" + std::to_string(i));
  }
  // Space freed by the drain is reusable.
  ASSERT_TRUE(log.ShouldRecord());
  log.Record(EventWithId("after"));
  drained.clear();
  EXPECT_EQ(log.Drain(&drained), 1u);
}

TEST(EventLogTest, ConcurrentProducersLoseNothing) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  EventLog log;
  log.set_enabled(true);
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&log, t] {
        for (int i = 0; i < kPerThread; ++i) {
          if (log.ShouldRecord()) {
            log.Record(
                EventWithId("t" + std::to_string(t) + "-" +
                            std::to_string(i)));
          }
        }
      });
    }
  }
  std::vector<WideEvent> drained;
  log.Drain(&drained);
  EXPECT_EQ(log.events_dropped(), 0);
  ASSERT_EQ(drained.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  std::set<std::string> ids;
  for (const WideEvent& event : drained) ids.insert(event.id);
  EXPECT_EQ(ids.size(), drained.size());  // No duplicates, no losses.
}

TEST(JsonlEventSinkTest, WritesParseableLinesAndRotatesBySize) {
  const std::string path = TempPath("events_rotate.jsonl");
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".2").c_str());

  JsonlEventSink::Options options;
  options.path = path;
  options.max_bytes = 256;  // A handful of lines per file.
  options.max_rotations = 2;
  JsonlEventSink sink(options);
  ASSERT_TRUE(sink.Open().ok());
  std::vector<WideEvent> events;
  for (int i = 0; i < 40; ++i) {
    events.push_back(EventWithId("req-" + std::to_string(i)));
  }
  ASSERT_TRUE(sink.Write(events).ok());
  ASSERT_TRUE(sink.Close().ok());

  EXPECT_GT(sink.rotations(), 0);
  EXPECT_GT(sink.bytes_written(), 0);
  // Current file plus at least one rotation exist; every line in the
  // live file parses back through the strict schema reader.
  const std::string current = Slurp(path);
  ASSERT_FALSE(current.empty());
  EXPECT_FALSE(Slurp(path + ".1").empty());
  std::size_t start = 0;
  int lines = 0;
  while (start < current.size()) {
    std::size_t end = current.find('\n', start);
    if (end == std::string::npos) break;
    const std::string line = current.substr(start, end - start);
    EXPECT_TRUE(ParseWideEventLine(line).ok()) << line;
    start = end + 1;
    ++lines;
  }
  EXPECT_GT(lines, 0);
}

TEST(EventPumpTest, DeliversEveryEventExactlyOnceAcrossStop) {
  EventLog log;
  log.set_enabled(true);
  Mutex mutex;
  std::vector<std::string> delivered;
  EventPump::Options options;
  options.interval_s = 0.01;
  options.log = &log;
  options.sink = [&mutex, &delivered](const std::vector<WideEvent>& events) {
    MutexLock lock(mutex);
    for (const WideEvent& event : events) delivered.push_back(event.id);
  };
  {
    EventPump pump(options);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(log.ShouldRecord());
      log.Record(EventWithId("req-" + std::to_string(i)));
    }
    pump.Stop();  // Final drain+flush: everything recorded is delivered.
    EXPECT_GE(pump.drains(), 1);
  }
  MutexLock lock(mutex);
  ASSERT_EQ(delivered.size(), 50u);
  std::set<std::string> unique(delivered.begin(), delivered.end());
  EXPECT_EQ(unique.size(), 50u);
}

}  // namespace
}  // namespace soc::obs
