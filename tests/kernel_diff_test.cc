// Differential battery for the batch coverage kernels: every dispatch
// tier available on the host must be bit-identical to the scalar tier —
// and the scalar tier to a naive DynamicBitset reference that never
// touches the blocked layout — on every width-remainder and
// block-remainder edge, on empty/full logs, and on randomized instances
// from the src/check generator.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "check/instance.h"
#include "common/bitset.h"
#include "common/random.h"
#include "common/solve_context.h"
#include "kernels/arena.h"
#include "kernels/kernels.h"

namespace soc::kernels {
namespace {

using ::soc::check::GenerateInstance;

// ---- Naive references (straight DynamicBitset, no blocked layout) ----

long long NaiveCount(const std::vector<DynamicBitset>& queries,
                     const DynamicBitset& sel) {
  long long count = 0;
  for (const DynamicBitset& q : queries) {
    if (q.IsSubsetOf(sel)) ++count;
  }
  return count;
}

long long NaiveWeight(const std::vector<DynamicBitset>& queries,
                      const std::vector<long long>& weights,
                      const DynamicBitset& sel) {
  long long total = 0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].IsSubsetOf(sel)) total += weights[i];
  }
  return total;
}

struct NaiveGainResult {
  long long base = 0;
  std::vector<long long> gains;
};

NaiveGainResult NaiveGain(const std::vector<DynamicBitset>& queries,
                          const std::vector<long long>* weights,
                          const DynamicBitset& sel) {
  NaiveGainResult result;
  result.gains.assign(sel.size(), 0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const DynamicBitset& q = queries[i];
    if (!sel.IsSubsetOf(q)) continue;
    const long long w = weights == nullptr ? 1 : (*weights)[i];
    result.base += w;
    q.ForEachSetBit([&](int attr) { result.gains[attr] += w; });
  }
  return result;
}

BoundScan NaiveBound(const std::vector<DynamicBitset>& queries,
                     const std::vector<long long>* weights,
                     const DynamicBitset& chosen,
                     const DynamicBitset& rejected, int slack) {
  BoundScan scan;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const DynamicBitset& q = queries[i];
    const long long w = weights == nullptr ? 1 : (*weights)[i];
    if (q.IsSubsetOf(chosen)) {
      scan.satisfied += w;
    } else if (!q.Intersects(rejected) &&
               static_cast<int>(q.Count() - q.IntersectionCount(chosen)) <=
                   slack) {
      scan.potential += w;
    }
  }
  return scan;
}

DynamicBitset RandomBitset(Rng& rng, std::size_t bits, double density) {
  DynamicBitset b(bits);
  for (std::size_t i = 0; i < bits; ++i) {
    if (rng.NextBernoulli(density)) b.Set(i);
  }
  return b;
}

// Runs the full cross-check of one (queries, weights) log against every
// available tier for a handful of derived selections.
void CheckLog(const std::vector<DynamicBitset>& queries, std::size_t bits,
              const std::vector<long long>& weights, Rng& rng,
              const std::string& label) {
  const CoverageBlockSet unit(queries, bits);
  const CoverageBlockSet weighted(queries, bits, weights.data(),
                                  /*arena=*/nullptr);

  std::vector<DynamicBitset> selections;
  selections.push_back(DynamicBitset(bits));  // empty
  DynamicBitset full(bits);
  if (bits > 0) full.SetAll();
  selections.push_back(full);  // full
  for (int trial = 0; trial < 4; ++trial) {
    selections.push_back(RandomBitset(rng, bits, 0.1 + 0.25 * trial));
  }
  // A selection equal to one of the queries exercises exact-match edges.
  if (!queries.empty()) {
    selections.push_back(queries[rng.NextUint64(queries.size())]);
  }

  const std::vector<Tier> tiers = AvailableTiers();
  ASSERT_FALSE(tiers.empty());
  ASSERT_EQ(tiers[0], Tier::kScalar);

  for (const DynamicBitset& sel : selections) {
    const long long ref_count = NaiveCount(queries, sel);
    const long long ref_weight = NaiveWeight(queries, weights, sel);
    const NaiveGainResult ref_gain = NaiveGain(queries, &weights, sel);
    const NaiveGainResult ref_gain_unit =
        NaiveGain(queries, /*weights=*/nullptr, sel);
    const DynamicBitset rejected = RandomBitset(rng, bits, 0.15);
    const int slack = rng.NextInt(0, static_cast<int>(bits) + 1);
    const BoundScan ref_bound =
        NaiveBound(queries, &weights, sel, rejected, slack);

    for (const Tier tier : tiers) {
      const KernelOps* ops = GetOps(tier);
      ASSERT_NE(ops, nullptr) << TierName(tier);
      const std::string where = label + " tier=" + TierName(tier);

      EXPECT_EQ(CountCoveredWith(*ops, unit, sel), ref_count) << where;
      EXPECT_EQ(AccumulateWeightedWith(*ops, weighted, sel), ref_weight)
          << where;
      EXPECT_EQ(AccumulateWeightedWith(*ops, unit, sel), ref_count) << where;

      std::vector<long long> gains(bits, -1);
      const GainScan scan = CoverageGainWith(*ops, weighted, sel,
                                             gains.data(), nullptr);
      EXPECT_TRUE(scan.completed) << where;
      EXPECT_EQ(scan.base, ref_gain.base) << where;
      EXPECT_EQ(gains, ref_gain.gains) << where;

      std::vector<long long> unit_gains(bits, -1);
      const GainScan unit_scan = CoverageGainWith(*ops, unit, sel,
                                                  unit_gains.data(), nullptr);
      EXPECT_EQ(unit_scan.base, ref_gain_unit.base) << where;
      EXPECT_EQ(unit_gains, ref_gain_unit.gains) << where;

      const BoundScan bound =
          CoverageBoundWith(*ops, weighted, sel, rejected, slack);
      EXPECT_EQ(bound.satisfied, ref_bound.satisfied) << where;
      EXPECT_EQ(bound.potential, ref_bound.potential) << where;
    }
  }
}

// Width sweep across every word-remainder edge, crossed with query
// counts around the 64-query block boundary (tail blocks).
TEST(KernelDiffTest, WidthAndBlockRemainderSweep) {
  const std::size_t widths[] = {1, 63, 64, 65, 127, 128, 129, 511, 512, 513};
  const int sizes[] = {0, 1, 5, 63, 64, 65, 200};
  Rng rng(20260808);
  for (const std::size_t bits : widths) {
    for (const int num_queries : sizes) {
      std::vector<DynamicBitset> queries;
      std::vector<long long> weights;
      for (int i = 0; i < num_queries; ++i) {
        queries.push_back(RandomBitset(rng, bits, 0.05 + 0.4 * rng.NextDouble()));
        weights.push_back(rng.NextInt(1, 50));
      }
      CheckLog(queries, bits, weights, rng,
               "M=" + std::to_string(bits) + " S=" + std::to_string(num_queries));
    }
  }
}

// Degenerate logs: all-empty queries (subset of everything) and
// full-width queries (subset only of the full selection).
TEST(KernelDiffTest, EmptyAndFullQueries) {
  Rng rng(7);
  for (const std::size_t bits : {1u, 64u, 65u, 129u}) {
    std::vector<DynamicBitset> queries;
    std::vector<long long> weights;
    for (int i = 0; i < 70; ++i) {
      DynamicBitset q(bits);
      if (i % 2 == 0) q.SetAll();
      queries.push_back(std::move(q));
      weights.push_back(1 + i % 7);
    }
    CheckLog(queries, bits, weights, rng,
             "degenerate M=" + std::to_string(bits));
  }
}

// Randomized instances from the property-catalog generator — the same
// distribution socvis_check fuzzes nightly.
TEST(KernelDiffTest, GeneratorInstances) {
  Rng rng(99);
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const check::Instance instance = GenerateInstance(seed);
    std::vector<long long> weights;
    for (int i = 0; i < instance.log.size(); ++i) {
      weights.push_back(rng.NextInt(1, 9));
    }
    CheckLog(instance.log.queries(),
             static_cast<std::size_t>(instance.log.num_attributes()), weights,
             rng, "gen seed=" + std::to_string(seed));
  }
}

// Arena-backed storage must behave identically to owned storage.
TEST(KernelDiffTest, ArenaBackedBuildMatchesOwned) {
  Rng rng(11);
  std::vector<DynamicBitset> queries;
  std::vector<long long> weights;
  for (int i = 0; i < 130; ++i) {
    queries.push_back(RandomBitset(rng, 100, 0.3));
    weights.push_back(rng.NextInt(1, 5));
  }
  const CoverageBlockSet owned(queries, 100, weights.data(), nullptr);
  ScratchScope scratch;
  const CoverageBlockSet arena_backed(queries, 100, weights.data(),
                                      &scratch.arena());
  for (int trial = 0; trial < 8; ++trial) {
    const DynamicBitset sel = RandomBitset(rng, 100, 0.4);
    EXPECT_EQ(AccumulateWeighted(owned, sel),
              AccumulateWeighted(arena_backed, sel));
  }
}

// Block-granularity cancellation: a context that stops mid-scan yields
// completed=false and never more ticks than blocks.
TEST(KernelDiffTest, CoverageGainHonorsContext) {
  Rng rng(13);
  std::vector<DynamicBitset> queries;
  for (int i = 0; i < 500; ++i) {
    queries.push_back(RandomBitset(rng, 64, 0.2));
  }
  const CoverageBlockSet set(queries, 64);
  std::vector<long long> gains(64, 0);

  SolveContext stopped;
  stopped.InjectFault(StopReason::kCancelled, 1);
  const GainScan scan =
      CoverageGain(set, DynamicBitset(64), gains.data(), &stopped);
  EXPECT_FALSE(scan.completed);

  SolveContext counting;
  const GainScan full =
      CoverageGain(set, DynamicBitset(64), gains.data(), &counting);
  EXPECT_TRUE(full.completed);
  EXPECT_EQ(counting.ticks(), set.num_blocks());
}

// The forced-tier override drives dispatch; scalar is always available.
TEST(KernelDiffTest, ForceTierPinsDispatch) {
  ForceTier(Tier::kScalar);
  EXPECT_EQ(ActiveTier(), Tier::kScalar);
  ClearForcedTier();
  const std::vector<Tier> tiers = AvailableTiers();
  EXPECT_EQ(ActiveTier(), tiers.back());
}

}  // namespace
}  // namespace soc::kernels
