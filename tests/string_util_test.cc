#include "common/string_util.h"

#include <vector>

#include <gtest/gtest.h>

namespace soc {
namespace {

TEST(StringUtilTest, JoinStrings) {
  std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(Join(parts, ", "), "a, b, c");
}

TEST(StringUtilTest, JoinEmpty) {
  std::vector<int> parts;
  EXPECT_EQ(Join(parts, ","), "");
}

TEST(StringUtilTest, JoinNumbers) {
  std::vector<int> parts = {1, 2, 3};
  EXPECT_EQ(Join(parts, "-"), "1-2-3");
}

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("nowhitespace"), "nowhitespace");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("m=%d t=%.2f s=%s", 5, 1.5, "x"), "m=5 t=1.50 s=x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, StrFormatLongOutput) {
  const std::string long_str(500, 'z');
  EXPECT_EQ(StrFormat("%s!", long_str.c_str()), long_str + "!");
}

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("Hello World 123"), "hello world 123");
}

}  // namespace
}  // namespace soc
