#include "common/json_writer.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace soc {
namespace {

TEST(JsonWriterTest, Scalars) {
  EXPECT_EQ(JsonValue::Null().ToString(), "null");
  EXPECT_EQ(JsonValue::Bool(true).ToString(), "true");
  EXPECT_EQ(JsonValue::Bool(false).ToString(), "false");
  EXPECT_EQ(JsonValue::Int(-42).ToString(), "-42");
  EXPECT_EQ(JsonValue::Number(1.5).ToString(), "1.5");
  EXPECT_EQ(JsonValue::String("hi").ToString(), "\"hi\"");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  EXPECT_EQ(JsonValue::Number(std::numeric_limits<double>::infinity())
                .ToString(),
            "null");
  EXPECT_EQ(JsonValue::Number(std::nan("")).ToString(), "null");
}

TEST(JsonWriterTest, StringEscaping) {
  EXPECT_EQ(JsonValue::String("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(JsonValue::String("back\\slash").ToString(),
            "\"back\\\\slash\"");
  EXPECT_EQ(JsonValue::String("line\nbreak\ttab").ToString(),
            "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(JsonValue::String(std::string(1, '\x01')).ToString(),
            "\"\\u0001\"");
}

TEST(JsonWriterTest, JsonEscapeControlCharacters) {
  // Every byte below 0x20 without a short escape uses \u00XX.
  EXPECT_EQ(JsonEscape(std::string(1, '\0')), "\"\\u0000\"");
  EXPECT_EQ(JsonEscape("\x01\x1f"), "\"\\u0001\\u001f\"");
  // The short-escape set stays short.
  EXPECT_EQ(JsonEscape("\b\f\n\r\t"), "\"\\b\\f\\n\\r\\t\"");
  // 0x7f DEL is not a control character per RFC 8259 string grammar.
  EXPECT_EQ(JsonEscape("\x7f"), "\"\x7f\"");
}

TEST(JsonWriterTest, JsonEscapeQuotesAndBackslashes) {
  EXPECT_EQ(JsonEscape("\""), "\"\\\"\"");
  EXPECT_EQ(JsonEscape("\\"), "\"\\\\\"");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(JsonEscape("\\\\"), "\"\\\\\\\\\"");
  // Forward slash needs no escaping.
  EXPECT_EQ(JsonEscape("a/b"), "\"a/b\"");
}

TEST(JsonWriterTest, JsonEscapeMultiByteUtf8PassesThrough) {
  // 2-, 3- and 4-byte UTF-8 sequences are emitted verbatim.
  EXPECT_EQ(JsonEscape("caf\xC3\xA9"), "\"caf\xC3\xA9\"");          // café
  EXPECT_EQ(JsonEscape("\xE2\x82\xAC"), "\"\xE2\x82\xAC\"");        // €
  EXPECT_EQ(JsonEscape("\xF0\x9F\x98\x80"), "\"\xF0\x9F\x98\x80\"");  // 😀
  // Mixed with characters that do escape.
  EXPECT_EQ(JsonEscape("\xC3\xA9\n\"\xE2\x82\xAC"),
            "\"\xC3\xA9\\n\\\"\xE2\x82\xAC\"");
}

TEST(JsonWriterTest, ArraysAndObjects) {
  std::vector<JsonValue> items;
  items.push_back(JsonValue::Int(1));
  items.push_back(JsonValue::String("two"));
  EXPECT_EQ(JsonValue::Array(std::move(items)).ToString(), "[1,\"two\"]");

  JsonValue object = JsonValue::Object();
  object.Set("a", JsonValue::Int(1)).Set("b", JsonValue::Bool(false));
  EXPECT_EQ(object.ToString(), "{\"a\":1,\"b\":false}");
}

TEST(JsonWriterTest, NestedStructure) {
  JsonValue inner = JsonValue::Object();
  inner.Set("x", JsonValue::Null());
  std::vector<JsonValue> arr;
  arr.push_back(std::move(inner));
  arr.push_back(JsonValue::Array({}));
  JsonValue outer = JsonValue::Object();
  outer.Set("data", JsonValue::Array(std::move(arr)));
  EXPECT_EQ(outer.ToString(), "{\"data\":[{\"x\":null},[]]}");
}

TEST(JsonWriterTest, EmptyContainers) {
  EXPECT_EQ(JsonValue::Array({}).ToString(), "[]");
  EXPECT_EQ(JsonValue::Object().ToString(), "{}");
}

TEST(JsonWriterTest, KeysKeepInsertionOrder) {
  JsonValue object = JsonValue::Object();
  object.Set("zulu", JsonValue::Int(1))
      .Set("alpha", JsonValue::Int(2))
      .Set("mike", JsonValue::Int(3));
  EXPECT_EQ(object.ToString(), "{\"zulu\":1,\"alpha\":2,\"mike\":3}");
}

}  // namespace
}  // namespace soc
