#include "lp/branch_and_bound.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/combinatorics.h"
#include "common/random.h"
#include "lp/model.h"

namespace soc::lp {
namespace {

// Brute-force optimum of a pure 0-1 model, for cross-checking.
double BruteForceBinaryOptimum(const LinearModel& model) {
  const int n = model.num_variables();
  double best = -kInfinity;
  const double sign =
      model.sense() == ObjectiveSense::kMaximize ? 1.0 : -1.0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    std::vector<double> x(n);
    for (int j = 0; j < n; ++j) x[j] = (mask >> j) & 1;
    if (!model.IsFeasible(x, 1e-9)) continue;
    best = std::max(best, sign * model.ObjectiveValue(x));
  }
  return sign * best;
}

TEST(BranchAndBoundTest, SimpleKnapsack) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary.
  // Best: a + c (weight 5, value 17)? b + c = 20 with weight 6. -> 20.
  LinearModel model(ObjectiveSense::kMaximize);
  const int a = model.AddBinaryVariable("a", 10);
  const int b = model.AddBinaryVariable("b", 13);
  const int c = model.AddBinaryVariable("c", 7);
  int row = model.AddConstraint("w", ConstraintSense::kLessEqual, 6);
  model.AddTerm(row, a, 3);
  model.AddTerm(row, b, 4);
  model.AddTerm(row, c, 2);
  auto result = SolveMip(model);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 20.0, 1e-6);
  EXPECT_NEAR(result->x[a], 0.0, 1e-6);
  EXPECT_NEAR(result->x[b], 1.0, 1e-6);
  EXPECT_NEAR(result->x[c], 1.0, 1e-6);
}

TEST(BranchAndBoundTest, InfeasibleIntegerProgram) {
  // 2x = 3 with x binary.
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddBinaryVariable("x", 1);
  int row = model.AddConstraint("c", ConstraintSense::kEqual, 3);
  model.AddTerm(row, x, 2);
  auto result = SolveMip(model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, SolveStatus::kInfeasible);
  EXPECT_FALSE(result->has_solution);
}

TEST(BranchAndBoundTest, FractionalLpButIntegerForced) {
  // max x + y s.t. x + y <= 1.5, binary: LP gives 1.5, IP gives 1.
  LinearModel model(ObjectiveSense::kMaximize);
  model.AddBinaryVariable("x", 1);
  model.AddBinaryVariable("y", 1);
  int row = model.AddConstraint("c", ConstraintSense::kLessEqual, 1.5);
  model.AddTerm(row, 0, 1);
  model.AddTerm(row, 1, 1);
  auto result = SolveMip(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 1.0, 1e-6);
}

TEST(BranchAndBoundTest, GeneralIntegerVariables) {
  // max 3x + 4y s.t. 2x + 5y <= 13, x <= 4, integer, x,y >= 0.
  // Candidates: x=4,y=1 -> 16.
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", 0, 4, 3, /*is_integer=*/true);
  const int y = model.AddVariable("y", 0, kInfinity, 4, /*is_integer=*/true);
  int row = model.AddConstraint("c", ConstraintSense::kLessEqual, 13);
  model.AddTerm(row, x, 2);
  model.AddTerm(row, y, 5);
  auto result = SolveMip(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 16.0, 1e-6);
  EXPECT_NEAR(result->x[x], 4.0, 1e-6);
  EXPECT_NEAR(result->x[y], 1.0, 1e-6);
}

TEST(BranchAndBoundTest, MinimizationSense) {
  // min x + y s.t. x + y >= 1.5, binary -> 2.
  LinearModel model(ObjectiveSense::kMinimize);
  model.AddBinaryVariable("x", 1);
  model.AddBinaryVariable("y", 1);
  int row = model.AddConstraint("c", ConstraintSense::kGreaterEqual, 1.5);
  model.AddTerm(row, 0, 1);
  model.AddTerm(row, 1, 1);
  auto result = SolveMip(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 2.0, 1e-6);
}

TEST(BranchAndBoundTest, MixedIntegerContinuous) {
  // max 2x + y, x binary, y continuous <= 2.5, x + y <= 3.
  // Optimum: x=1, y=2 -> 4.
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddBinaryVariable("x", 2);
  const int y = model.AddVariable("y", 0, 2.5, 1);
  int row = model.AddConstraint("c", ConstraintSense::kLessEqual, 3);
  model.AddTerm(row, x, 1);
  model.AddTerm(row, y, 1);
  auto result = SolveMip(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 4.0, 1e-6);
  EXPECT_NEAR(result->x[y], 2.0, 1e-6);
}

TEST(BranchAndBoundTest, InitialSolutionAccepted) {
  LinearModel model(ObjectiveSense::kMaximize);
  model.AddBinaryVariable("x", 1);
  model.AddBinaryVariable("y", 1);
  int row = model.AddConstraint("c", ConstraintSense::kLessEqual, 1);
  model.AddTerm(row, 0, 1);
  model.AddTerm(row, 1, 1);
  MipOptions options;
  options.initial_solution = std::vector<double>{1.0, 0.0};
  auto result = SolveMip(model, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 1.0, 1e-6);
}

TEST(BranchAndBoundTest, InfeasibleInitialSolutionIgnored) {
  LinearModel model(ObjectiveSense::kMaximize);
  model.AddBinaryVariable("x", 1);
  int row = model.AddConstraint("c", ConstraintSense::kLessEqual, 0);
  model.AddTerm(row, 0, 1);
  MipOptions options;
  options.initial_solution = std::vector<double>{1.0};  // Violates c.
  auto result = SolveMip(model, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 0.0, 1e-6);
}

TEST(BranchAndBoundTest, NodeLimitReportsBestSoFar) {
  // A model needing branching, with max_nodes = 1: should stop early.
  LinearModel model(ObjectiveSense::kMaximize);
  for (int j = 0; j < 10; ++j) model.AddBinaryVariable("x", 1 + j % 3);
  int row = model.AddConstraint("c", ConstraintSense::kLessEqual, 4.5);
  for (int j = 0; j < 10; ++j) model.AddTerm(row, j, 1);
  MipOptions options;
  options.max_nodes = 1;
  auto result = SolveMip(model, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, SolveStatus::kIterationLimit);
  // Best bound must dominate any feasible solution (e.g. 4 threes = 12).
  EXPECT_GE(result->best_bound, 12.0 - 1e-6);
}

TEST(BranchAndBoundTest, SetCover) {
  // min cost cover: universe {0,1,2,3}, sets A={0,1} c=2, B={2,3} c=2,
  // C={0,1,2,3} c=3, D={1,2} c=1. Optimal: C alone (3).
  LinearModel model(ObjectiveSense::kMinimize);
  const int A = model.AddBinaryVariable("A", 2);
  const int B = model.AddBinaryVariable("B", 2);
  const int C = model.AddBinaryVariable("C", 3);
  const int D = model.AddBinaryVariable("D", 1);
  const std::vector<std::vector<int>> covers = {
      {A, C}, {A, C, D}, {B, C, D}, {B, C}};
  for (int e = 0; e < 4; ++e) {
    int row = model.AddConstraint("cover", ConstraintSense::kGreaterEqual, 1);
    for (int s : covers[e]) model.AddTerm(row, s, 1);
  }
  auto result = SolveMip(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 3.0, 1e-6);
  EXPECT_NEAR(result->x[C], 1.0, 1e-6);
}

TEST(BranchAndBoundTest, EqualityPartition) {
  // Pick exactly 2 of 4 items maximizing value.
  LinearModel model(ObjectiveSense::kMaximize);
  const std::vector<double> values = {5, 1, 4, 3};
  for (int j = 0; j < 4; ++j) model.AddBinaryVariable("x", values[j]);
  int row = model.AddConstraint("pick2", ConstraintSense::kEqual, 2);
  for (int j = 0; j < 4; ++j) model.AddTerm(row, j, 1);
  auto result = SolveMip(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 9.0, 1e-6);
}

// Property test: B&B equals exhaustive enumeration on random 0-1 programs.
TEST(BranchAndBoundTest, RandomizedMatchesBruteForce) {
  Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = rng.NextInt(2, 10);
    const int m = rng.NextInt(1, 6);
    const bool maximize = rng.NextBernoulli(0.5);
    LinearModel model(maximize ? ObjectiveSense::kMaximize
                               : ObjectiveSense::kMinimize);
    for (int j = 0; j < n; ++j) {
      model.AddBinaryVariable("x", rng.NextInt(-5, 10));
    }
    for (int i = 0; i < m; ++i) {
      // Keep the all-zeros point feasible so the instance is never empty.
      int row = model.AddConstraint("c", ConstraintSense::kLessEqual,
                                    rng.NextInt(0, n));
      for (int j = 0; j < n; ++j) {
        if (rng.NextBernoulli(0.6)) model.AddTerm(row, j, rng.NextInt(0, 3));
      }
    }
    const double expected = BruteForceBinaryOptimum(model);
    auto result = SolveMip(model);
    ASSERT_TRUE(result.ok()) << "trial " << trial;
    ASSERT_EQ(result->status, SolveStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(result->objective, expected, 1e-6) << "trial " << trial;
    // The incumbent must itself be feasible and integral.
    ASSERT_TRUE(model.IsFeasible(result->x, 1e-6));
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(result->x[j], std::round(result->x[j]), 1e-9);
    }
  }
}

}  // namespace
}  // namespace soc::lp
