#include "lp/simplex.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "lp/model.h"

namespace soc::lp {
namespace {

TEST(SimplexTest, TwoVariableMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0.
  // Optimum at (4, 0) with objective 12.
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", 0, kInfinity, 3);
  const int y = model.AddVariable("y", 0, kInfinity, 2);
  int c0 = model.AddConstraint("c0", ConstraintSense::kLessEqual, 4);
  model.AddTerm(c0, x, 1);
  model.AddTerm(c0, y, 1);
  int c1 = model.AddConstraint("c1", ConstraintSense::kLessEqual, 6);
  model.AddTerm(c1, x, 1);
  model.AddTerm(c1, y, 3);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 12.0, 1e-6);
  EXPECT_NEAR(result->x[x], 4.0, 1e-6);
  EXPECT_NEAR(result->x[y], 0.0, 1e-6);
}

TEST(SimplexTest, ClassicProblem) {
  // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6. Optimum (3, 1.5) -> 21.
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", 0, kInfinity, 5);
  const int y = model.AddVariable("y", 0, kInfinity, 4);
  int c0 = model.AddConstraint("c0", ConstraintSense::kLessEqual, 24);
  model.AddTerm(c0, x, 6);
  model.AddTerm(c0, y, 4);
  int c1 = model.AddConstraint("c1", ConstraintSense::kLessEqual, 6);
  model.AddTerm(c1, x, 1);
  model.AddTerm(c1, y, 2);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 21.0, 1e-6);
  EXPECT_NEAR(result->x[x], 3.0, 1e-6);
  EXPECT_NEAR(result->x[y], 1.5, 1e-6);
}

TEST(SimplexTest, MinimizationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1, y >= 0. Optimum (4,0) -> 8.
  LinearModel model(ObjectiveSense::kMinimize);
  const int x = model.AddVariable("x", 1, kInfinity, 2);
  const int y = model.AddVariable("y", 0, kInfinity, 3);
  int c0 = model.AddConstraint("c0", ConstraintSense::kGreaterEqual, 4);
  model.AddTerm(c0, x, 1);
  model.AddTerm(c0, y, 1);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 8.0, 1e-6);
  EXPECT_NEAR(result->x[x], 4.0, 1e-6);
}

TEST(SimplexTest, EqualityConstraintNeedsPhase1) {
  // max x + y s.t. x + 2y = 4, x <= 3, y <= 3, x,y >= 0.
  // Optimum: x=3, y=0.5 -> 3.5.
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", 0, 3, 1);
  const int y = model.AddVariable("y", 0, 3, 1);
  int c0 = model.AddConstraint("c0", ConstraintSense::kEqual, 4);
  model.AddTerm(c0, x, 1);
  model.AddTerm(c0, y, 2);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 3.5, 1e-6);
  EXPECT_NEAR(result->x[x], 3.0, 1e-6);
  EXPECT_NEAR(result->x[y], 0.5, 1e-6);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x <= 1 and x >= 2 simultaneously.
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", 0, kInfinity, 1);
  int c0 = model.AddConstraint("c0", ConstraintSense::kLessEqual, 1);
  model.AddTerm(c0, x, 1);
  int c1 = model.AddConstraint("c1", ConstraintSense::kGreaterEqual, 2);
  model.AddTerm(c1, x, 1);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, InfeasibleEqualityPair) {
  LinearModel model(ObjectiveSense::kMinimize);
  const int x = model.AddVariable("x", 0, 10, 1);
  const int y = model.AddVariable("y", 0, 10, 1);
  int c0 = model.AddConstraint("c0", ConstraintSense::kEqual, 3);
  model.AddTerm(c0, x, 1);
  model.AddTerm(c0, y, 1);
  int c1 = model.AddConstraint("c1", ConstraintSense::kEqual, 5);
  model.AddTerm(c1, x, 1);
  model.AddTerm(c1, y, 1);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, UnboundedDetected) {
  // max x with x >= 0 and no upper limit.
  LinearModel model(ObjectiveSense::kMaximize);
  model.AddVariable("x", 0, kInfinity, 1);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, PureBoundsModelSolvedByFlips) {
  // No constraints: optimum picks the right bound per sign.
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", -2, 5, 3);   // -> 5
  const int y = model.AddVariable("y", -4, 1, -2);  // -> -4
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 23.0, 1e-6);
  EXPECT_NEAR(result->x[x], 5.0, 1e-6);
  EXPECT_NEAR(result->x[y], -4.0, 1e-6);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x + y s.t. x + y >= -3, bounds [-5, 5]. Optimum -3 on the line.
  LinearModel model(ObjectiveSense::kMinimize);
  const int x = model.AddVariable("x", -5, 5, 1);
  const int y = model.AddVariable("y", -5, 5, 1);
  int c0 = model.AddConstraint("c0", ConstraintSense::kGreaterEqual, -3);
  model.AddTerm(c0, x, 1);
  model.AddTerm(c0, y, 1);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, -3.0, 1e-6);
}

TEST(SimplexTest, FixedVariable) {
  // x fixed at 2, max x + y with y <= 3.
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", 2, 2, 1);
  const int y = model.AddVariable("y", 0, 3, 1);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->x[x], 2.0, 1e-9);
  EXPECT_NEAR(result->x[y], 3.0, 1e-9);
  EXPECT_NEAR(result->objective, 5.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic degenerate instance (multiple constraints meet at the origin).
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", 0, kInfinity, 0.75);
  const int y = model.AddVariable("y", 0, kInfinity, -150);
  const int z = model.AddVariable("z", 0, kInfinity, 0.02);
  const int w = model.AddVariable("w", 0, kInfinity, -6);
  int c0 = model.AddConstraint("c0", ConstraintSense::kLessEqual, 0);
  model.AddTerm(c0, x, 0.25);
  model.AddTerm(c0, y, -60);
  model.AddTerm(c0, z, -0.04);
  model.AddTerm(c0, w, 9);
  int c1 = model.AddConstraint("c1", ConstraintSense::kLessEqual, 0);
  model.AddTerm(c1, x, 0.5);
  model.AddTerm(c1, y, -90);
  model.AddTerm(c1, z, -0.02);
  model.AddTerm(c1, w, 3);
  int c2 = model.AddConstraint("c2", ConstraintSense::kLessEqual, 1);
  model.AddTerm(c2, z, 1);
  // Beale's cycling example; optimum 0.05 at z = 1.
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 0.05, 1e-6);
}

TEST(SimplexTest, SolveWithBoundsOverrides) {
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", 0, 10, 1);
  auto base = SolveLp(model);
  ASSERT_TRUE(base.ok());
  EXPECT_NEAR(base->objective, 10.0, 1e-9);
  auto tightened = SolveLpWithBounds(model, {0.0}, {4.0});
  ASSERT_TRUE(tightened.ok());
  EXPECT_NEAR(tightened->objective, 4.0, 1e-9);
  EXPECT_NEAR(tightened->x[x], 4.0, 1e-9);
}

TEST(SimplexTest, EmptyBoundBoxIsInfeasible) {
  LinearModel model(ObjectiveSense::kMaximize);
  model.AddVariable("x", 0, 10, 1);
  auto result = SolveLpWithBounds(model, {5.0}, {4.0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, ValidationRejectsFreeVariable) {
  LinearModel model(ObjectiveSense::kMaximize);
  model.AddVariable("x", -kInfinity, kInfinity, 1);
  auto result = SolveLp(model);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(SimplexTest, ValidationRejectsBadBounds) {
  LinearModel model(ObjectiveSense::kMaximize);
  model.AddVariable("x", 2, 1, 1);
  auto result = SolveLp(model);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimplexTest, TableauGuardTrips) {
  LinearModel model(ObjectiveSense::kMaximize);
  for (int j = 0; j < 100; ++j) {
    model.AddVariable("x", 0, 1, 1);
  }
  for (int i = 0; i < 100; ++i) {
    int c = model.AddConstraint("c", ConstraintSense::kLessEqual, 50);
    for (int j = 0; j < 100; ++j) model.AddTerm(c, j, 1);
  }
  SimplexOptions options;
  options.max_tableau_entries = 100;  // Absurdly small.
  auto result = SolveLp(model, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// Property test: on random feasible-by-construction LPs, the simplex
// objective must weakly dominate many random feasible points.
TEST(SimplexTest, RandomizedDominatesSampledFeasiblePoints) {
  Rng rng(1234);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = rng.NextInt(2, 6);
    const int m = rng.NextInt(1, 5);
    LinearModel model(ObjectiveSense::kMaximize);
    for (int j = 0; j < n; ++j) {
      model.AddVariable("x", 0, 1 + 4 * rng.NextDouble(),
                        rng.NextDouble() * 4 - 2);
    }
    // Random <= constraints with nonnegative coefficients and positive rhs
    // keep the origin feasible.
    for (int i = 0; i < m; ++i) {
      int c = model.AddConstraint("c", ConstraintSense::kLessEqual,
                                  1 + 5 * rng.NextDouble());
      for (int j = 0; j < n; ++j) {
        if (rng.NextBernoulli(0.7)) model.AddTerm(c, j, rng.NextDouble() * 2);
      }
    }
    auto result = SolveLp(model);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->status, SolveStatus::kOptimal) << "trial " << trial;
    ASSERT_TRUE(model.IsFeasible(result->x, 1e-6));
    for (int sample = 0; sample < 200; ++sample) {
      std::vector<double> point(n);
      for (int j = 0; j < n; ++j) {
        point[j] = model.variable(j).upper * rng.NextDouble();
      }
      if (!model.IsFeasible(point, 0.0)) continue;
      EXPECT_LE(model.ObjectiveValue(point), result->objective + 1e-6);
    }
  }
}

}  // namespace
}  // namespace soc::lp
