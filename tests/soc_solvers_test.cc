// End-to-end tests of all SOC-CB-QL solvers: the paper's running example,
// edge cases, the NP-hardness reduction, and randomized agreement sweeps
// between the four exact algorithms.

#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/bnb_solver.h"
#include "core/brute_force.h"
#include "core/greedy.h"
#include "core/ilp_solver.h"
#include "core/mfi_solver.h"
#include "datagen/clique.h"
#include "datagen/workload.h"
#include "paper_example.h"

namespace soc {
namespace {

MfiSocOptions WalkOptions(std::uint64_t seed) {
  MfiSocOptions options;
  options.engine = MfiEngine::kRandomWalk;
  options.walk.seed = seed;
  return options;
}

MfiSocOptions DfsOptions() {
  MfiSocOptions options;
  options.engine = MfiEngine::kExactDfs;
  return options;
}

// All solvers under test, exact ones first.
std::vector<std::unique_ptr<SocSolver>> AllSolvers() {
  std::vector<std::unique_ptr<SocSolver>> solvers;
  solvers.push_back(std::make_unique<BruteForceSolver>());
  solvers.push_back(std::make_unique<BnbSocSolver>());
  solvers.push_back(std::make_unique<IlpSocSolver>());
  solvers.push_back(std::make_unique<MfiSocSolver>(WalkOptions(5)));
  solvers.push_back(std::make_unique<MfiSocSolver>(DfsOptions()));
  solvers.push_back(
      std::make_unique<GreedySolver>(GreedyKind::kConsumeAttr));
  solvers.push_back(
      std::make_unique<GreedySolver>(GreedyKind::kConsumeAttrCumul));
  solvers.push_back(
      std::make_unique<GreedySolver>(GreedyKind::kConsumeQueries));
  return solvers;
}

std::vector<std::unique_ptr<SocSolver>> ExactSolvers() {
  std::vector<std::unique_ptr<SocSolver>> solvers;
  solvers.push_back(std::make_unique<BruteForceSolver>());
  solvers.push_back(std::make_unique<BnbSocSolver>());
  solvers.push_back(std::make_unique<IlpSocSolver>());
  solvers.push_back(std::make_unique<MfiSocSolver>(WalkOptions(11)));
  solvers.push_back(std::make_unique<MfiSocSolver>(DfsOptions()));
  return solvers;
}

TEST(SocSolversTest, PaperExampleOptimumIsThree) {
  // Sec II.A: with m = 3, retaining {AC, FourDoor, PowerDoors} satisfies
  // q1, q2, q3 and nothing does better.
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  for (const auto& solver : ExactSolvers()) {
    auto solution = solver->Solve(log, t, 3);
    ASSERT_TRUE(solution.ok()) << solver->name();
    EXPECT_EQ(solution->satisfied_queries, 3) << solver->name();
    EXPECT_EQ(solution->selected, DynamicBitset::FromString("110100"))
        << solver->name();
    EXPECT_EQ(solution->selected.Count(), 3u);
    EXPECT_TRUE(solution->selected.IsSubsetOf(t));
  }
}

TEST(SocSolversTest, SolutionInvariantsHoldForAllSolvers) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  for (const auto& solver : AllSolvers()) {
    for (int m = 0; m <= 8; ++m) {
      auto solution = solver->Solve(log, t, m);
      ASSERT_TRUE(solution.ok()) << solver->name() << " m=" << m;
      EXPECT_TRUE(solution->selected.IsSubsetOf(t))
          << solver->name() << " m=" << m;
      EXPECT_EQ(solution->selected.Count(),
                static_cast<std::size_t>(std::min<int>(m, t.Count())))
          << solver->name() << " m=" << m;
      EXPECT_EQ(solution->satisfied_queries,
                CountSatisfiedQueries(log, solution->selected))
          << solver->name() << " m=" << m;
    }
  }
}

TEST(SocSolversTest, BudgetZeroSatisfiesNothing) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  for (const auto& solver : AllSolvers()) {
    auto solution = solver->Solve(log, t, 0);
    ASSERT_TRUE(solution.ok()) << solver->name();
    EXPECT_EQ(solution->satisfied_queries, 0);
    EXPECT_TRUE(solution->selected.None());
  }
}

TEST(SocSolversTest, BudgetAboveTupleSizeKeepsWholeTuple) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  for (const auto& solver : AllSolvers()) {
    auto solution = solver->Solve(log, t, 100);
    ASSERT_TRUE(solution.ok()) << solver->name();
    EXPECT_EQ(solution->selected, t) << solver->name();
    // The full tuple satisfies 4 of the 5 queries (q5 needs Turbo).
    EXPECT_EQ(solution->satisfied_queries, 4) << solver->name();
  }
}

TEST(SocSolversTest, EmptyLogYieldsZero) {
  const QueryLog log(testdata::PaperSchema());
  const DynamicBitset t = testdata::PaperNewTuple();
  for (const auto& solver : AllSolvers()) {
    auto solution = solver->Solve(log, t, 3);
    ASSERT_TRUE(solution.ok()) << solver->name();
    EXPECT_EQ(solution->satisfied_queries, 0);
    EXPECT_EQ(solution->selected.Count(), 3u);
  }
}

TEST(SocSolversTest, EmptyTupleYieldsEmptySelection) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t(log.num_attributes());
  for (const auto& solver : AllSolvers()) {
    auto solution = solver->Solve(log, t, 3);
    ASSERT_TRUE(solution.ok()) << solver->name();
    EXPECT_TRUE(solution->selected.None());
    EXPECT_EQ(solution->satisfied_queries, 0);
  }
}

TEST(SocSolversTest, EmptyQueryAlwaysSatisfied) {
  QueryLog log(AttributeSchema::Anonymous(4));
  log.AddQuery(DynamicBitset(4));           // Matches anything.
  log.AddQueryFromIndices({0, 1});
  DynamicBitset t = DynamicBitset::FromString("1100");
  for (const auto& solver : ExactSolvers()) {
    auto solution = solver->Solve(log, t, 1);
    ASSERT_TRUE(solution.ok()) << solver->name();
    EXPECT_EQ(solution->satisfied_queries, 1) << solver->name();
    auto solution2 = solver->Solve(log, t, 2);
    ASSERT_TRUE(solution2.ok());
    EXPECT_EQ(solution2->satisfied_queries, 2) << solver->name();
  }
}

TEST(SocSolversTest, DuplicateQueriesCountMultiply) {
  QueryLog log(AttributeSchema::Anonymous(3));
  for (int i = 0; i < 5; ++i) log.AddQueryFromIndices({0});
  log.AddQueryFromIndices({1});
  DynamicBitset t = DynamicBitset::FromString("110");
  for (const auto& solver : ExactSolvers()) {
    auto solution = solver->Solve(log, t, 1);
    ASSERT_TRUE(solution.ok());
    EXPECT_EQ(solution->satisfied_queries, 5) << solver->name();
    EXPECT_TRUE(solution->selected.Test(0));
  }
}

TEST(SocSolversTest, GreedyConsumeAttrPicksFrequentAttributes) {
  // ConsumeAttr on the paper example with m=3 picks PowerDoors (freq 3),
  // then AC and FourDoor (freq 2 each, lowest index first) — which happens
  // to be the optimal selection here.
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  GreedySolver solver(GreedyKind::kConsumeAttr);
  auto solution = solver.Solve(log, t, 3);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->selected, DynamicBitset::FromString("110100"));
  EXPECT_EQ(solution->satisfied_queries, 3);
}

TEST(SocSolversTest, GreedyNeverBeatsOptimal) {
  Rng rng(31337);
  const AttributeSchema schema = AttributeSchema::Anonymous(12);
  for (int trial = 0; trial < 20; ++trial) {
    datagen::SyntheticWorkloadOptions wl;
    wl.num_queries = 40;
    wl.seed = 1000 + trial;
    const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
    DynamicBitset t(12);
    for (int a = 0; a < 12; ++a) {
      if (rng.NextBernoulli(0.7)) t.Set(a);
    }
    const int m = rng.NextInt(1, 6);
    BruteForceSolver exact;
    auto optimal = exact.Solve(log, t, m);
    ASSERT_TRUE(optimal.ok());
    for (GreedyKind kind :
         {GreedyKind::kConsumeAttr, GreedyKind::kConsumeAttrCumul,
          GreedyKind::kConsumeQueries}) {
      GreedySolver greedy(kind);
      auto heuristic = greedy.Solve(log, t, m);
      ASSERT_TRUE(heuristic.ok());
      EXPECT_LE(heuristic->satisfied_queries, optimal->satisfied_queries)
          << GreedyKindToString(kind) << " trial " << trial;
    }
  }
}

TEST(SocSolversTest, CliqueReductionMatchesTheorem1) {
  // SOC optimum on the reduced instance equals r(r-1)/2 iff the graph has
  // an r-clique; sweep r on random graphs against an exact clique finder.
  for (int trial = 0; trial < 8; ++trial) {
    const datagen::Graph graph =
        datagen::Graph::ErdosRenyi(9, 0.5, 900 + trial);
    const datagen::CliqueSocInstance instance = datagen::CliqueToSoc(graph);
    const int omega = graph.MaxCliqueSize();
    BruteForceSolver brute;
    IlpSocSolver ilp;
    for (int r = 2; r <= 6; ++r) {
      auto brute_solution = brute.Solve(instance.log, instance.tuple, r);
      auto ilp_solution = ilp.Solve(instance.log, instance.tuple, r);
      ASSERT_TRUE(brute_solution.ok());
      ASSERT_TRUE(ilp_solution.ok());
      EXPECT_EQ(brute_solution->satisfied_queries,
                ilp_solution->satisfied_queries)
          << "trial " << trial << " r=" << r;
      const bool has_clique = omega >= r;
      EXPECT_EQ(
          brute_solution->satisfied_queries >= datagen::CliqueCertificate(r),
          has_clique)
          << "trial " << trial << " r=" << r << " omega=" << omega;
    }
  }
}

TEST(SocSolversTest, BruteForceGuardTrips) {
  const AttributeSchema schema = AttributeSchema::Anonymous(40);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = 100;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
  DynamicBitset t(40);
  t.SetAll();
  BruteForceOptions options;
  options.max_combinations = 1000;
  BruteForceSolver solver(options);
  auto solution = solver.Solve(log, t, 20);
  // C(40, 20) blows the guard: the solver skips enumeration and serves the
  // frequency-ranked incumbent as a degraded partial result.
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(IsDegraded(*solution));
  EXPECT_EQ(SolutionStopReason(*solution), StopReason::kResourceLimit);
  EXPECT_FALSE(solution->proved_optimal);
  EXPECT_EQ(solution->selected.Count(), 20u);
  EXPECT_TRUE(solution->selected.IsSubsetOf(t));
}

TEST(SocSolversTest, MfiFixedThresholdReportsNotFound) {
  // With a fixed threshold above the optimum the paper's algorithm
  // "returns empty"; we surface that as NotFound.
  QueryLog log(AttributeSchema::Anonymous(4));
  for (int i = 0; i < 10; ++i) log.AddQueryFromIndices({0, 1});
  log.AddQueryFromIndices({2, 3});
  DynamicBitset t = DynamicBitset::FromString("0011");  // Optimum: 1 query.
  MfiSocOptions options = DfsOptions();
  options.adaptive_threshold = false;
  options.fixed_threshold_fraction = 0.5;  // Requires >= 5 queries.
  MfiSocSolver solver(options);
  auto solution = solver.Solve(log, t, 2);
  ASSERT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kNotFound);
}

TEST(SocSolversTest, MfiFixedThresholdSucceedsWhenReachable) {
  QueryLog log(AttributeSchema::Anonymous(4));
  for (int i = 0; i < 10; ++i) log.AddQueryFromIndices({0, 1});
  log.AddQueryFromIndices({2, 3});
  DynamicBitset t = DynamicBitset::FromString("1100");
  MfiSocOptions options = DfsOptions();
  options.adaptive_threshold = false;
  options.fixed_threshold_fraction = 0.5;
  MfiSocSolver solver(options);
  auto solution = solver.Solve(log, t, 2);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  EXPECT_EQ(solution->satisfied_queries, 10);
}

TEST(SocSolversTest, MfiPreprocessedIndexReusableAcrossTuples) {
  const AttributeSchema schema = AttributeSchema::Anonymous(10);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = 60;
  wl.seed = 99;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
  MfiSocOptions options = DfsOptions();
  MfiSocSolver solver(options);
  MfiPreprocessedIndex index(log, options);
  BruteForceSolver brute;
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    DynamicBitset t(10);
    for (int a = 0; a < 10; ++a) {
      if (rng.NextBernoulli(0.6)) t.Set(a);
    }
    const int m = rng.NextInt(1, 5);
    auto with_index = solver.SolveWithIndex(index, log, t, m);
    auto reference = brute.Solve(log, t, m);
    ASSERT_TRUE(with_index.ok());
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(with_index->satisfied_queries, reference->satisfied_queries)
        << "trial " << trial;
  }
}

// Property sweep: the four exact algorithms agree on random instances.
class ExactAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactAgreementTest, ExactSolversAgreeOnRandomInstances) {
  const int seed = GetParam();
  Rng rng(seed * 7919 + 13);
  const int num_attrs = rng.NextInt(4, 14);
  const AttributeSchema schema = AttributeSchema::Anonymous(num_attrs);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = rng.NextInt(5, 80);
  wl.seed = seed;
  wl.size_distribution.resize(
      std::min<std::size_t>(wl.size_distribution.size(), num_attrs));
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
  DynamicBitset t(num_attrs);
  for (int a = 0; a < num_attrs; ++a) {
    if (rng.NextBernoulli(0.65)) t.Set(a);
  }
  const int m = rng.NextInt(0, num_attrs);

  BruteForceSolver brute;
  auto reference = brute.Solve(log, t, m);
  ASSERT_TRUE(reference.ok());

  IlpSocSolver ilp;
  auto ilp_solution = ilp.Solve(log, t, m);
  ASSERT_TRUE(ilp_solution.ok());
  EXPECT_EQ(ilp_solution->satisfied_queries, reference->satisfied_queries);
  EXPECT_TRUE(ilp_solution->proved_optimal);

  MfiSocSolver mfi_walk(WalkOptions(seed + 1));
  auto walk_solution = mfi_walk.Solve(log, t, m);
  ASSERT_TRUE(walk_solution.ok());
  EXPECT_EQ(walk_solution->satisfied_queries, reference->satisfied_queries);

  MfiSocSolver mfi_dfs(DfsOptions());
  auto dfs_solution = mfi_dfs.Solve(log, t, m);
  ASSERT_TRUE(dfs_solution.ok());
  EXPECT_EQ(dfs_solution->satisfied_queries, reference->satisfied_queries);
  EXPECT_TRUE(dfs_solution->proved_optimal);

  BnbSocSolver bnb;
  auto bnb_solution = bnb.Solve(log, t, m);
  ASSERT_TRUE(bnb_solution.ok());
  EXPECT_EQ(bnb_solution->satisfied_queries, reference->satisfied_queries);
  EXPECT_TRUE(bnb_solution->proved_optimal);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ExactAgreementTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace soc
