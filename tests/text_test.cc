#include <cmath>

#include <gtest/gtest.h>

#include "text/keyword_selection.h"
#include "text/text.h"

namespace soc::text {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  EXPECT_EQ(Tokenize("Two-Bedroom Apartment, near TRAIN station!"),
            (std::vector<std::string>{"two", "bedroom", "apartment", "near",
                                      "train", "station"}));
}

TEST(TokenizerTest, DropsStopwordsAndEmpty) {
  EXPECT_EQ(Tokenize("the car is at the shop"),
            (std::vector<std::string>{"car", "shop"}));
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  ,,, ").empty());
}

TEST(TokenizerTest, KeepsNumbers) {
  EXPECT_EQ(Tokenize("2 bedrooms 850sqft"),
            (std::vector<std::string>{"2", "bedrooms", "850sqft"}));
}

TEST(VocabularyTest, InternIsIdempotent) {
  Vocabulary vocab;
  const int a = vocab.Intern("car");
  const int b = vocab.Intern("apartment");
  EXPECT_EQ(vocab.Intern("car"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(vocab.Find("car"), a);
  EXPECT_EQ(vocab.Find("missing"), -1);
  EXPECT_EQ(vocab.term(b), "apartment");
  EXPECT_EQ(vocab.size(), 2);
}

class TextIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc0_ = index_.AddDocument("sunny apartment near train station", vocab_);
    doc1_ = index_.AddDocument("apartment with garage", vocab_);
    doc2_ = index_.AddDocument("sunny house garage garage", vocab_);
  }

  Vocabulary vocab_;
  TextIndex index_;
  int doc0_, doc1_, doc2_;
};

TEST_F(TextIndexTest, DocumentStatistics) {
  EXPECT_EQ(index_.num_documents(), 3);
  EXPECT_EQ(index_.document_length(doc0_), 5);
  EXPECT_EQ(index_.document_length(doc1_), 2);  // "with" is a stopword.
  EXPECT_EQ(index_.DocumentFrequency(vocab_.Find("apartment")), 2);
  EXPECT_EQ(index_.DocumentFrequency(vocab_.Find("garage")), 2);
  EXPECT_EQ(index_.DocumentFrequency(vocab_.Find("train")), 1);
  EXPECT_NEAR(index_.average_document_length(), (5 + 2 + 4) / 3.0, 1e-9);
}

TEST_F(TextIndexTest, IdfDecreasesWithDocumentFrequency) {
  const double idf_rare = index_.Idf(vocab_.Find("train"));
  const double idf_common = index_.Idf(vocab_.Find("apartment"));
  EXPECT_GT(idf_rare, idf_common);
  EXPECT_GT(idf_common, 0.0);
}

TEST_F(TextIndexTest, TopKRanksMatchingDocuments) {
  const std::vector<int> query = {vocab_.Find("apartment")};
  const auto top = index_.TopK(query, 10);
  ASSERT_EQ(top.size(), 2u);
  // doc1 is shorter, so its BM25 for "apartment" is higher than doc0's.
  EXPECT_EQ(top[0].doc, doc1_);
  EXPECT_EQ(top[1].doc, doc0_);
  EXPECT_GT(top[0].score, top[1].score);
}

TEST_F(TextIndexTest, TopKTruncatesToK) {
  const std::vector<int> query = {vocab_.Find("sunny")};
  EXPECT_EQ(index_.TopK(query, 1).size(), 1u);
  EXPECT_EQ(index_.TopK(query, 0).size(), 0u);
}

TEST_F(TextIndexTest, RepeatedTermsScoreHigherButSaturate) {
  const std::vector<int> query = {vocab_.Find("garage")};
  const double s2 = index_.Score(query, doc2_);   // tf = 2.
  const double s1 = index_.Score(query, doc1_);   // tf = 1.
  // doc2 is longer (4 vs 2 tokens), but tf=2 still beats tf=1 under BM25
  // with the default parameters... verify via direct comparison of the two.
  EXPECT_GT(s2, 0.0);
  EXPECT_GT(s1, 0.0);
  // tf saturation: doubling tf does not double the score.
  EXPECT_LT(s2, 2.0 * s1);
}

TEST_F(TextIndexTest, ScoreMatchesTopKEntry) {
  const std::vector<int> query = {vocab_.Find("sunny"),
                                  vocab_.Find("garage")};
  const auto top = index_.TopK(query, 3);
  for (const ScoredDocument& d : top) {
    EXPECT_NEAR(index_.Score(query, d.doc), d.score, 1e-9);
  }
}

TEST_F(TextIndexTest, VirtualDocumentScoring) {
  // A virtual ad containing exactly the query terms scores > 0 and equals
  // an identical real document's score.
  Vocabulary vocab2;
  TextIndex index2;
  index2.AddDocument("sunny apartment near train station", vocab2);
  index2.AddDocument("apartment with garage", vocab2);
  index2.AddDocument("sunny house garage garage", vocab2);
  const int real = index2.AddDocument("cozy loft", vocab2);
  const std::vector<int> query = {vocab2.Find("cozy"), vocab2.Find("loft")};
  std::unordered_map<int, int> virtual_doc = {{vocab2.Find("cozy"), 1},
                                              {vocab2.Find("loft"), 1}};
  // Note: the virtual doc is *not* part of the corpus, so its idf uses the
  // same statistics; with the real doc present both computations match.
  EXPECT_NEAR(index2.ScoreVirtual(query, virtual_doc),
              index2.Score(query, real), 1e-9);
}

// --- Keyword selection ---

TEST(KeywordSelectionTest, ObjectivesCountCorrectly) {
  const std::vector<SparseQuery> queries = {{1, 2}, {2}, {3, 4}, {9}};
  EXPECT_EQ(CountSatisfiedConjunctive(queries, {1, 2}), 2);
  EXPECT_EQ(CountSatisfiedConjunctive(queries, {2, 3}), 1);
  EXPECT_EQ(CountSatisfiedDisjunctive(queries, {2, 3}), 3);
  EXPECT_EQ(CountSatisfiedDisjunctive(queries, {}), 0);
}

TEST(KeywordSelectionTest, ConsumeAttrPicksFrequentTerms) {
  // Term 2 appears 3x, term 1 2x, term 5 1x.
  const std::vector<SparseQuery> queries = {{1, 2}, {2}, {1, 2}, {5}};
  EXPECT_EQ(SelectKeywordsConsumeAttr(queries, {1, 2, 5}, 2),
            (std::vector<int>{1, 2}));
  EXPECT_EQ(SelectKeywordsConsumeAttr(queries, {1, 2, 5}, 1),
            (std::vector<int>{2}));
  // Candidates outside the log get frequency 0.
  EXPECT_EQ(SelectKeywordsConsumeAttr(queries, {7, 2}, 1),
            (std::vector<int>{2}));
}

TEST(KeywordSelectionTest, ConsumeAttrCumulFollowsCooccurrence) {
  // Term 0 most frequent; 0 co-occurs with 3 (twice), never with 9.
  const std::vector<SparseQuery> queries = {{0, 3}, {0, 3}, {0}, {9}, {9}};
  const auto selected = SelectKeywordsConsumeAttrCumul(queries, {0, 3, 9}, 2);
  EXPECT_EQ(selected, (std::vector<int>{0, 3}));
}

TEST(KeywordSelectionTest, ConsumeQueriesAbsorbsCheapQueries) {
  // Queries: {1} (x3), {2,3}, {4,5,6}. Budget 3: absorb {1} (1 new term),
  // then {2,3} (2 new) -> {1,2,3}.
  const std::vector<SparseQuery> queries = {{1}, {1}, {1}, {2, 3}, {4, 5, 6}};
  const auto selected =
      SelectKeywordsConsumeQueries(queries, {1, 2, 3, 4, 5, 6}, 3);
  EXPECT_EQ(selected, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(CountSatisfiedConjunctive(queries, selected), 4);
}

TEST(KeywordSelectionTest, ConsumeQueriesSkipsOversizedAndFills) {
  // Only {7,8,9} is coverable but needs 3 > budget 2; fill by frequency.
  const std::vector<SparseQuery> queries = {{7, 8, 9}, {7}, {8}};
  const auto selected = SelectKeywordsConsumeQueries(queries, {7, 8, 9}, 2);
  // {7} absorbed (1 new), then {8} (1 new); {7,8,9} never fits.
  EXPECT_EQ(selected, (std::vector<int>{7, 8}));
}

TEST(KeywordSelectionTest, ConsumeQueriesIgnoresUncoverableQueries) {
  // Query {5} uses a non-candidate keyword: never satisfiable.
  const std::vector<SparseQuery> queries = {{5}, {1, 2}};
  const auto selected = SelectKeywordsConsumeQueries(queries, {1, 2}, 2);
  EXPECT_EQ(selected, (std::vector<int>{1, 2}));
  EXPECT_EQ(CountSatisfiedConjunctive(queries, selected), 1);
}

TEST(KeywordSelectionTest, MaxCoverageCoversDistinctQueries) {
  // Term 1 covers queries 0-2; after that term 8 covers query 3 even
  // though term 2 has higher raw frequency.
  const std::vector<SparseQuery> queries = {{1, 2}, {1, 2}, {1, 2}, {8}};
  const auto selected = SelectKeywordsMaxCoverage(queries, {1, 2, 8}, 2);
  EXPECT_EQ(selected, (std::vector<int>{1, 8}));
  EXPECT_EQ(CountSatisfiedDisjunctive(queries, selected), 4);
}

TEST(KeywordSelectionTest, TopkBm25SelectsWinnableKeywords) {
  Vocabulary vocab;
  TextIndex index;
  // A crowded "apartment downtown" market and an uncontested "loft garden"
  // niche.
  for (int i = 0; i < 6; ++i) {
    index.AddDocument(
        "apartment downtown apartment downtown apartment downtown", vocab);
  }
  index.AddDocument("house suburb", vocab);
  const int apartment = vocab.Find("apartment");
  const int downtown = vocab.Find("downtown");
  const int loft = vocab.Intern("loft");
  const int garden = vocab.Intern("garden");

  std::vector<SparseQuery> queries;
  for (int i = 0; i < 4; ++i) queries.push_back({apartment, downtown});
  for (int i = 0; i < 3; ++i) queries.push_back({loft, garden});

  // With k = 2 the six heavy apartment ads outrank a thin new ad, so the
  // loft/garden queries are the winnable ones.
  const TopkKeywordResult result = SelectKeywordsTopkBm25(
      index, queries, {apartment, downtown, loft, garden}, 2, 2);
  EXPECT_EQ(result.selected, (std::vector<int>{loft, garden}));
  EXPECT_EQ(result.satisfied_queries, 3);
}

TEST(KeywordSelectionTest, TopkCountRequiresAllQueryTerms) {
  Vocabulary vocab;
  TextIndex index;
  index.AddDocument("boat", vocab);
  const int boat = vocab.Find("boat");
  const int trailer = vocab.Intern("trailer");
  const std::vector<SparseQuery> queries = {{boat, trailer}};
  // Ad containing only "boat" does not conjunctively satisfy the query.
  EXPECT_EQ(CountTopkSatisfied(index, queries, {boat}, 5), 0);
  EXPECT_EQ(CountTopkSatisfied(index, queries, {boat, trailer}, 5), 1);
}

}  // namespace
}  // namespace soc::text
