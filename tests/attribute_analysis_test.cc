#include "core/attribute_analysis.h"

#include <gtest/gtest.h>

#include "common/combinatorics.h"
#include "common/random.h"
#include "core/brute_force.h"
#include "datagen/workload.h"
#include "paper_example.h"

namespace soc {
namespace {

// Reference: forced-in / forced-out optima by direct enumeration.
std::pair<int, int> BruteForceForcedValues(const QueryLog& log,
                                           const DynamicBitset& tuple, int m,
                                           int attr) {
  const std::vector<int> pool = tuple.SetBits();
  int best_in = 0;
  int best_out = 0;
  const int pick = std::min<int>(m, static_cast<int>(pool.size()));
  ForEachCombination(pool, pick, [&](const std::vector<int>& combo) {
    DynamicBitset candidate(log.num_attributes());
    for (int a : combo) candidate.Set(a);
    const int count = CountSatisfiedQueries(log, candidate);
    if (candidate.Test(attr)) {
      best_in = std::max(best_in, count);
    } else {
      best_out = std::max(best_out, count);
    }
    return true;
  });
  return {best_in, best_out};
}

TEST(AttributeAnalysisTest, PaperExample) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  const BruteForceSolver exact;
  auto values = AnalyzeAttributeValues(exact, log, t, 3);
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), t.Count());
  // PowerDoors participates in the optimum {AC, FourDoor, PowerDoors}
  // (3 queries); without it the best is 1 (only q1 = {AC, FourDoor}).
  const auto power_doors =
      std::find_if(values->begin(), values->end(),
                   [](const AttributeValue& v) { return v.attribute == 3; });
  ASSERT_NE(power_doors, values->end());
  EXPECT_EQ(power_doors->forced_in, 3);
  EXPECT_EQ(power_doors->forced_out, 1);
  EXPECT_EQ(power_doors->marginal, 2);
  // The list is sorted by descending marginal value.
  for (std::size_t i = 1; i < values->size(); ++i) {
    EXPECT_GE((*values)[i - 1].marginal, (*values)[i].marginal);
  }
  // AutoTrans appears in no satisfiable query: marginal value <= 0.
  const auto auto_trans =
      std::find_if(values->begin(), values->end(),
                   [](const AttributeValue& v) { return v.attribute == 4; });
  ASSERT_NE(auto_trans, values->end());
  EXPECT_LE(auto_trans->marginal, 0);
  // Budget wasted on AutoTrans leaves 2 slots: any pair of useful
  // attributes satisfies exactly one two-attribute query.
  EXPECT_EQ(auto_trans->forced_in, 1);
}

TEST(AttributeAnalysisTest, MatchesDirectEnumeration) {
  Rng rng(98765);
  const BruteForceSolver exact;
  for (int trial = 0; trial < 12; ++trial) {
    const AttributeSchema schema = AttributeSchema::Anonymous(9);
    datagen::SyntheticWorkloadOptions wl;
    wl.num_queries = 40;
    wl.seed = 4000 + trial;
    const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
    DynamicBitset t(9);
    for (int a = 0; a < 9; ++a) {
      if (rng.NextBernoulli(0.7)) t.Set(a);
    }
    if (t.None()) t.Set(0);
    const int m = rng.NextInt(1, 5);
    auto values = AnalyzeAttributeValues(exact, log, t, m);
    ASSERT_TRUE(values.ok());
    for (const AttributeValue& value : *values) {
      const auto [expected_in, expected_out] =
          BruteForceForcedValues(log, t, m, value.attribute);
      EXPECT_EQ(value.forced_in, expected_in)
          << "trial " << trial << " attr " << value.attribute;
      EXPECT_EQ(value.forced_out, expected_out)
          << "trial " << trial << " attr " << value.attribute;
    }
  }
}

TEST(AttributeAnalysisTest, MaxForcedValueEqualsUnconstrainedOptimum) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  const BruteForceSolver exact;
  for (int m = 1; m <= 5; ++m) {
    auto optimal = exact.Solve(log, t, m);
    auto values = AnalyzeAttributeValues(exact, log, t, m);
    ASSERT_TRUE(optimal.ok());
    ASSERT_TRUE(values.ok());
    int best = 0;
    for (const AttributeValue& v : *values) {
      best = std::max({best, v.forced_in, v.forced_out});
    }
    EXPECT_EQ(best, optimal->satisfied_queries) << "m=" << m;
  }
}

TEST(AttributeAnalysisTest, RejectsZeroBudget) {
  const BruteForceSolver exact;
  auto values = AnalyzeAttributeValues(exact, testdata::PaperQueryLog(),
                                       testdata::PaperNewTuple(), 0);
  ASSERT_FALSE(values.ok());
  EXPECT_EQ(values.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace soc
