// Multi-tenant chaos: drives the src/check tenant storm — hostile
// request variants, injected faults/stalls, concurrent PublishEpoch
// swaps racing submitters that still hold old snapshots — and requires
// every audit to pass: zero stale results (objective recount against the
// epoch each response claims), per-tenant ledger balance, cache-hit
// consistency of the post-storm probes. The small configurations here
// run under the per-PR TSan job, which is where the RCU snapshot and
// single-flight cache races would surface.

#include <cstdint>

#include <gtest/gtest.h>

#include "check/fuzz.h"

namespace soc::check {
namespace {

TEST(TenantChaosTest, StormKeepsLedgersBalancedAndResultsFresh) {
  MultiTenantChaosOptions options;
  options.requests = 200;
  options.seed = 1;
  options.num_shards = 2;
  options.num_tenants = 4;
  options.submitter_threads = 3;
  const Status status = FuzzMultiTenantChaos(options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(TenantChaosTest, SeedSweepStaysAuditClean) {
  for (std::uint64_t seed = 2; seed < 5; ++seed) {
    MultiTenantChaosOptions options;
    options.requests = 120;
    options.seed = seed;
    options.num_shards = 2;
    options.num_tenants = 3;
    const Status status = FuzzMultiTenantChaos(options);
    EXPECT_TRUE(status.ok()) << "seed " << seed << ": " << status.ToString();
  }
}

TEST(TenantChaosTest, FrequentPublishesNeverLeakStaleEpochs) {
  // Publish every 10 requests: snapshots churn constantly while
  // submitters hold pins from several epochs back.
  MultiTenantChaosOptions options;
  options.requests = 150;
  options.seed = 11;
  options.num_shards = 2;
  options.num_tenants = 3;
  options.publish_every = 10;
  const Status status = FuzzMultiTenantChaos(options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(TenantChaosTest, TinyCacheSurvivesEvictionPressure) {
  // A 4-entry cache under 6 tenants forces constant eviction and
  // single-flight churn on repeated keys.
  MultiTenantChaosOptions options;
  options.requests = 150;
  options.seed = 23;
  options.result_cache_capacity = 4;
  const Status status = FuzzMultiTenantChaos(options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(TenantChaosTest, SingleShardSingleWorkerStillAudits) {
  MultiTenantChaosOptions options;
  options.requests = 100;
  options.seed = 7;
  options.num_shards = 1;
  options.num_tenants = 2;
  options.num_workers = 1;
  options.submitter_threads = 2;
  options.max_queue = 16;
  const Status status = FuzzMultiTenantChaos(options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

}  // namespace
}  // namespace soc::check
