#include "common/bitset.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/random.h"

namespace soc {
namespace {

TEST(DynamicBitsetTest, DefaultIsEmpty) {
  DynamicBitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.Count(), 0u);
}

TEST(DynamicBitsetTest, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(DynamicBitsetTest, FlipTogglesBit) {
  DynamicBitset b(10);
  b.Flip(3);
  EXPECT_TRUE(b.Test(3));
  b.Flip(3);
  EXPECT_FALSE(b.Test(3));
}

TEST(DynamicBitsetTest, SetAllRespectsSize) {
  DynamicBitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  EXPECT_TRUE(b.All());
  b.ResetAll();
  EXPECT_TRUE(b.None());
}

TEST(DynamicBitsetTest, ComplementKeepsTrailingBitsZero) {
  DynamicBitset b(70);
  b.Set(0);
  b.Set(69);
  DynamicBitset c = b.Complement();
  EXPECT_EQ(c.Count(), 68u);
  EXPECT_FALSE(c.Test(0));
  EXPECT_FALSE(c.Test(69));
  EXPECT_TRUE(c.Test(1));
  // Complement twice is identity.
  EXPECT_EQ(c.Complement(), b);
}

TEST(DynamicBitsetTest, LogicalOperators) {
  DynamicBitset a = DynamicBitset::FromString("1100");
  DynamicBitset b = DynamicBitset::FromString("1010");
  EXPECT_EQ((a & b).ToString(), "1000");
  EXPECT_EQ((a | b).ToString(), "1110");
  EXPECT_EQ((a ^ b).ToString(), "0110");
  DynamicBitset c = a;
  c.AndNot(b);
  EXPECT_EQ(c.ToString(), "0100");
}

TEST(DynamicBitsetTest, SubsetTests) {
  DynamicBitset small = DynamicBitset::FromString("0100");
  DynamicBitset big = DynamicBitset::FromString("1100");
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(big.IsSubsetOf(big));
  EXPECT_TRUE(small.IsProperSubsetOf(big));
  EXPECT_FALSE(big.IsProperSubsetOf(big));
  DynamicBitset empty(4);
  EXPECT_TRUE(empty.IsSubsetOf(small));
}

TEST(DynamicBitsetTest, IntersectsAndCount) {
  DynamicBitset a = DynamicBitset::FromString("110010");
  DynamicBitset b = DynamicBitset::FromString("011011");
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.IntersectionCount(b), 2u);
  DynamicBitset c = DynamicBitset::FromString("001100");
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.DisjointWith(c));
}

TEST(DynamicBitsetTest, FindFirstNextIteratesAllBits) {
  DynamicBitset b(200);
  const std::vector<int> expected = {0, 5, 63, 64, 65, 127, 128, 199};
  for (int i : expected) b.Set(i);
  std::vector<int> found;
  for (std::size_t pos = b.FindFirst(); pos != DynamicBitset::npos;
       pos = b.FindNext(pos)) {
    found.push_back(static_cast<int>(pos));
  }
  EXPECT_EQ(found, expected);
  EXPECT_EQ(b.SetBits(), expected);
}

TEST(DynamicBitsetTest, FindFirstOnEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.FindFirst(), DynamicBitset::npos);
}

TEST(DynamicBitsetTest, ForEachSetBitMatchesSetBits) {
  Rng rng(7);
  DynamicBitset b(300);
  for (int i = 0; i < 300; ++i) {
    if (rng.NextBernoulli(0.3)) b.Set(i);
  }
  std::vector<int> collected;
  b.ForEachSetBit([&collected](int i) { collected.push_back(i); });
  EXPECT_EQ(collected, b.SetBits());
  EXPECT_EQ(collected.size(), b.Count());
}

TEST(DynamicBitsetTest, FromIndicesAndToString) {
  DynamicBitset b = DynamicBitset::FromIndices(6, {0, 2, 5});
  EXPECT_EQ(b.ToString(), "101001");
  EXPECT_EQ(DynamicBitset::FromString("101001"), b);
}

TEST(DynamicBitsetTest, ResizeGrowAndShrink) {
  DynamicBitset b(10);
  b.Set(9);
  b.Resize(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.Test(9));
  EXPECT_FALSE(b.Test(50));
  b.Set(99);
  b.Resize(10);
  EXPECT_EQ(b.Count(), 1u);
  // Growing again must not resurrect the truncated bit.
  b.Resize(100);
  EXPECT_FALSE(b.Test(99));
}

TEST(DynamicBitsetTest, EqualityAndOrdering) {
  DynamicBitset a = DynamicBitset::FromString("01");
  DynamicBitset b = DynamicBitset::FromString("01");
  DynamicBitset c = DynamicBitset::FromString("10");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::set<DynamicBitset> ordered = {a, b, c};
  EXPECT_EQ(ordered.size(), 2u);
}

TEST(DynamicBitsetTest, HashDistinguishesSizes) {
  DynamicBitset a(64);
  DynamicBitset b(65);
  EXPECT_NE(a.Hash(), b.Hash());
  std::unordered_set<DynamicBitset, DynamicBitsetHash> set;
  set.insert(a);
  set.insert(b);
  set.insert(a);
  EXPECT_EQ(set.size(), 2u);
}

TEST(DynamicBitsetTest, WordsExposedForKernels) {
  DynamicBitset b(65);
  b.Set(64);
  ASSERT_EQ(b.word_count(), 2u);
  EXPECT_EQ(b.words()[0], 0u);
  EXPECT_EQ(b.words()[1], 1u);
}

// Property check: randomized algebra against a std::set<int> model.
TEST(DynamicBitsetTest, RandomizedAgainstSetModel) {
  Rng rng(42);
  const int n = 173;
  for (int trial = 0; trial < 50; ++trial) {
    std::set<int> ma, mb;
    DynamicBitset a(n), b(n);
    for (int i = 0; i < n; ++i) {
      if (rng.NextBernoulli(0.4)) {
        a.Set(i);
        ma.insert(i);
      }
      if (rng.NextBernoulli(0.4)) {
        b.Set(i);
        mb.insert(i);
      }
    }
    std::set<int> m_and, m_or;
    std::set_intersection(ma.begin(), ma.end(), mb.begin(), mb.end(),
                          std::inserter(m_and, m_and.begin()));
    std::set_union(ma.begin(), ma.end(), mb.begin(), mb.end(),
                   std::inserter(m_or, m_or.begin()));
    EXPECT_EQ((a & b).Count(), m_and.size());
    EXPECT_EQ((a | b).Count(), m_or.size());
    EXPECT_EQ(a.IntersectionCount(b), m_and.size());
    const bool subset =
        std::includes(mb.begin(), mb.end(), ma.begin(), ma.end());
    EXPECT_EQ(a.IsSubsetOf(b), subset);
  }
}

}  // namespace
}  // namespace soc
