// ResultCache: hit/miss accounting, LRU eviction order, single-flight
// leadership (leader / follower / abandon-promotion / deadline-bounded
// waits) and the epoch-keyed invalidation scheme — a PublishEpoch never
// scans the cache; it just makes old-epoch keys unreachable.

#include "tenant/result_cache.h"

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/solver.h"
#include "serve/metrics.h"

namespace soc::tenant {
namespace {

ResultCacheKey MakeKey(const std::string& tenant, const std::string& bits,
                       int m, std::int64_t epoch) {
  ResultCacheKey key;
  key.tenant_id = tenant;
  key.tuple_bits = bits;
  key.m = m;
  key.epoch = epoch;
  return key;
}

CachedResult MakeResult(const std::string& selected, int satisfied) {
  CachedResult result;
  result.solution.selected = DynamicBitset::FromString(selected);
  result.solution.satisfied_queries = satisfied;
  result.solver = "BranchAndBound";
  return result;
}

// Inserts via the full leader protocol (Lookup miss -> Publish).
void Insert(ResultCache& cache, const ResultCacheKey& key,
            CachedResult result) {
  ResultCache::FlightPtr flight;
  ASSERT_EQ(cache.Lookup(key, Deadline::Infinite(), &flight), nullptr);
  ASSERT_NE(flight, nullptr) << "expected cold-miss leadership";
  cache.Publish(key, std::move(flight), std::move(result));
}

TEST(ResultCacheTest, MissThenHitCountsExactlyOnceEach) {
  serve::ServeMetrics metrics;
  ResultCache cache(8, &metrics);
  const ResultCacheKey key = MakeKey("acme", "0110", 2, 1);

  Insert(cache, key, MakeResult("0100", 7));
  ResultCache::FlightPtr flight;
  const CachedResultPtr hit = cache.Lookup(key, Deadline::Infinite(), &flight);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(flight, nullptr);
  EXPECT_EQ(hit->solution.satisfied_queries, 7);
  EXPECT_EQ(hit->solver, "BranchAndBound");

  EXPECT_EQ(metrics.Get(kResultCacheMisses), 1);
  EXPECT_EQ(metrics.Get(kResultCacheHits), 1);
  EXPECT_EQ(metrics.Get(kResultCacheInserts), 1);
  EXPECT_EQ(metrics.Get(kResultCacheEvictions), 0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, CapacityIsClampedToOne) {
  ResultCache cache(0, nullptr);  // nullptr metrics: counters dropped.
  EXPECT_EQ(cache.capacity(), 1u);
  Insert(cache, MakeKey("a", "01", 1, 1), MakeResult("01", 1));
  Insert(cache, MakeKey("b", "01", 1, 1), MakeResult("01", 2));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  serve::ServeMetrics metrics;
  ResultCache cache(2, &metrics);
  const ResultCacheKey k1 = MakeKey("acme", "0001", 1, 1);
  const ResultCacheKey k2 = MakeKey("acme", "0010", 1, 1);
  const ResultCacheKey k3 = MakeKey("acme", "0100", 1, 1);

  Insert(cache, k1, MakeResult("0001", 1));
  Insert(cache, k2, MakeResult("0010", 2));

  // Touch k1 so k2 becomes the LRU entry, then overflow with k3.
  ResultCache::FlightPtr flight;
  ASSERT_NE(cache.Lookup(k1, Deadline::Infinite(), &flight), nullptr);
  Insert(cache, k3, MakeResult("0100", 3));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(metrics.Get(kResultCacheEvictions), 1);
  EXPECT_NE(cache.Lookup(k1, Deadline::Infinite(), &flight), nullptr);
  EXPECT_NE(cache.Lookup(k3, Deadline::Infinite(), &flight), nullptr);
  // k2 was evicted: probing it is a fresh miss granting leadership.
  EXPECT_EQ(cache.Lookup(k2, Deadline::Infinite(), &flight), nullptr);
  ASSERT_NE(flight, nullptr);
  cache.Abandon(k2, std::move(flight));
}

TEST(ResultCacheTest, FollowerWaitsForTheLeaderAndHits) {
  serve::ServeMetrics metrics;
  ResultCache cache(8, &metrics);
  const ResultCacheKey key = MakeKey("acme", "1100", 2, 3);

  ResultCache::FlightPtr leader;
  ASSERT_EQ(cache.Lookup(key, Deadline::Infinite(), &leader), nullptr);
  ASSERT_NE(leader, nullptr);

  CachedResultPtr follower_result;
  {
    ThreadPool follower(1);
    follower.Submit([&cache, &key, &follower_result] {
      ResultCache::FlightPtr flight;
      follower_result =
          cache.Lookup(key, Deadline::AfterSeconds(10), &flight);
      EXPECT_EQ(flight, nullptr);
    });
    // Let the follower reach its wait, then resolve the flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.Publish(key, std::move(leader), MakeResult("1000", 5));
    follower.Shutdown();
  }
  ASSERT_NE(follower_result, nullptr);
  EXPECT_EQ(follower_result->solution.satisfied_queries, 5);
  EXPECT_GE(metrics.Get(kResultCacheFlightWaits), 1);
  // Both lookups arrived before the value existed, so both count as
  // misses — the follower's post-wait re-probe is deliberately uncounted
  // (one hit-or-miss per Lookup). Only a fresh lookup is a hit.
  EXPECT_EQ(metrics.Get(kResultCacheMisses), 2);
  EXPECT_EQ(metrics.Get(kResultCacheHits), 0);
  ResultCache::FlightPtr fresh;
  EXPECT_NE(cache.Lookup(key, Deadline::Infinite(), &fresh), nullptr);
  EXPECT_EQ(metrics.Get(kResultCacheHits), 1);
}

TEST(ResultCacheTest, AbandonPromotesTheFirstReProber) {
  serve::ServeMetrics metrics;
  ResultCache cache(8, &metrics);
  const ResultCacheKey key = MakeKey("acme", "1010", 2, 1);

  ResultCache::FlightPtr leader;
  ASSERT_EQ(cache.Lookup(key, Deadline::Infinite(), &leader), nullptr);
  ASSERT_NE(leader, nullptr);

  bool follower_promoted = false;
  {
    ThreadPool follower(1);
    follower.Submit([&cache, &key, &follower_promoted] {
      ResultCache::FlightPtr flight;
      const CachedResultPtr result =
          cache.Lookup(key, Deadline::AfterSeconds(10), &flight);
      // The leader abandoned: no result, but leadership transfers.
      EXPECT_EQ(result, nullptr);
      ASSERT_NE(flight, nullptr);
      follower_promoted = true;
      cache.Publish(key, std::move(flight), MakeResult("1010", 9));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cache.Abandon(key, std::move(leader));
    follower.Shutdown();
  }
  EXPECT_TRUE(follower_promoted);
  // The promoted follower's publish is served to later probes.
  ResultCache::FlightPtr flight;
  const CachedResultPtr hit = cache.Lookup(key, Deadline::Infinite(), &flight);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->solution.satisfied_queries, 9);
}

TEST(ResultCacheTest, FollowerDeadlineExpiryFallsBackToSelfSolve) {
  serve::ServeMetrics metrics;
  ResultCache cache(8, &metrics);
  const ResultCacheKey key = MakeKey("acme", "0011", 1, 1);

  ResultCache::FlightPtr leader;
  ASSERT_EQ(cache.Lookup(key, Deadline::Infinite(), &leader), nullptr);
  ASSERT_NE(leader, nullptr);

  // A follower with a short budget must not stall behind a wedged
  // leader: it gives up, gets a miss with no leadership, and solves for
  // itself without publishing.
  ResultCache::FlightPtr follower_flight;
  const CachedResultPtr result =
      cache.Lookup(key, Deadline::AfterSeconds(0.05), &follower_flight);
  EXPECT_EQ(result, nullptr);
  EXPECT_EQ(follower_flight, nullptr);
  EXPECT_EQ(metrics.Get(kResultCacheMisses), 2);

  cache.Abandon(key, std::move(leader));
}

TEST(ResultCacheTest, EpochBumpMakesOldEntriesUnreachable) {
  serve::ServeMetrics metrics;
  ResultCache cache(8, &metrics);
  const ResultCacheKey old_key = MakeKey("acme", "0110", 2, 1);
  const ResultCacheKey new_key = MakeKey("acme", "0110", 2, 2);

  Insert(cache, old_key, MakeResult("0100", 7));

  // Same tenant/tuple/m at the published epoch is a different key: the
  // stale answer is unreachable without any scan or version check.
  ResultCache::FlightPtr flight;
  ASSERT_EQ(cache.Lookup(new_key, Deadline::Infinite(), &flight), nullptr);
  ASSERT_NE(flight, nullptr);
  cache.Publish(new_key, std::move(flight), MakeResult("0010", 11));

  const CachedResultPtr fresh =
      cache.Lookup(new_key, Deadline::Infinite(), &flight);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->solution.satisfied_queries, 11);
  // The old epoch's entry still exists (it ages out via LRU, it is not
  // scanned away) but can only be reached by an old-epoch key.
  const CachedResultPtr stale =
      cache.Lookup(old_key, Deadline::Infinite(), &flight);
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->solution.satisfied_queries, 7);
}

TEST(ResultCacheTest, KeysDifferingInAnyComponentMiss) {
  ResultCache cache(16, nullptr);
  Insert(cache, MakeKey("acme", "0110", 2, 1), MakeResult("0100", 7));
  for (const ResultCacheKey& other :
       {MakeKey("globex", "0110", 2, 1),   // tenant
        MakeKey("acme", "0111", 2, 1),     // tuple
        MakeKey("acme", "0110", 3, 1),     // m
        MakeKey("acme", "0110", 2, 2)}) {  // epoch
    ResultCache::FlightPtr flight;
    EXPECT_EQ(cache.Lookup(other, Deadline::Infinite(), &flight), nullptr);
    ASSERT_NE(flight, nullptr);
    cache.Abandon(other, std::move(flight));
  }
}

}  // namespace
}  // namespace soc::tenant
