// Differential soak: a wide randomized sweep cross-checking every layer of
// the stack against every other on shared instances. Complements the
// per-module suites with interactions those don't cover (weighted vs
// unweighted vs ILP on one instance, variant consistency, analysis
// consistency with the optimum, heuristics and the serve layer against the
// brute-force reference).
//
// Instances come from the check library's seeded generator, the same
// distribution socvis_check soaks nightly — so a failure here is
// reproducible with `socvis_check --trials=1 --seed=<instance seed>`.

#include <gtest/gtest.h>

#include "boolean/evaluator.h"
#include "check/instance.h"
#include "core/attribute_analysis.h"
#include "core/bnb_solver.h"
#include "core/brute_force.h"
#include "core/fallback_solver.h"
#include "core/greedy.h"
#include "core/ilp_solver.h"
#include "core/mfi_solver.h"
#include "core/variants.h"
#include "core/weighted.h"
#include "serve/visibility_service.h"

namespace soc {
namespace {

class SoakTest : public ::testing::TestWithParam<int> {};

TEST_P(SoakTest, AllLayersAgree) {
  const check::Instance instance =
      check::GenerateInstance(static_cast<std::uint64_t>(GetParam()));
  const QueryLog& log = instance.log;
  const DynamicBitset& t = instance.tuple;
  const int m = instance.m;
  SCOPED_TRACE(check::InstanceSummary(instance));

  // Layer 1: the four exact solvers.
  BruteForceSolver brute;
  auto reference = brute.Solve(log, t, m);
  ASSERT_TRUE(reference.ok());
  const int optimum = reference->satisfied_queries;

  BnbSocSolver bnb;
  auto bnb_solution = bnb.Solve(log, t, m);
  ASSERT_TRUE(bnb_solution.ok());
  EXPECT_EQ(bnb_solution->satisfied_queries, optimum);

  IlpSocSolver ilp;
  auto ilp_solution = ilp.Solve(log, t, m);
  ASSERT_TRUE(ilp_solution.ok());
  EXPECT_EQ(ilp_solution->satisfied_queries, optimum);

  MfiSocSolver mfi;
  auto mfi_solution = mfi.Solve(log, t, m);
  ASSERT_TRUE(mfi_solution.ok());
  EXPECT_EQ(mfi_solution->satisfied_queries, optimum);

  // Layer 2: weighted pipeline on the same instance.
  const WeightedSocInstance weighted = WeightedSocInstance::FromLog(log);
  auto weighted_solution = SolveWeightedBnb(weighted, t, m);
  ASSERT_TRUE(weighted_solution.ok());
  EXPECT_EQ(weighted_solution->satisfied_weight, optimum);

  // Layer 3: the domination adapter run with the log's queries as a
  // database must agree (the two objectives coincide by construction).
  BooleanTable as_database(log.schema());
  for (const DynamicBitset& q : log.queries()) as_database.AddRow(q);
  auto dominated = SolveSocCbD(brute, as_database, t, m);
  ASSERT_TRUE(dominated.ok());
  EXPECT_EQ(dominated->satisfied_queries, optimum);

  // Layer 4: attribute analysis must bracket the optimum.
  if (m >= 1 && t.Any()) {
    auto values = AnalyzeAttributeValues(bnb, log, t, m);
    ASSERT_TRUE(values.ok());
    int best_forced = 0;
    for (const AttributeValue& value : *values) {
      EXPECT_LE(value.forced_in, optimum);
      EXPECT_LE(value.forced_out, optimum);
      best_forced = std::max({best_forced, value.forced_in,
                              value.forced_out});
    }
    if (!values->empty()) {
      EXPECT_EQ(best_forced, optimum);
    }
  }

  // Layer 5: per-attribute variant is consistent with a manual sweep.
  if (t.Any()) {
    auto per_attr = SolvePerAttribute(bnb, log, t);
    ASSERT_TRUE(per_attr.ok());
    for (int budget = 1; budget <= static_cast<int>(t.Count()); ++budget) {
      auto at_budget = brute.Solve(log, t, budget);
      ASSERT_TRUE(at_budget.ok());
      EXPECT_GE(per_attr->ratio + 1e-9,
                static_cast<double>(at_budget->satisfied_queries) / budget);
    }
  }

  // Layer 6: the Fallback portfolio's exact tier completes unhindered on
  // instances this size, so its answer must be the optimum.
  FallbackSolver fallback;
  auto fallback_solution = fallback.Solve(log, t, m);
  ASSERT_TRUE(fallback_solution.ok());
  EXPECT_EQ(fallback_solution->satisfied_queries, optimum);

  // Layer 7: every greedy heuristic stays within [0, optimum] and reports
  // an honest objective.
  for (const GreedyKind kind : {GreedyKind::kConsumeAttr,
                                GreedyKind::kConsumeAttrCumul,
                                GreedyKind::kConsumeQueries}) {
    const GreedySolver greedy(kind);
    auto heuristic = greedy.Solve(log, t, m);
    ASSERT_TRUE(heuristic.ok()) << greedy.name();
    EXPECT_LE(heuristic->satisfied_queries, optimum) << greedy.name();
    EXPECT_EQ(heuristic->satisfied_queries,
              CountSatisfiedQueries(log, heuristic->selected))
        << greedy.name();
    EXPECT_FALSE(heuristic->proved_optimal) << greedy.name();
  }

  // Layer 8: the serve layer answers with the same optimum through its
  // whole pipeline (admission, preprocessing cache, worker pool).
  {
    serve::VisibilityServiceOptions options;
    options.num_workers = 2;
    serve::VisibilityService service(log, options);
    serve::SolveRequest request;
    request.id = "soak";
    request.tuple = t;
    request.m = m;
    request.solver = "BruteForce";
    auto future = service.Submit(request);
    service.Drain();
    const serve::SolveResponse response = future.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.solution.satisfied_queries, optimum);
    EXPECT_EQ(response.solution.satisfied_queries,
              CountSatisfiedQueries(log, response.solution.selected));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SoakTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace soc
