// Differential soak: a wide randomized sweep cross-checking every layer of
// the stack against every other on shared instances. Complements the
// per-module suites with interactions those don't cover (weighted vs
// unweighted vs ILP on one instance, variant consistency, analysis
// consistency with the optimum).

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/attribute_analysis.h"
#include "core/bnb_solver.h"
#include "core/brute_force.h"
#include "core/ilp_solver.h"
#include "core/mfi_solver.h"
#include "core/variants.h"
#include "core/weighted.h"
#include "datagen/workload.h"

namespace soc {
namespace {

struct Instance {
  QueryLog log;
  DynamicBitset tuple;
  int m;
};

Instance MakeInstance(int seed) {
  Rng rng(seed * 7717 + 29);
  const int num_attrs = rng.NextInt(4, 12);
  const AttributeSchema schema = AttributeSchema::Anonymous(num_attrs);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = rng.NextInt(3, 90);
  wl.seed = seed * 3 + 1;
  wl.size_distribution.resize(std::min<std::size_t>(
      wl.size_distribution.size(), static_cast<std::size_t>(num_attrs)));
  Instance instance{datagen::MakeSyntheticWorkload(schema, wl),
                    DynamicBitset(num_attrs), 0};
  for (int a = 0; a < num_attrs; ++a) {
    if (rng.NextBernoulli(0.6)) instance.tuple.Set(a);
  }
  instance.m = rng.NextInt(0, num_attrs);
  return instance;
}

class SoakTest : public ::testing::TestWithParam<int> {};

TEST_P(SoakTest, AllLayersAgree) {
  const Instance instance = MakeInstance(GetParam());
  const QueryLog& log = instance.log;
  const DynamicBitset& t = instance.tuple;
  const int m = instance.m;

  // Layer 1: the four exact solvers.
  BruteForceSolver brute;
  auto reference = brute.Solve(log, t, m);
  ASSERT_TRUE(reference.ok());
  const int optimum = reference->satisfied_queries;

  BnbSocSolver bnb;
  auto bnb_solution = bnb.Solve(log, t, m);
  ASSERT_TRUE(bnb_solution.ok());
  EXPECT_EQ(bnb_solution->satisfied_queries, optimum);

  IlpSocSolver ilp;
  auto ilp_solution = ilp.Solve(log, t, m);
  ASSERT_TRUE(ilp_solution.ok());
  EXPECT_EQ(ilp_solution->satisfied_queries, optimum);

  MfiSocSolver mfi;
  auto mfi_solution = mfi.Solve(log, t, m);
  ASSERT_TRUE(mfi_solution.ok());
  EXPECT_EQ(mfi_solution->satisfied_queries, optimum);

  // Layer 2: weighted pipeline on the same instance.
  const WeightedSocInstance weighted = WeightedSocInstance::FromLog(log);
  auto weighted_solution = SolveWeightedBnb(weighted, t, m);
  ASSERT_TRUE(weighted_solution.ok());
  EXPECT_EQ(weighted_solution->satisfied_weight, optimum);

  // Layer 3: the domination adapter run with the log's queries as a
  // database must agree (the two objectives coincide by construction).
  BooleanTable as_database(log.schema());
  for (const DynamicBitset& q : log.queries()) as_database.AddRow(q);
  auto dominated = SolveSocCbD(brute, as_database, t, m);
  ASSERT_TRUE(dominated.ok());
  EXPECT_EQ(dominated->satisfied_queries, optimum);

  // Layer 4: attribute analysis must bracket the optimum.
  if (m >= 1 && t.Any()) {
    auto values = AnalyzeAttributeValues(bnb, log, t, m);
    ASSERT_TRUE(values.ok());
    int best_forced = 0;
    for (const AttributeValue& value : *values) {
      EXPECT_LE(value.forced_in, optimum);
      EXPECT_LE(value.forced_out, optimum);
      best_forced = std::max({best_forced, value.forced_in,
                              value.forced_out});
    }
    if (!values->empty()) {
      EXPECT_EQ(best_forced, optimum);
    }
  }

  // Layer 5: per-attribute variant is consistent with a manual sweep.
  if (t.Any()) {
    auto per_attr = SolvePerAttribute(bnb, log, t);
    ASSERT_TRUE(per_attr.ok());
    for (int budget = 1; budget <= static_cast<int>(t.Count()); ++budget) {
      auto at_budget = brute.Solve(log, t, budget);
      ASSERT_TRUE(at_budget.ok());
      EXPECT_GE(per_attr->ratio + 1e-9,
                static_cast<double>(at_budget->satisfied_queries) / budget);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SoakTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace soc
