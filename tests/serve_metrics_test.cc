#include "serve/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace soc::serve {
namespace {

TEST(ServeMetricsTest, CountersStartAtZeroAndAccumulate) {
  ServeMetrics metrics;
  EXPECT_EQ(metrics.Get("missing"), 0);
  metrics.Increment("a");
  metrics.Increment("a", 4);
  metrics.Increment("b");
  EXPECT_EQ(metrics.Get("a"), 5);
  EXPECT_EQ(metrics.Get("b"), 1);
}

TEST(ServeMetricsTest, SnapshotIsAConsistentCopy) {
  ServeMetrics metrics;
  metrics.Increment("requests", 3);
  metrics.RecordLatency("solve", 1.5);
  MetricsSnapshot snapshot = metrics.Snapshot();
  metrics.Increment("requests");  // Must not affect the snapshot.
  EXPECT_EQ(snapshot.counters.at("requests"), 3);
  EXPECT_EQ(snapshot.histograms.at("solve").count, 1);
}

TEST(ServeMetricsTest, HistogramBucketsAndStats) {
  ServeMetrics metrics;
  metrics.RecordLatency("h", 0.01);    // First bucket (<= 0.05).
  metrics.RecordLatency("h", 3.0);     // <= 5 bucket.
  metrics.RecordLatency("h", 9000.0);  // Overflow bucket.
  const HistogramData h = metrics.Snapshot().histograms.at("h");
  EXPECT_EQ(h.count, 3);
  EXPECT_DOUBLE_EQ(h.sum_ms, 9003.01);
  EXPECT_DOUBLE_EQ(h.max_ms, 9000.0);
  EXPECT_EQ(h.buckets[0], 1);
  EXPECT_EQ(h.buckets[kLatencyBucketCount - 1], 1);
}

TEST(ServeMetricsTest, QuantileUpperBound) {
  HistogramData h;
  EXPECT_DOUBLE_EQ(h.QuantileUpperBound(0.5), 0);  // Empty.
  ServeMetrics metrics;
  for (int i = 0; i < 99; ++i) metrics.RecordLatency("h", 0.2);  // <= 0.25.
  metrics.RecordLatency("h", 40.0);                              // <= 50.
  const HistogramData recorded = metrics.Snapshot().histograms.at("h");
  EXPECT_DOUBLE_EQ(recorded.QuantileUpperBound(0.5), 0.25);
  EXPECT_DOUBLE_EQ(recorded.QuantileUpperBound(0.995), 50);
}

TEST(ServeMetricsTest, JsonShapes) {
  ServeMetrics metrics;
  metrics.Increment("done", 2);
  metrics.RecordLatency("solve", 0.2);
  const std::string json = metrics.Snapshot().ToJson().ToString();
  EXPECT_NE(json.find("\"counters\":{\"done\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{\"solve\":"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(ServeMetricsTest, ConcurrentIncrementsAreNotLost) {
  ServeMetrics metrics;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&metrics] {
      for (int j = 0; j < kPerThread; ++j) {
        metrics.Increment("hits");
        metrics.RecordLatency("lat", 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(metrics.Get("hits"), kThreads * kPerThread);
  EXPECT_EQ(metrics.Snapshot().histograms.at("lat").count,
            kThreads * kPerThread);
}

}  // namespace
}  // namespace soc::serve
