#include "serve/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace soc::serve {
namespace {

TEST(ServeMetricsTest, CountersStartAtZeroAndAccumulate) {
  ServeMetrics metrics;
  EXPECT_EQ(metrics.Get("missing"), 0);
  metrics.Increment("a");
  metrics.Increment("a", 4);
  metrics.Increment("b");
  EXPECT_EQ(metrics.Get("a"), 5);
  EXPECT_EQ(metrics.Get("b"), 1);
}

TEST(ServeMetricsTest, SnapshotIsAConsistentCopy) {
  ServeMetrics metrics;
  metrics.Increment("requests", 3);
  metrics.RecordLatency("solve", 1.5);
  MetricsSnapshot snapshot = metrics.Snapshot();
  metrics.Increment("requests");  // Must not affect the snapshot.
  EXPECT_EQ(snapshot.counters.at("requests"), 3);
  EXPECT_EQ(snapshot.histograms.at("solve").count, 1);
}

TEST(ServeMetricsTest, HistogramBucketsAndStats) {
  ServeMetrics metrics;
  metrics.RecordLatency("h", 0.01);    // First bucket (<= 0.05).
  metrics.RecordLatency("h", 3.0);     // <= 5 bucket.
  metrics.RecordLatency("h", 9000.0);  // Overflow bucket.
  const HistogramData h = metrics.Snapshot().histograms.at("h");
  EXPECT_EQ(h.count, 3);
  EXPECT_DOUBLE_EQ(h.sum_ms, 9003.01);
  EXPECT_DOUBLE_EQ(h.max_ms, 9000.0);
  EXPECT_EQ(h.buckets[0], 1);
  EXPECT_EQ(h.buckets[kLatencyBucketCount - 1], 1);
}

TEST(ServeMetricsTest, QuantileInterpolates) {
  HistogramData h;
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0);  // Empty.
  ServeMetrics metrics;
  for (int i = 0; i < 99; ++i) metrics.RecordLatency("h", 0.2);  // <= 0.25.
  metrics.RecordLatency("h", 40.0);                              // <= 50.
  const HistogramData recorded = metrics.Snapshot().histograms.at("h");
  // p50: rank 50 of 99 observations in the (0.1, 0.25] bucket.
  EXPECT_DOUBLE_EQ(recorded.Quantile(0.5), 0.1 + (50.0 / 99.0) * 0.15);
  // p99.5: rank 99.5 lands halfway into the single-entry (25, 50] bucket.
  EXPECT_DOUBLE_EQ(recorded.Quantile(0.995), 37.5);
  // The top of the distribution clamps to the observed maximum, never the
  // open bucket bound.
  EXPECT_DOUBLE_EQ(recorded.Quantile(1.0), 40.0);
}

TEST(ServeMetricsTest, QuantilesAreMonotonicAndBoundedByMax) {
  ServeMetrics metrics;
  for (int i = 1; i <= 1000; ++i) {
    metrics.RecordLatency("h", 0.01 * static_cast<double>(i));
  }
  const HistogramData h = metrics.Snapshot().histograms.at("h");
  const double p50 = h.Quantile(0.50);
  const double p95 = h.Quantile(0.95);
  const double p99 = h.Quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max_ms);
}

TEST(ServeMetricsTest, QuantileOfEmptyHistogramIsZeroAtEveryQ) {
  const HistogramData h;
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 0.0) << q;
  }
}

TEST(ServeMetricsTest, QuantileOfSingleSampleInterpolatesItsBucket) {
  ServeMetrics metrics;
  metrics.RecordLatency("h", 1.0);  // The (0.5, 1] bucket, exactly at max.
  const HistogramData h = metrics.Snapshot().histograms.at("h");
  ASSERT_EQ(h.count, 1);
  // q=0 sits at the bucket's lower bound, q=1 at the observed value, and
  // the midpoint interpolates between them.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.75);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1.0);
}

TEST(ServeMetricsTest, QuantileOfSingleTinySampleClampsToObservedMax) {
  ServeMetrics metrics;
  metrics.RecordLatency("h", 0.01);  // First bucket, far below its bound.
  const HistogramData h = metrics.Snapshot().histograms.at("h");
  // Interpolation toward the 0.05 bound must clamp at the real maximum.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.01);
  EXPECT_LE(h.Quantile(0.9), 0.05);
}

TEST(ServeMetricsTest, QuantileOfAllEqualSamplesStaysInOneBucket) {
  ServeMetrics metrics;
  for (int i = 0; i < 100; ++i) metrics.RecordLatency("h", 2.0);
  const HistogramData h = metrics.Snapshot().histograms.at("h");
  ASSERT_EQ(h.count, 100);
  // All mass is in the (1, 2.5] bucket: p50 interpolates halfway to the
  // bound, while the upper quantiles clamp at the observed 2.0.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.75);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.0);
  // Monotone across the whole range even with a degenerate distribution.
  double previous = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double value = h.Quantile(q);
    EXPECT_GE(value, previous) << q;
    previous = value;
  }
}

TEST(ServeMetricsTest, QuantileClampsOutOfRangeQ) {
  ServeMetrics metrics;
  metrics.RecordLatency("h", 2.0);
  const HistogramData h = metrics.Snapshot().histograms.at("h");
  EXPECT_DOUBLE_EQ(h.Quantile(-3.0), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(7.0), h.Quantile(1.0));
}

TEST(ServeMetricsTest, GaugesOverwriteAndSnapshot) {
  ServeMetrics metrics;
  metrics.SetGauge("queue_depth", 3.0);
  metrics.SetGauge("queue_depth", 1.0);  // Gauges move both directions.
  metrics.SetGauge("cache_bytes", 4096.0);
  const MetricsSnapshot snapshot = metrics.Snapshot();
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("queue_depth"), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("cache_bytes"), 4096.0);
  const std::string json = snapshot.ToJson().ToString();
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"queue_depth\":1"), std::string::npos);
}

TEST(ServeMetricsTest, JsonShapes) {
  ServeMetrics metrics;
  metrics.Increment("done", 2);
  metrics.RecordLatency("solve", 0.2);
  const std::string json = metrics.Snapshot().ToJson().ToString();
  EXPECT_NE(json.find("\"counters\":{\"done\":2}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{\"solve\":"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(ServeMetricsTest, ConcurrentIncrementsAreNotLost) {
  ServeMetrics metrics;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&metrics] {
      for (int j = 0; j < kPerThread; ++j) {
        metrics.Increment("hits");
        metrics.RecordLatency("lat", 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(metrics.Get("hits"), kThreads * kPerThread);
  EXPECT_EQ(metrics.Snapshot().histograms.at("lat").count,
            kThreads * kPerThread);
}

TEST(ServeMetricsTest, TenantLabelLruFoldsColdestIntoOther) {
  ServeMetrics metrics;
  metrics.set_tenant_label_capacity(2);
  metrics.Increment("tenant.a.completed", 3);
  metrics.Increment("tenant.b.completed", 5);
  // Touch `a` so `b` is now the coldest label.
  metrics.Increment("tenant.a.shed", 1);
  // A third distinct label evicts `b` into `other`.
  metrics.Increment("tenant.c.completed", 7);

  EXPECT_EQ(metrics.Get("tenant.a.completed"), 3);
  EXPECT_EQ(metrics.Get("tenant.a.shed"), 1);
  EXPECT_EQ(metrics.Get("tenant.b.completed"), 0);
  EXPECT_EQ(metrics.Get("tenant.other.completed"), 5);
  EXPECT_EQ(metrics.Get("tenant.c.completed"), 7);
}

TEST(ServeMetricsTest, TenantFoldingPreservesSums) {
  ServeMetrics metrics;
  metrics.set_tenant_label_capacity(2);
  constexpr int kTenants = 20;
  for (int i = 0; i < kTenants; ++i) {
    metrics.Increment("tenant.t" + std::to_string(i) + ".completed", i + 1);
  }
  // However labels folded, the total over all tenant counters is exact.
  std::int64_t total = 0;
  int live_labels = 0;
  for (const auto& [name, value] : metrics.Snapshot().counters) {
    if (name.rfind("tenant.", 0) == 0) {
      total += value;
      if (name.find(".other.") == std::string::npos) ++live_labels;
    }
  }
  EXPECT_EQ(total, kTenants * (kTenants + 1) / 2);
  EXPECT_LE(live_labels, 2);
}

TEST(ServeMetricsTest, OtherBucketIsNeverEvicted) {
  ServeMetrics metrics;
  metrics.set_tenant_label_capacity(1);
  metrics.Increment("tenant.a.completed", 2);
  metrics.Increment("tenant.b.completed", 3);  // Folds a -> other.
  EXPECT_EQ(metrics.Get("tenant.other.completed"), 2);
  // Many more distinct labels; `other` only ever grows.
  for (int i = 0; i < 10; ++i) {
    metrics.Increment("tenant.x" + std::to_string(i) + ".completed", 1);
  }
  EXPECT_GE(metrics.Get("tenant.other.completed"), 2);
  std::int64_t total = 0;
  for (const auto& [name, value] : metrics.Snapshot().counters) {
    if (name.rfind("tenant.", 0) == 0) total += value;
  }
  EXPECT_EQ(total, 2 + 3 + 10);
}

TEST(ServeMetricsTest, NonTenantCountersBypassTheLru) {
  ServeMetrics metrics;
  metrics.set_tenant_label_capacity(1);
  for (int i = 0; i < 50; ++i) {
    metrics.Increment("solver.S" + std::to_string(i) + ".completed");
  }
  // No folding outside the tenant.* namespace.
  EXPECT_EQ(metrics.Get("solver.S49.completed"), 1);
  EXPECT_EQ(metrics.Get("tenant.other.completed"), 0);
}

}  // namespace
}  // namespace soc::serve
