#include "lp/lp_writer.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/ilp_solver.h"
#include "paper_example.h"

namespace soc::lp {
namespace {

LinearModel SmallModel() {
  LinearModel model(ObjectiveSense::kMaximize);
  model.AddVariable("alpha", 0, 1, 3, /*is_integer=*/true);
  model.AddVariable("beta", -2, kInfinity, -1.5);
  const int row = model.AddConstraint("cap", ConstraintSense::kLessEqual, 4);
  model.AddTerm(row, 0, 2);
  model.AddTerm(row, 1, 1);
  const int eq = model.AddConstraint("fix", ConstraintSense::kEqual, 1);
  model.AddTerm(eq, 0, 1);
  return model;
}

TEST(LpWriterTest, ContainsAllSections) {
  const std::string text = WriteLpFormat(SmallModel());
  EXPECT_NE(text.find("Maximize"), std::string::npos);
  EXPECT_NE(text.find("Subject To"), std::string::npos);
  EXPECT_NE(text.find("Bounds"), std::string::npos);
  EXPECT_NE(text.find("General"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
}

TEST(LpWriterTest, ObjectiveAndRows) {
  const std::string text = WriteLpFormat(SmallModel());
  EXPECT_NE(text.find("3 alpha"), std::string::npos);
  EXPECT_NE(text.find("- 1.5 beta"), std::string::npos);
  EXPECT_NE(text.find("cap: 2 alpha + beta <= 4"), std::string::npos);
  EXPECT_NE(text.find("fix: alpha = 1"), std::string::npos);
}

TEST(LpWriterTest, BoundsSection) {
  const std::string text = WriteLpFormat(SmallModel());
  // alpha in [0,1] (non-default), beta in [-2, +inf).
  EXPECT_NE(text.find("0 <= alpha <= 1"), std::string::npos);
  EXPECT_NE(text.find("-2 <= beta <= +inf"), std::string::npos);
}

TEST(LpWriterTest, FixedVariableRendersAsEquality) {
  LinearModel model(ObjectiveSense::kMinimize);
  model.AddVariable("pinned", 2, 2, 1);
  const std::string text = WriteLpFormat(model);
  EXPECT_NE(text.find("pinned = 2"), std::string::npos);
  EXPECT_NE(text.find("Minimize"), std::string::npos);
}

TEST(LpWriterTest, SanitizesHostileNames) {
  LinearModel model(ObjectiveSense::kMaximize);
  model.AddVariable("x[1]/weird name", 0, 1, 1);
  model.AddVariable("2starts_with_digit", 0, 1, 1);
  const std::string text = WriteLpFormat(model);
  EXPECT_EQ(text.find('['), std::string::npos);
  EXPECT_EQ(text.find(' '), text.find(' '));  // Trivially true; names below:
  EXPECT_NE(text.find("x_1__weird_name"), std::string::npos);
  EXPECT_NE(text.find("x1_2starts_with_digit"), std::string::npos);
}

TEST(LpWriterTest, SocModelRoundTripThroughFile) {
  const SocIlpModel soc_model = BuildConjunctiveSocModel(
      testdata::PaperQueryLog(), testdata::PaperNewTuple(), 3);
  const std::string path = ::testing::TempDir() + "/soc_model.lp";
  ASSERT_TRUE(WriteLpFile(soc_model.model, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_GT(std::ftell(f), 100);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(LpWriterTest, EmptyObjectiveStillValid) {
  LinearModel model(ObjectiveSense::kMaximize);
  model.AddVariable("x", 0, 1, 0);  // Zero objective coefficient.
  const std::string text = WriteLpFormat(model);
  EXPECT_NE(text.find("obj: 0"), std::string::npos);
}

}  // namespace
}  // namespace soc::lp
