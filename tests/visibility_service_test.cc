// Concurrency and admission-control tests for the serving layer. The
// load-shedding contract under test: a request the service rejects (for
// any reason) resolves with a non-OK typed Status and never carries a
// solution, and a request that runs out of deadline degrades — it never
// silently returns a full exact answer it did not compute.

#include "serve/visibility_service.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/workload.h"
#include "kernels/arena.h"
#include "obs/event_log.h"
#include "obs/slo.h"
#include "obs/trace_recorder.h"
#include "obs/wide_event.h"
#include "serve/batch_engine.h"

namespace soc::serve {
namespace {

QueryLog MakeLog(int num_attributes = 12, int num_queries = 120,
                 unsigned seed = 11) {
  const AttributeSchema schema = AttributeSchema::Anonymous(num_attributes);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = num_queries;
  wl.seed = seed;
  return datagen::MakeSyntheticWorkload(schema, wl);
}

DynamicBitset MakeTuple(int width, unsigned bits) {
  DynamicBitset tuple(width);
  for (int a = 0; a < width; ++a) {
    if (bits & (1u << a)) tuple.Set(a);
  }
  return tuple;
}

SolveRequest MakeRequest(const QueryLog& log, unsigned bits, int m,
                         const std::string& solver = "Fallback") {
  SolveRequest request;
  request.tuple = MakeTuple(log.num_attributes(), bits);
  request.m = m;
  request.solver = solver;
  return request;
}

TEST(VisibilityServiceTest, SolvesASingleRequest) {
  VisibilityService service(MakeLog());
  SolveRequest request = MakeRequest(service.log(), 0xEDBu, 3,
                                     "BranchAndBound");
  request.id = "one";
  SolveResponse response = service.Submit(std::move(request)).get();
  EXPECT_EQ(response.id, "one");
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.solution.proved_optimal);
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(static_cast<int>(response.solution.selected.Count()), 3);
}

TEST(VisibilityServiceTest, ValidationRejectionsAreTyped) {
  VisibilityService service(MakeLog());

  SolveRequest narrow;
  narrow.tuple = DynamicBitset(3);
  narrow.m = 1;
  EXPECT_EQ(service.Submit(std::move(narrow)).get().status.code(),
            StatusCode::kInvalidArgument);

  SolveRequest negative_m = MakeRequest(service.log(), 0x3u, 1);
  negative_m.m = -1;
  EXPECT_EQ(service.Submit(std::move(negative_m)).get().status.code(),
            StatusCode::kInvalidArgument);

  SolveRequest unknown = MakeRequest(service.log(), 0x3u, 1, "NoSuchSolver");
  EXPECT_EQ(service.Submit(std::move(unknown)).get().status.code(),
            StatusCode::kNotFound);

  EXPECT_EQ(service.Metrics().counters.at("rejected_invalid"), 3);
}

TEST(VisibilityServiceTest, TinyQueueShedsLoadWithOverloaded) {
  VisibilityServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  VisibilityService service(MakeLog(), options);

  // Enough simultaneous exact solves that the single-slot queue must shed
  // some; every shed request must carry kOverloaded and no solution.
  std::vector<std::future<SolveResponse>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(service.Submit(
        MakeRequest(service.log(), 0xFFFu, 4, "BranchAndBound")));
  }
  int overloaded = 0;
  for (auto& future : futures) {
    SolveResponse response = future.get();
    if (!response.status.ok()) {
      EXPECT_EQ(response.status.code(), StatusCode::kOverloaded);
      EXPECT_EQ(response.solution.selected.Count(), 0u);
      ++overloaded;
    }
  }
  EXPECT_GT(overloaded, 0);
  EXPECT_EQ(service.Metrics().counters.at("rejected_queue_full"), overloaded);
}

TEST(VisibilityServiceTest, ExpiredDeadlineDegradesToFallbackByDefault) {
  VisibilityService service(MakeLog());
  SolveRequest request = MakeRequest(service.log(), 0xFFFu, 4, "BruteForce");
  request.deadline_ms = 1e-6;  // Expired before any worker can pick it up.
  SolveResponse response = service.Submit(std::move(request)).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.solver, "Fallback");
  EXPECT_TRUE(response.degraded);
  EXPECT_FALSE(response.solution.proved_optimal);
  EXPECT_EQ(response.stop_reason, StopReason::kDeadline);
  // Degraded, but still a valid m-attribute selection.
  EXPECT_EQ(static_cast<int>(response.solution.selected.Count()), 4);
}

TEST(VisibilityServiceTest, RejectExpiredPolicyRefusesLateWork) {
  VisibilityServiceOptions options;
  options.reject_expired = true;
  // Predictive shedding would catch the doomed deadline at admission;
  // this test pins the at-pickup expiry rejection specifically.
  options.predictive_shedding = false;
  VisibilityService service(MakeLog(), options);
  SolveRequest request = MakeRequest(service.log(), 0xFFFu, 4, "BruteForce");
  request.deadline_ms = 1e-6;
  SolveResponse response = service.Submit(std::move(request)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(response.solution.selected.Count(), 0u);
  EXPECT_EQ(service.Metrics().counters.at("rejected_expired"), 1);
}

TEST(VisibilityServiceTest, ZeroVisibilityTupleTakesTheFastPath) {
  // An empty tuple satisfies no query: the bitmap index answers without
  // dispatching a solver.
  VisibilityService service(MakeLog());
  SolveResponse response =
      service.Submit(MakeRequest(service.log(), 0u, 3, "BruteForce")).get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.fast_path);
  EXPECT_TRUE(response.solution.proved_optimal);
  EXPECT_EQ(response.solution.satisfied_queries, 0);
  EXPECT_EQ(service.Metrics().counters.at("fast_path_zero"), 1);
}

TEST(VisibilityServiceTest, SteadyStateServingCreatesNoArenaBlocks) {
  // The per-request fast-path bound (MaxSatisfiable) and the kernel-backed
  // solvers draw scratch from thread-local arenas. A warmup batch may grow
  // those arenas; after that, serving must not allocate new arena blocks —
  // this pins the removal of the per-request DynamicBitset copy from the
  // preprocessing cache. One worker keeps the thread set deterministic.
  VisibilityServiceOptions options;
  options.num_workers = 1;
  VisibilityService service(MakeLog(), options);

  const auto run_batch = [&service] {
    std::vector<std::future<SolveResponse>> futures;
    for (unsigned bits : {0xEDBu, 0x3Fu, 0xA5Au, 0xFFFu}) {
      futures.push_back(service.Submit(MakeRequest(service.log(), bits, 3)));
    }
    for (auto& future : futures) {
      ASSERT_TRUE(future.get().status.ok());
    }
  };

  run_batch();  // Warmup: builds bitmaps, grows scratch arenas once.
  const std::uint64_t blocks_after_warmup = kernels::Arena::TotalBlocksCreated();
  run_batch();
  run_batch();
  EXPECT_EQ(kernels::Arena::TotalBlocksCreated(), blocks_after_warmup);
}

TEST(VisibilityServiceTest, SharedMfiCacheHitsAcrossRequests) {
  VisibilityService service(MakeLog());
  // Same tuple solved repeatedly: the first request mines, the rest hit.
  std::vector<std::future<SolveResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.Submit(
        MakeRequest(service.log(), 0xABCu, 3, "MaxFreqItemSets")));
  }
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_GT(metrics.counters.at("mfi_cache.hits"), 0);
  EXPECT_GT(metrics.counters.at("mfi_cache.misses"), 0);
}

TEST(VisibilityServiceTest, ConcurrencySmoke) {
  // Many producers, mixed deadlines and solvers, a bounded queue: every
  // future resolves, every non-OK response is typed and solution-free,
  // every OK response either completed cleanly or is marked degraded.
  VisibilityServiceOptions options;
  options.num_workers = 4;
  options.max_queue = 64;
  // Keep the cost model out of this test: predictive shedding would turn
  // the expired third into admission-time sheds, and the point here is
  // the late-pickup degrade contract.
  options.predictive_shedding = false;
  VisibilityService service(MakeLog(), options);

  constexpr int kProducers = 6;
  constexpr int kPerProducer = 40;
  std::vector<std::vector<std::future<SolveResponse>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const char* solvers[] = {"Fallback", "BranchAndBound",
                               "MaxFreqItemSets", "ConsumeAttrCumul"};
      for (int i = 0; i < kPerProducer; ++i) {
        SolveRequest request = MakeRequest(
            service.log(), 0x100u + (p * kPerProducer + i) % 0xEFF,
            1 + i % 5, solvers[(p + i) % 4]);
        // Mix: no deadline / generous / already expired.
        if (i % 3 == 1) request.deadline_ms = 200;
        if (i % 3 == 2) request.deadline_ms = 1e-6;
        futures[p].push_back(service.Submit(std::move(request)));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  int ok = 0, rejected = 0, degraded = 0;
  for (auto& producer_futures : futures) {
    for (auto& future : producer_futures) {
      SolveResponse response = future.get();
      if (!response.status.ok()) {
        // A rejected request must never carry (any part of) a solution.
        EXPECT_TRUE(response.status.code() == StatusCode::kOverloaded ||
                    response.status.code() == StatusCode::kInvalidArgument)
            << response.status.ToString();
        EXPECT_EQ(response.solution.selected.Count(), 0u);
        EXPECT_EQ(response.solution.satisfied_queries, 0);
        EXPECT_FALSE(response.solution.proved_optimal);
        ++rejected;
        continue;
      }
      ++ok;
      if (response.degraded) {
        ++degraded;
        // Degraded results renounce optimality.
        EXPECT_FALSE(response.solution.proved_optimal);
        EXPECT_NE(response.stop_reason, StopReason::kNone);
      }
      EXPECT_LE(
          static_cast<int>(response.solution.selected.Count()),
          service.log().num_attributes());
    }
  }
  EXPECT_EQ(ok + rejected, kProducers * kPerProducer);
  EXPECT_GT(ok, 0);
  EXPECT_GT(degraded, 0);  // The expired third must not be silently exact.

  const MetricsSnapshot metrics = service.Metrics();
  const auto counter = [&metrics](const std::string& name) -> std::int64_t {
    const auto it = metrics.counters.find(name);
    return it == metrics.counters.end() ? 0 : it->second;
  };
  EXPECT_EQ(counter("submitted"), kProducers * kPerProducer);
  EXPECT_EQ(counter("completed") + counter("solve_errors"), ok);
  EXPECT_EQ(metrics.histograms.at("total").count, ok);
}

TEST(VisibilityServiceTest, PredictiveSheddingShedsDoomedRequests) {
  VisibilityServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 0;  // Unbounded: only the cost model may shed.
  options.worker_hook = [](const WorkerHookContext&) {
    // Inflate every solve to ~2ms so the EWMA learns a real cost.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return Status::OK();
  };
  VisibilityService service(MakeLog(), options);

  // Warm the cost model past its blend window with observed samples.
  for (int i = 0; i < 10; ++i) {
    service.Submit(MakeRequest(service.log(), 0x2ABu, 2)).get();
  }

  // Burst far more work than a 15ms deadline can absorb on one worker:
  // the backlog prediction must shed most of it at admission instead of
  // letting it expire in the queue.
  std::vector<std::future<SolveResponse>> futures;
  for (int i = 0; i < 64; ++i) {
    SolveRequest request = MakeRequest(service.log(), 0x2ABu, 2);
    request.deadline_ms = 15;
    futures.push_back(service.Submit(std::move(request)));
  }
  int shed = 0;
  for (auto& future : futures) {
    SolveResponse response = future.get();
    if (response.status.ok()) continue;
    EXPECT_EQ(response.status.code(), StatusCode::kOverloaded);
    EXPECT_EQ(response.shed_reason, kShedReasonPredicted);
    EXPECT_GE(response.retry_after_ms, 1.0);  // Backlog-sized hint.
    EXPECT_EQ(response.solution.selected.Count(), 0u);
    ++shed;
  }
  EXPECT_GT(shed, 0);
  EXPECT_EQ(service.Metrics().counters.at("shed_predicted"), shed);
}

TEST(VisibilityServiceTest, BreakerTripsFaultyTierToFallback) {
  VisibilityServiceOptions options;
  options.num_workers = 1;
  options.breaker.failure_threshold = 2;
  options.breaker.open_ms = 60000;  // Stay open for the whole test.
  options.worker_hook = [](const WorkerHookContext& hook) {
    // The hook keys on the *effective* solver, so the Fallback reruns of
    // rerouted requests are healthy.
    if (hook.solver == "ILP") return InternalError("injected ILP fault");
    return Status::OK();
  };
  VisibilityService service(MakeLog(), options);

  for (int i = 0; i < 2; ++i) {
    SolveResponse response =
        service.Submit(MakeRequest(service.log(), 0x3CDu, 3, "ILP")).get();
    EXPECT_EQ(response.status.code(), StatusCode::kInternal);
    EXPECT_EQ(response.solution.selected.Count(), 0u);
  }
  // The threshold is reached: the breaker must now route ILP requests to
  // Fallback without touching the sick tier, and they succeed.
  SolveResponse rerouted =
      service.Submit(MakeRequest(service.log(), 0x3CDu, 3, "ILP")).get();
  ASSERT_TRUE(rerouted.status.ok()) << rerouted.status.ToString();
  EXPECT_EQ(rerouted.solver, "Fallback");

  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_EQ(metrics.counters.at("breaker_rerouted"), 1);
  EXPECT_EQ(metrics.counters.at("breaker.ILP.trips"), 1);
  EXPECT_EQ(metrics.counters.at("solver.ILP.errors"), 2);
  EXPECT_EQ(metrics.counters.at("solve_errors"), 2);
  EXPECT_EQ(metrics.gauges.at("breaker.ILP.state"), 1.0);  // Open.
  EXPECT_EQ(metrics.gauges.at("breaker.Fallback.state"), 0.0);
}

TEST(VisibilityServiceTest, WatchdogCancelsStuckWorker) {
  VisibilityServiceOptions options;
  options.num_workers = 1;
  options.watchdog.wall_multiple = 0.1;  // Deadline 50ms -> wall 5ms.
  options.watchdog.min_wall_ms = 5;
  options.watchdog.scan_interval_ms = 1;
  std::atomic<bool> observed_cancel{false};
  options.worker_hook = [&observed_cancel](const WorkerHookContext& hook) {
    // Wedge well past the wall budget, then report whether the watchdog
    // flipped this solve's cancel flag.
    for (int i = 0; i < 200; ++i) {
      if (hook.watchdog_flag != nullptr && hook.watchdog_flag->load()) {
        observed_cancel.store(true);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::OK();
  };
  VisibilityService service(MakeLog(), options);

  SolveRequest request = MakeRequest(service.log(), 0x5A5u, 3, "BruteForce");
  request.deadline_ms = 50;
  SolveResponse response = service.Submit(std::move(request)).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(observed_cancel.load());
  // The flag reaches the solver through its SolveContext: the enumeration
  // notices at its next checkpoint and degrades with kCancelled.
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.stop_reason, StopReason::kCancelled);
  EXPECT_GE(service.Metrics().counters.at("watchdog_cancelled"), 1);
}

TEST(VisibilityServiceTest, DrainWaitsForAllAccepted) {
  VisibilityServiceOptions options;
  options.num_workers = 2;
  VisibilityService service(MakeLog(), options);
  std::vector<std::future<SolveResponse>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back(service.Submit(
        MakeRequest(service.log(), 0x7FFu, 3, "BranchAndBound")));
  }
  service.Drain();
  for (auto& future : futures) {
    // After Drain every future is immediately ready.
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(future.get().status.ok());
  }
}

TEST(VisibilityServiceTest, MetricsExposeLiveGaugesAndQuantiles) {
  VisibilityService service(MakeLog());
  BatchEngine engine(service);
  for (int i = 0; i < 12; ++i) {
    // MFI requests populate the shared preprocessing cache (gauges below).
    engine.Submit(MakeRequest(service.log(), 0xA5Du >> (i % 3), 2 + i % 3,
                              "MaxFreqItemSets"));
  }
  engine.Drain();

  // Drain resolves on promise delivery, which precedes the worker's final
  // bookkeeping by a hair — poll the point-in-time gauges to quiescence.
  MetricsSnapshot metrics = service.Metrics();
  while (metrics.gauges.at("inflight") > 0 ||
         metrics.gauges.at("busy_workers") > 0) {
    std::this_thread::yield();
    metrics = service.Metrics();
  }
  EXPECT_EQ(metrics.gauges.at("queue_depth"), 0.0);
  EXPECT_GE(metrics.gauges.at("mfi_cache.entries"), 1.0);
  EXPECT_GT(metrics.gauges.at("mfi_cache.approx_bytes"), 0.0);
  EXPECT_GE(metrics.gauges.at("pool.execute_ms_total"), 0.0);
  EXPECT_GE(metrics.gauges.at("pool.queue_wait_ms_total"), 0.0);

  // End-to-end latency quantiles are interpolated and ordered.
  const HistogramData& total = metrics.histograms.at("total");
  ASSERT_EQ(total.count, 12);
  EXPECT_LE(total.Quantile(0.50), total.Quantile(0.95));
  EXPECT_LE(total.Quantile(0.95), total.Quantile(0.99));
  EXPECT_LE(total.Quantile(0.99), total.max_ms);
}

TEST(VisibilityServiceTest, PerRequestSpansCoverTheRequestLifecycle) {
  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  VisibilityServiceOptions options;
  options.num_workers = 2;
  options.trace_recorder = &recorder;
  VisibilityService service(MakeLog(), options);
  BatchEngine engine(service);
  for (int i = 0; i < 8; ++i) {
    engine.Submit(MakeRequest(service.log(), 0x3B7u, 3, "MaxFreqItemSets"));
  }
  engine.Drain();

  // Every request's spans are recorded before its promise resolves, so
  // the trace is complete as soon as Drain returns.
  const std::string json = recorder.ToChromeTraceJson();
  for (const char* name :
       {"admission", "queue_wait", "request", "solve", "response"}) {
    const std::string needle = "\"name\":\"" + std::string(name) + "\"";
    int occurrences = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
      ++occurrences;
    }
    EXPECT_EQ(occurrences, 8) << name;
  }
  // Solver phases nest under "solve" (the MFI miner ran at least once).
  EXPECT_NE(json.find("\"name\":\"mining\""), std::string::npos);
  EXPECT_EQ(recorder.events_dropped(), 0);
}

TEST(BatchEngineTest, DrainPreservesSubmissionOrder) {
  VisibilityService service(MakeLog());
  BatchEngine engine(service);
  for (int i = 0; i < 20; ++i) {
    SolveRequest request = MakeRequest(service.log(), 0x155u << (i % 3),
                                       2 + i % 3);
    request.id = "r" + std::to_string(i);
    engine.Submit(std::move(request));
  }
  EXPECT_EQ(engine.pending(), 20u);
  const std::vector<SolveResponse> responses = engine.Drain();
  ASSERT_EQ(responses.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(responses[i].id, "r" + std::to_string(i));
  }
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(BatchEngineTest, RetriesRecoverShedRequests) {
  // A single-slot queue sheds most of a burst; Drain's retry rounds
  // resubmit against the by-then idle service, so every request lands.
  VisibilityServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  options.predictive_shedding = false;
  options.worker_hook = [](const WorkerHookContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return Status::OK();
  };
  VisibilityService service(MakeLog(), options);

  RetryOptions retry;
  retry.max_retries = 3;
  retry.initial_backoff_ms = 1;
  retry.budget_ratio = 1.0;
  retry.initial_budget = 64;  // Burst allowance covers the whole batch.
  BatchEngine engine(service, retry);
  for (int i = 0; i < 32; ++i) {
    engine.Submit(MakeRequest(service.log(), 0x6F3u, 3));
  }
  const std::vector<SolveResponse> responses = engine.Drain();
  ASSERT_EQ(responses.size(), 32u);
  for (const SolveResponse& response : responses) {
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
  const RetryStats& stats = engine.retry_stats();
  EXPECT_GT(stats.retries, 0);
  // Retries run one at a time against an idle service, so each recovers
  // on its first attempt.
  EXPECT_EQ(stats.recovered, stats.retries);
  EXPECT_EQ(stats.exhausted, 0);
  EXPECT_EQ(stats.budget_denied, 0);
}

TEST(BatchEngineTest, RetryBudgetBoundsAmplification) {
  VisibilityServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  options.predictive_shedding = false;
  options.worker_hook = [](const WorkerHookContext&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return Status::OK();
  };
  VisibilityService service(MakeLog(), options);

  RetryOptions retry;
  retry.max_retries = 2;
  retry.initial_backoff_ms = 1;
  retry.budget_ratio = 0;   // No earning: the burst allowance is all.
  retry.initial_budget = 2;
  BatchEngine engine(service, retry);
  for (int i = 0; i < 32; ++i) {
    engine.Submit(MakeRequest(service.log(), 0x6F3u, 3));
  }
  const std::vector<SolveResponse> responses = engine.Drain();

  // Exactly the budget's worth of retries ran; the rest surfaced their
  // original kOverloaded instead of amplifying the storm.
  const RetryStats& stats = engine.retry_stats();
  EXPECT_LE(stats.retries, 2);
  EXPECT_GT(stats.budget_denied, 0);
  EXPECT_EQ(engine.retry_tokens(), 0.0);
  int overloaded = 0;
  for (const SolveResponse& response : responses) {
    if (!response.status.ok()) {
      EXPECT_EQ(response.status.code(), StatusCode::kOverloaded);
      ++overloaded;
    }
  }
  EXPECT_GT(overloaded, 0);
}

TEST(VisibilityServiceTest, EmitsOneWideEventPerOutcomeAndFeedsTheSlo) {
  obs::EventLog event_log;
  event_log.set_enabled(true);
  obs::SloEngine slo_engine;

  QueryLog log = MakeLog();
  VisibilityServiceOptions options;
  options.num_workers = 2;
  options.event_log = &event_log;
  options.slo_engine = &slo_engine;
  VisibilityService service(log, options);

  SolveRequest ok_request = MakeRequest(service.log(), 0xEDBu, 3);
  ok_request.id = "good";
  SolveResponse ok_response = service.Submit(std::move(ok_request)).get();
  ASSERT_TRUE(ok_response.status.ok());

  SolveRequest invalid_request = MakeRequest(service.log(), 0xEDBu, -4);
  invalid_request.id = "hostile";
  SolveResponse invalid_response =
      service.Submit(std::move(invalid_request)).get();
  ASSERT_FALSE(invalid_response.status.ok());
  service.Drain();

  // One event per submitted request, each re-encoding through the
  // strict schema parser.
  std::vector<obs::WideEvent> events;
  event_log.Drain(&events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(event_log.events_dropped(), 0);
  for (const obs::WideEvent& event : events) {
    const std::string line = obs::WideEventToJsonLine(event);
    EXPECT_TRUE(obs::ParseWideEventLine(line).ok()) << line;
  }
  EXPECT_EQ(events[0].id, "good");
  EXPECT_EQ(events[0].outcome, "ok");
  EXPECT_GT(events[0].total_ms, 0);
  EXPECT_GT(events[0].satisfied, 0);
  EXPECT_EQ(events[1].id, "hostile");
  EXPECT_EQ(events[1].outcome, "invalid");
  EXPECT_EQ(events[1].m, -1);  // Negative budgets fold to the sentinel.

  // The SLO engine saw the good request under "default" (no tenant id)
  // and never saw the client error.
  const obs::SloReport report = slo_engine.Report();
  ASSERT_EQ(report.tenants.size(), 1u);
  EXPECT_EQ(report.tenants[0].first, "default");
  EXPECT_EQ(report.tenants[0].second.good, 1);
  EXPECT_EQ(report.tenants[0].second.bad, 0);
}

TEST(VisibilityServiceTest, DisabledEventLogCostsNothingAndRecordsNothing) {
  obs::EventLog event_log;  // Never enabled.
  QueryLog log = MakeLog();
  VisibilityServiceOptions options;
  options.event_log = &event_log;
  VisibilityService service(log, options);
  for (int i = 0; i < 4; ++i) {
    service.Submit(MakeRequest(service.log(), 0xEDBu, 3)).get();
  }
  service.Drain();
  EXPECT_EQ(event_log.events_recorded(), 0);
  EXPECT_EQ(event_log.events_dropped(), 0);
}

}  // namespace
}  // namespace soc::serve
