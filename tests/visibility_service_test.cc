// Concurrency and admission-control tests for the serving layer. The
// load-shedding contract under test: a request the service rejects (for
// any reason) resolves with a non-OK typed Status and never carries a
// solution, and a request that runs out of deadline degrades — it never
// silently returns a full exact answer it did not compute.

#include "serve/visibility_service.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/workload.h"
#include "obs/trace_recorder.h"
#include "serve/batch_engine.h"

namespace soc::serve {
namespace {

QueryLog MakeLog(int num_attributes = 12, int num_queries = 120,
                 unsigned seed = 11) {
  const AttributeSchema schema = AttributeSchema::Anonymous(num_attributes);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = num_queries;
  wl.seed = seed;
  return datagen::MakeSyntheticWorkload(schema, wl);
}

DynamicBitset MakeTuple(int width, unsigned bits) {
  DynamicBitset tuple(width);
  for (int a = 0; a < width; ++a) {
    if (bits & (1u << a)) tuple.Set(a);
  }
  return tuple;
}

SolveRequest MakeRequest(const QueryLog& log, unsigned bits, int m,
                         const std::string& solver = "Fallback") {
  SolveRequest request;
  request.tuple = MakeTuple(log.num_attributes(), bits);
  request.m = m;
  request.solver = solver;
  return request;
}

TEST(VisibilityServiceTest, SolvesASingleRequest) {
  VisibilityService service(MakeLog());
  SolveRequest request = MakeRequest(service.log(), 0xEDBu, 3,
                                     "BranchAndBound");
  request.id = "one";
  SolveResponse response = service.Submit(std::move(request)).get();
  EXPECT_EQ(response.id, "one");
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.solution.proved_optimal);
  EXPECT_FALSE(response.degraded);
  EXPECT_EQ(static_cast<int>(response.solution.selected.Count()), 3);
}

TEST(VisibilityServiceTest, ValidationRejectionsAreTyped) {
  VisibilityService service(MakeLog());

  SolveRequest narrow;
  narrow.tuple = DynamicBitset(3);
  narrow.m = 1;
  EXPECT_EQ(service.Submit(std::move(narrow)).get().status.code(),
            StatusCode::kInvalidArgument);

  SolveRequest negative_m = MakeRequest(service.log(), 0x3u, 1);
  negative_m.m = -1;
  EXPECT_EQ(service.Submit(std::move(negative_m)).get().status.code(),
            StatusCode::kInvalidArgument);

  SolveRequest unknown = MakeRequest(service.log(), 0x3u, 1, "NoSuchSolver");
  EXPECT_EQ(service.Submit(std::move(unknown)).get().status.code(),
            StatusCode::kNotFound);

  EXPECT_EQ(service.Metrics().counters.at("rejected_invalid"), 3);
}

TEST(VisibilityServiceTest, TinyQueueShedsLoadWithOverloaded) {
  VisibilityServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  VisibilityService service(MakeLog(), options);

  // Enough simultaneous exact solves that the single-slot queue must shed
  // some; every shed request must carry kOverloaded and no solution.
  std::vector<std::future<SolveResponse>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(service.Submit(
        MakeRequest(service.log(), 0xFFFu, 4, "BranchAndBound")));
  }
  int overloaded = 0;
  for (auto& future : futures) {
    SolveResponse response = future.get();
    if (!response.status.ok()) {
      EXPECT_EQ(response.status.code(), StatusCode::kOverloaded);
      EXPECT_EQ(response.solution.selected.Count(), 0u);
      ++overloaded;
    }
  }
  EXPECT_GT(overloaded, 0);
  EXPECT_EQ(service.Metrics().counters.at("rejected_queue_full"), overloaded);
}

TEST(VisibilityServiceTest, ExpiredDeadlineDegradesToFallbackByDefault) {
  VisibilityService service(MakeLog());
  SolveRequest request = MakeRequest(service.log(), 0xFFFu, 4, "BruteForce");
  request.deadline_ms = 1e-6;  // Expired before any worker can pick it up.
  SolveResponse response = service.Submit(std::move(request)).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.solver, "Fallback");
  EXPECT_TRUE(response.degraded);
  EXPECT_FALSE(response.solution.proved_optimal);
  EXPECT_EQ(response.stop_reason, StopReason::kDeadline);
  // Degraded, but still a valid m-attribute selection.
  EXPECT_EQ(static_cast<int>(response.solution.selected.Count()), 4);
}

TEST(VisibilityServiceTest, RejectExpiredPolicyRefusesLateWork) {
  VisibilityServiceOptions options;
  options.reject_expired = true;
  VisibilityService service(MakeLog(), options);
  SolveRequest request = MakeRequest(service.log(), 0xFFFu, 4, "BruteForce");
  request.deadline_ms = 1e-6;
  SolveResponse response = service.Submit(std::move(request)).get();
  EXPECT_EQ(response.status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(response.solution.selected.Count(), 0u);
  EXPECT_EQ(service.Metrics().counters.at("rejected_expired"), 1);
}

TEST(VisibilityServiceTest, ZeroVisibilityTupleTakesTheFastPath) {
  // An empty tuple satisfies no query: the bitmap index answers without
  // dispatching a solver.
  VisibilityService service(MakeLog());
  SolveResponse response =
      service.Submit(MakeRequest(service.log(), 0u, 3, "BruteForce")).get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.fast_path);
  EXPECT_TRUE(response.solution.proved_optimal);
  EXPECT_EQ(response.solution.satisfied_queries, 0);
  EXPECT_EQ(service.Metrics().counters.at("fast_path_zero"), 1);
}

TEST(VisibilityServiceTest, SharedMfiCacheHitsAcrossRequests) {
  VisibilityService service(MakeLog());
  // Same tuple solved repeatedly: the first request mines, the rest hit.
  std::vector<std::future<SolveResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(service.Submit(
        MakeRequest(service.log(), 0xABCu, 3, "MaxFreqItemSets")));
  }
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  const MetricsSnapshot metrics = service.Metrics();
  EXPECT_GT(metrics.counters.at("mfi_cache.hits"), 0);
  EXPECT_GT(metrics.counters.at("mfi_cache.misses"), 0);
}

TEST(VisibilityServiceTest, ConcurrencySmoke) {
  // Many producers, mixed deadlines and solvers, a bounded queue: every
  // future resolves, every non-OK response is typed and solution-free,
  // every OK response either completed cleanly or is marked degraded.
  VisibilityServiceOptions options;
  options.num_workers = 4;
  options.max_queue = 64;
  VisibilityService service(MakeLog(), options);

  constexpr int kProducers = 6;
  constexpr int kPerProducer = 40;
  std::vector<std::vector<std::future<SolveResponse>>> futures(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const char* solvers[] = {"Fallback", "BranchAndBound",
                               "MaxFreqItemSets", "ConsumeAttrCumul"};
      for (int i = 0; i < kPerProducer; ++i) {
        SolveRequest request = MakeRequest(
            service.log(), 0x100u + (p * kPerProducer + i) % 0xEFF,
            1 + i % 5, solvers[(p + i) % 4]);
        // Mix: no deadline / generous / already expired.
        if (i % 3 == 1) request.deadline_ms = 200;
        if (i % 3 == 2) request.deadline_ms = 1e-6;
        futures[p].push_back(service.Submit(std::move(request)));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  int ok = 0, rejected = 0, degraded = 0;
  for (auto& producer_futures : futures) {
    for (auto& future : producer_futures) {
      SolveResponse response = future.get();
      if (!response.status.ok()) {
        // A rejected request must never carry (any part of) a solution.
        EXPECT_TRUE(response.status.code() == StatusCode::kOverloaded ||
                    response.status.code() == StatusCode::kInvalidArgument)
            << response.status.ToString();
        EXPECT_EQ(response.solution.selected.Count(), 0u);
        EXPECT_EQ(response.solution.satisfied_queries, 0);
        EXPECT_FALSE(response.solution.proved_optimal);
        ++rejected;
        continue;
      }
      ++ok;
      if (response.degraded) {
        ++degraded;
        // Degraded results renounce optimality.
        EXPECT_FALSE(response.solution.proved_optimal);
        EXPECT_NE(response.stop_reason, StopReason::kNone);
      }
      EXPECT_LE(
          static_cast<int>(response.solution.selected.Count()),
          service.log().num_attributes());
    }
  }
  EXPECT_EQ(ok + rejected, kProducers * kPerProducer);
  EXPECT_GT(ok, 0);
  EXPECT_GT(degraded, 0);  // The expired third must not be silently exact.

  const MetricsSnapshot metrics = service.Metrics();
  const auto counter = [&metrics](const std::string& name) -> std::int64_t {
    const auto it = metrics.counters.find(name);
    return it == metrics.counters.end() ? 0 : it->second;
  };
  EXPECT_EQ(counter("submitted"), kProducers * kPerProducer);
  EXPECT_EQ(counter("completed") + counter("solve_errors"), ok);
  EXPECT_EQ(metrics.histograms.at("total").count, ok);
}

TEST(VisibilityServiceTest, DrainWaitsForAllAccepted) {
  VisibilityServiceOptions options;
  options.num_workers = 2;
  VisibilityService service(MakeLog(), options);
  std::vector<std::future<SolveResponse>> futures;
  for (int i = 0; i < 30; ++i) {
    futures.push_back(service.Submit(
        MakeRequest(service.log(), 0x7FFu, 3, "BranchAndBound")));
  }
  service.Drain();
  for (auto& future : futures) {
    // After Drain every future is immediately ready.
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(future.get().status.ok());
  }
}

TEST(VisibilityServiceTest, MetricsExposeLiveGaugesAndQuantiles) {
  VisibilityService service(MakeLog());
  BatchEngine engine(service);
  for (int i = 0; i < 12; ++i) {
    // MFI requests populate the shared preprocessing cache (gauges below).
    engine.Submit(MakeRequest(service.log(), 0xA5Du >> (i % 3), 2 + i % 3,
                              "MaxFreqItemSets"));
  }
  engine.Drain();

  // Drain resolves on promise delivery, which precedes the worker's final
  // bookkeeping by a hair — poll the point-in-time gauges to quiescence.
  MetricsSnapshot metrics = service.Metrics();
  while (metrics.gauges.at("inflight") > 0 ||
         metrics.gauges.at("busy_workers") > 0) {
    std::this_thread::yield();
    metrics = service.Metrics();
  }
  EXPECT_EQ(metrics.gauges.at("queue_depth"), 0.0);
  EXPECT_GE(metrics.gauges.at("mfi_cache.entries"), 1.0);
  EXPECT_GT(metrics.gauges.at("mfi_cache.approx_bytes"), 0.0);
  EXPECT_GE(metrics.gauges.at("pool.execute_ms_total"), 0.0);
  EXPECT_GE(metrics.gauges.at("pool.queue_wait_ms_total"), 0.0);

  // End-to-end latency quantiles are interpolated and ordered.
  const HistogramData& total = metrics.histograms.at("total");
  ASSERT_EQ(total.count, 12);
  EXPECT_LE(total.Quantile(0.50), total.Quantile(0.95));
  EXPECT_LE(total.Quantile(0.95), total.Quantile(0.99));
  EXPECT_LE(total.Quantile(0.99), total.max_ms);
}

TEST(VisibilityServiceTest, PerRequestSpansCoverTheRequestLifecycle) {
  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  VisibilityServiceOptions options;
  options.num_workers = 2;
  options.trace_recorder = &recorder;
  VisibilityService service(MakeLog(), options);
  BatchEngine engine(service);
  for (int i = 0; i < 8; ++i) {
    engine.Submit(MakeRequest(service.log(), 0x3B7u, 3, "MaxFreqItemSets"));
  }
  engine.Drain();

  // Every request's spans are recorded before its promise resolves, so
  // the trace is complete as soon as Drain returns.
  const std::string json = recorder.ToChromeTraceJson();
  for (const char* name :
       {"admission", "queue_wait", "request", "solve", "response"}) {
    const std::string needle = "\"name\":\"" + std::string(name) + "\"";
    int occurrences = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
      ++occurrences;
    }
    EXPECT_EQ(occurrences, 8) << name;
  }
  // Solver phases nest under "solve" (the MFI miner ran at least once).
  EXPECT_NE(json.find("\"name\":\"mining\""), std::string::npos);
  EXPECT_EQ(recorder.events_dropped(), 0);
}

TEST(BatchEngineTest, DrainPreservesSubmissionOrder) {
  VisibilityService service(MakeLog());
  BatchEngine engine(service);
  for (int i = 0; i < 20; ++i) {
    SolveRequest request = MakeRequest(service.log(), 0x155u << (i % 3),
                                       2 + i % 3);
    request.id = "r" + std::to_string(i);
    engine.Submit(std::move(request));
  }
  EXPECT_EQ(engine.pending(), 20u);
  const std::vector<SolveResponse> responses = engine.Drain();
  ASSERT_EQ(responses.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(responses[i].id, "r" + std::to_string(i));
  }
  EXPECT_EQ(engine.pending(), 0u);
}

}  // namespace
}  // namespace soc::serve
