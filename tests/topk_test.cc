#include "core/topk.h"

#include <gtest/gtest.h>

#include "common/combinatorics.h"
#include "common/random.h"
#include "core/brute_force.h"
#include "datagen/workload.h"
#include "paper_example.h"

namespace soc {
namespace {

// Exhaustive SOC-Topk reference: try every m-subset of t, score with the
// top-k evaluator directly (no reduction involved).
int BruteForceTopkOptimum(const BooleanTable& db, const GlobalScoring& scoring,
                          const QueryLog& log, const DynamicBitset& t, int m,
                          int k) {
  const std::vector<int> pool = t.SetBits();
  const int m_eff = std::min<int>(m, static_cast<int>(pool.size()));
  int best = 0;
  ForEachCombination(pool, m_eff, [&](const std::vector<int>& combo) {
    DynamicBitset candidate(log.num_attributes());
    for (int attr : combo) candidate.Set(attr);
    best = std::max(best, CountTopkSatisfied(db, scoring, log, candidate, k));
    return true;
  });
  return best;
}

TEST(TopkTest, RetrievalRequiresConjunctiveMatch) {
  const BooleanTable db = testdata::PaperDatabase();
  const GlobalScoring scoring = MakeAttributeCountScoring(db);
  const DynamicBitset q = DynamicBitset::FromString("100100");  // AC, PD.
  const DynamicBitset t_prime = DynamicBitset::FromString("110000");
  EXPECT_FALSE(TopkRetrieves(db, scoring, q, t_prime, /*k=*/10));
}

TEST(TopkTest, LargeKDegeneratesToConjunctive) {
  // With k >= |DB|+1 every matching tuple is in the top-k.
  const BooleanTable db = testdata::PaperDatabase();
  const QueryLog log = testdata::PaperQueryLog();
  const GlobalScoring scoring = MakeAttributeCountScoring(db);
  const DynamicBitset t = testdata::PaperNewTuple();
  const int k = db.num_rows() + 1;
  for (int m = 1; m <= 5; ++m) {
    BruteForceSolver base;
    auto topk = SolveTopk(base, db, scoring, log, t, m, k);
    auto plain = base.Solve(log, t, m);
    ASSERT_TRUE(topk.ok());
    ASSERT_TRUE(plain.ok());
    EXPECT_EQ(topk->satisfied_queries, plain->satisfied_queries) << m;
  }
}

TEST(TopkTest, SmallKFiltersCrowdedQueries) {
  // Query {FourDoor}: matched by 5 cars. With attribute-count scoring and
  // m=1 the compressed tuple scores 1, below all five (every matching car
  // has >= 2 attributes), so with k=3 the query is unwinnable.
  const BooleanTable db = testdata::PaperDatabase();
  QueryLog log(testdata::PaperSchema());
  log.AddQueryFromIndices({1});
  const GlobalScoring scoring = MakeAttributeCountScoring(db);
  const DynamicBitset t = testdata::PaperNewTuple();
  const QueryLog reduced =
      ReduceTopkToConjunctive(db, scoring, log, t, /*m_eff=*/1, /*k=*/3);
  EXPECT_EQ(reduced.size(), 0);
  // With the full budget (m_eff = |t| = 5) the compressed tuple scores 5;
  // cars matching {FourDoor} have counts 2,2,4,2,2, so none beats it and
  // the query becomes winnable.
  const QueryLog reduced_big =
      ReduceTopkToConjunctive(db, scoring, log, t, /*m_eff=*/5, /*k=*/2);
  EXPECT_EQ(reduced_big.size(), 1);
}

TEST(TopkTest, StaticScoringOrdersByPrice) {
  // Cheaper is better: negate prices. New car is priced 10; db cars priced
  // 8 and 15. With k=1, a query matched by the 8-priced car is unwinnable.
  BooleanTable db(AttributeSchema::Anonymous(2));
  db.AddRow(DynamicBitset::FromString("11"));  // price 8
  db.AddRow(DynamicBitset::FromString("10"));  // price 15
  QueryLog log(db.schema());
  log.AddQueryFromIndices({0});      // Matched by both cars.
  log.AddQueryFromIndices({1});      // Matched by the price-8 car.
  const GlobalScoring scoring = MakeStaticScoring({-8.0, -15.0}, -10.0);
  DynamicBitset t(2);
  t.SetAll();
  // k=1: both queries blocked by the price-8 car.
  EXPECT_EQ(CountTopkSatisfied(db, scoring, log, t, 1), 0);
  // k=2: now the new car is second for both queries... query {a0} has two
  // matching cars but only one (price 8) beats price 10.
  EXPECT_EQ(CountTopkSatisfied(db, scoring, log, t, 2), 2);
}

TEST(TopkTest, PessimisticTieBreak) {
  // A db tuple with the *same* score as the new tuple outranks it.
  BooleanTable db(AttributeSchema::Anonymous(2));
  db.AddRow(DynamicBitset::FromString("10"));  // 1 attribute, score 1.
  QueryLog log(db.schema());
  log.AddQueryFromIndices({0});
  const GlobalScoring scoring = MakeAttributeCountScoring(db);
  DynamicBitset t = DynamicBitset::FromString("10");
  // m=1: new tuple scores 1, tied with the db tuple -> loses with k=1.
  EXPECT_EQ(CountTopkSatisfied(db, scoring, log, t, 1), 0);
  EXPECT_EQ(CountTopkSatisfied(db, scoring, log, t, 2), 1);
}

TEST(TopkTest, ReductionMatchesDirectEvaluationOnRandomInstances) {
  Rng rng(808);
  for (int trial = 0; trial < 12; ++trial) {
    const AttributeSchema schema = AttributeSchema::Anonymous(8);
    BooleanTable db(schema);
    const int rows = rng.NextInt(3, 12);
    for (int r = 0; r < rows; ++r) {
      DynamicBitset row(8);
      for (int a = 0; a < 8; ++a) {
        if (rng.NextBernoulli(0.5)) row.Set(a);
      }
      db.AddRow(std::move(row));
    }
    datagen::SyntheticWorkloadOptions wl;
    wl.num_queries = 25;
    wl.seed = 600 + trial;
    const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
    DynamicBitset t(8);
    for (int a = 0; a < 8; ++a) {
      if (rng.NextBernoulli(0.7)) t.Set(a);
    }
    const GlobalScoring scoring = MakeAttributeCountScoring(db);
    const int m = rng.NextInt(1, 5);
    const int k = rng.NextInt(1, 4);

    BruteForceSolver base;
    auto solution = SolveTopk(base, db, scoring, log, t, m, k);
    ASSERT_TRUE(solution.ok()) << "trial " << trial;
    const int reference = BruteForceTopkOptimum(db, scoring, log, t, m, k);
    EXPECT_EQ(solution->satisfied_queries, reference) << "trial " << trial;
  }
}

}  // namespace
}  // namespace soc
