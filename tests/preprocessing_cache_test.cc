// SharedMfiIndex concurrency tests: LRU eviction racing single-flight
// mining, partial-result promotion rules, and the lazy bitmap build.
// These run in the TSan CI job, which is what gives the "racing" cases
// their teeth.

#include "serve/preprocessing_cache.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/solve_context.h"
#include "datagen/workload.h"

namespace soc::serve {
namespace {

constexpr int kAttrs = 12;

QueryLog MakeLog() {
  const AttributeSchema schema = AttributeSchema::Anonymous(kAttrs);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = 80;
  wl.seed = 11;
  return datagen::MakeSyntheticWorkload(schema, wl);
}

MfiSocOptions DfsOptions() {
  MfiSocOptions options;
  options.engine = MfiEngine::kExactDfs;  // Deterministic results.
  return options;
}

TEST(SharedMfiIndexTest, EvictionRacesSingleFlightMining) {
  const QueryLog log = MakeLog();
  constexpr int kThresholds = 4;

  // Reference sizes, mined on a roomy single-threaded index.
  SharedMfiIndex reference(log, DfsOptions(), /*capacity=*/kThresholds);
  std::vector<std::size_t> expected;
  for (int t = 1; t <= kThresholds; ++t) {
    auto mined = reference.MaximalItemsets(t, /*context=*/nullptr);
    ASSERT_TRUE(mined.ok());
    expected.push_back((*mined)->size());
  }

  // Capacity 1: every publish of a new threshold evicts the previous
  // one while other threads are mid-lookup or mid-mining.
  SharedMfiIndex index(log, DfsOptions(), /*capacity=*/1);
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 32;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const int threshold = 1 + (w + i) % kThresholds;
        auto mined = index.MaximalItemsets(threshold, /*context=*/nullptr);
        if (!mined.ok() || *mined == nullptr ||
            (*mined)->size() !=
                expected[static_cast<std::size_t>(threshold - 1)]) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  const CacheStats stats = index.stats();
  // Every request resolved as exactly one hit or one miss.
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kItersPerThread);
  // All four thresholds were published into a capacity-1 cache at least
  // once each, so at least three publishes evicted a resident entry.
  EXPECT_GE(stats.evictions, kThresholds - 1);
}

TEST(SharedMfiIndexTest, PartialMiningIsNeverPromoted) {
  const QueryLog log = MakeLog();
  SharedMfiIndex index(log, DfsOptions(), /*capacity=*/4);

  SolveContext stopped;
  stopped.InjectFault(StopReason::kDeadline, /*at_tick=*/1);
  auto partial = index.MaximalItemsets(2, &stopped);
  ASSERT_TRUE(partial.ok());  // Partial results are still usable...
  EXPECT_TRUE(stopped.stop_requested());
  EXPECT_EQ(index.stats().misses, 1);

  // ...but never cached: the next request misses again and gets the
  // full collection.
  auto full = index.MaximalItemsets(2, /*context=*/nullptr);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(index.stats().misses, 2);
  EXPECT_EQ(index.stats().hits, 0);

  SharedMfiIndex reference(log, DfsOptions(), /*capacity=*/4);
  auto expected = reference.MaximalItemsets(2, /*context=*/nullptr);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ((*full)->size(), (*expected)->size());

  // The complete result was promoted: the third request is a hit.
  auto hit = index.MaximalItemsets(2, /*context=*/nullptr);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(index.stats().hits, 1);
}

TEST(SharedMfiIndexTest, ConcurrentMissesShareOneFlight) {
  const QueryLog log = MakeLog();
  SharedMfiIndex index(log, DfsOptions(), /*capacity=*/4);

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<int> failures{0};
  std::vector<std::size_t> sizes(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      ++ready;
      while (ready.load() < kThreads) std::this_thread::yield();
      auto mined = index.MaximalItemsets(3, /*context=*/nullptr);
      if (!mined.ok() || *mined == nullptr) {
        ++failures;
        return;
      }
      sizes[static_cast<std::size_t>(w)] = (*mined)->size();
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);
  for (int w = 1; w < kThreads; ++w) {
    EXPECT_EQ(sizes[static_cast<std::size_t>(w)], sizes[0]);
  }
  const CacheStats stats = index.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads);
  EXPECT_GE(stats.misses, 1);
}

TEST(PreprocessingCacheTest, ConcurrentFirstMaxSatisfiableBuildsOnce) {
  const QueryLog log = MakeLog();

  PreprocessingCache reference_cache(log, /*mfi_capacity=*/4);
  DynamicBitset tuple(kAttrs);
  for (int a = 0; a < kAttrs; a += 2) tuple.Set(a);
  const int expected = reference_cache.MaxSatisfiable(tuple, 3);

  PreprocessingCache cache(log, /*mfi_capacity=*/4);
  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&] {
      // All threads race the lazy bitmap build on first use.
      for (int i = 0; i < 16; ++i) {
        if (cache.MaxSatisfiable(tuple, 3) != expected) ++mismatches;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace soc::serve
