#include "datagen/text_corpus.h"

#include <set>

#include <gtest/gtest.h>

namespace soc::datagen {
namespace {

TEST(TextCorpusTest, ShapeMatchesOptions) {
  TextCorpusOptions options;
  options.vocabulary_size = 500;
  options.num_documents = 50;
  options.min_document_length = 10;
  options.max_document_length = 30;
  const TextCorpus corpus = GenerateTextCorpus(options);
  EXPECT_EQ(corpus.documents.size(), 50u);
  EXPECT_EQ(corpus.document_topics.size(), 50u);
  EXPECT_EQ(corpus.topic_words.size(),
            static_cast<std::size_t>(options.num_topics));
  for (const auto& doc : corpus.documents) {
    EXPECT_GE(doc.size(), 10u);
    EXPECT_LE(doc.size(), 30u);
    for (int term : doc) {
      EXPECT_GE(term, 0);
      EXPECT_LT(term, 500);
    }
  }
  for (int topic : corpus.document_topics) {
    EXPECT_GE(topic, 0);
    EXPECT_LT(topic, options.num_topics);
  }
}

TEST(TextCorpusTest, TopicWordsAreDistinct) {
  TextCorpusOptions options;
  options.vocabulary_size = 300;
  options.num_documents = 5;
  const TextCorpus corpus = GenerateTextCorpus(options);
  for (const auto& words : corpus.topic_words) {
    std::set<int> unique(words.begin(), words.end());
    EXPECT_EQ(unique.size(), words.size());
  }
}

TEST(TextCorpusTest, DeterministicForSeed) {
  TextCorpusOptions options;
  options.num_documents = 20;
  options.vocabulary_size = 200;
  const TextCorpus a = GenerateTextCorpus(options);
  const TextCorpus b = GenerateTextCorpus(options);
  EXPECT_EQ(a.documents, b.documents);
  options.seed = 777;
  const TextCorpus c = GenerateTextCorpus(options);
  EXPECT_NE(a.documents, c.documents);
}

TEST(TextCorpusTest, DocumentsLeanTowardTheirTopic) {
  TextCorpusOptions options;
  options.vocabulary_size = 2000;
  options.num_documents = 100;
  options.topic_word_fraction = 0.6;
  const TextCorpus corpus = GenerateTextCorpus(options);
  int leaning = 0;
  for (std::size_t d = 0; d < corpus.documents.size(); ++d) {
    const std::set<int> topical(
        corpus.topic_words[corpus.document_topics[d]].begin(),
        corpus.topic_words[corpus.document_topics[d]].end());
    int topical_words = 0;
    for (int term : corpus.documents[d]) {
      topical_words += topical.contains(term);
    }
    if (topical_words * 2 >= static_cast<int>(corpus.documents[d].size())) {
      ++leaning;
    }
  }
  EXPECT_GT(leaning, 50);  // Most documents are mostly topical.
}

TEST(TextWorkloadTest, QueriesDrawnFromTopics) {
  TextCorpusOptions corpus_options;
  corpus_options.vocabulary_size = 1000;
  corpus_options.num_documents = 10;
  const TextCorpus corpus = GenerateTextCorpus(corpus_options);
  TextWorkloadOptions options;
  options.num_queries = 200;
  const std::vector<text::SparseQuery> queries =
      MakeTextWorkload(corpus, options);
  ASSERT_EQ(queries.size(), 200u);
  // Every query's keywords must all belong to a single topic.
  for (const text::SparseQuery& q : queries) {
    ASSERT_GE(q.size(), 1u);
    ASSERT_LE(q.size(), 3u);
    bool from_one_topic = false;
    for (const auto& words : corpus.topic_words) {
      const std::set<int> topic_set(words.begin(), words.end());
      bool all = true;
      for (int term : q) {
        if (!topic_set.contains(term)) {
          all = false;
          break;
        }
      }
      if (all) {
        from_one_topic = true;
        break;
      }
    }
    EXPECT_TRUE(from_one_topic);
  }
}

TEST(TextWorkloadTest, QueriesHitTheCorpus) {
  // Topic-drawn queries should retrieve documents via BM25 most of the
  // time; a workload that misses everything would be useless.
  TextCorpusOptions corpus_options;
  corpus_options.vocabulary_size = 2000;
  corpus_options.num_documents = 200;
  const TextCorpus corpus = GenerateTextCorpus(corpus_options);
  const text::TextIndex index = IndexCorpus(corpus);
  TextWorkloadOptions options;
  options.num_queries = 100;
  int hitting = 0;
  for (const text::SparseQuery& q : MakeTextWorkload(corpus, options)) {
    if (!index.TopK(q, 1).empty()) ++hitting;
  }
  EXPECT_GT(hitting, 80);
}

TEST(IndexCorpusTest, CountsMatch) {
  TextCorpusOptions options;
  options.vocabulary_size = 100;
  options.num_documents = 30;
  const TextCorpus corpus = GenerateTextCorpus(options);
  const text::TextIndex index = IndexCorpus(corpus);
  EXPECT_EQ(index.num_documents(), 30);
  EXPECT_EQ(index.document_length(0),
            static_cast<int>(corpus.documents[0].size()));
}

}  // namespace
}  // namespace soc::datagen
