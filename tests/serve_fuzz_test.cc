// Concurrent fuzzing of the serve layer. This is the nightly TSan target:
// multiple submitter threads race a small worker pool and a tiny admission
// queue while the fuzzer cross-checks the metrics ledger. Keep the request
// counts modest — under TSan each run is ~10x slower.

#include "check/fuzz.h"

#include <gtest/gtest.h>

namespace soc::check {
namespace {

TEST(ServeFuzzTest, SmokeUnderContention) {
  ServeFuzzOptions options;
  options.requests = 120;
  options.seed = 1;
  options.num_workers = 4;
  options.submitter_threads = 4;
  options.max_queue = 8;
  const Status status = FuzzServe(options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ServeFuzzTest, SingleWorkerTinyQueueShedsLoadSafely) {
  ServeFuzzOptions options;
  options.requests = 80;
  options.seed = 2;
  options.num_workers = 1;
  options.submitter_threads = 4;
  options.max_queue = 2;
  const Status status = FuzzServe(options);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ServeFuzzTest, SeedSweepKeepsLedgerBalanced) {
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    ServeFuzzOptions options;
    options.requests = 50;
    options.seed = seed;
    const Status status = FuzzServe(options);
    EXPECT_TRUE(status.ok()) << "seed " << seed << ": " << status.ToString();
  }
}

}  // namespace
}  // namespace soc::check
