#include "categorical/categorical.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"

namespace soc::categorical {
namespace {

CategoricalSchema CarSchema() {
  auto schema = CategoricalSchema::Create(
      {"Make", "Color", "Transmission"},
      {{"Honda", "Toyota", "BMW"},
       {"Red", "Blue", "Black", "White"},
       {"Manual", "Automatic"}});
  SOC_CHECK(schema.ok());
  return std::move(schema).value();
}

TEST(CategoricalSchemaTest, CreateAndLookup) {
  CategoricalSchema schema = CarSchema();
  EXPECT_EQ(schema.num_attributes(), 3);
  EXPECT_EQ(schema.domain_size(1), 4);
  EXPECT_EQ(schema.ValueIndex(0, "Toyota"), 1);
  EXPECT_EQ(schema.ValueIndex(0, "Tesla"), -1);
}

TEST(CategoricalSchemaTest, RejectsBadSchemas) {
  EXPECT_FALSE(CategoricalSchema::Create({"A", "A"}, {{"x"}, {"y"}}).ok());
  EXPECT_FALSE(CategoricalSchema::Create({"A"}, {{}}).ok());
  EXPECT_FALSE(CategoricalSchema::Create({"A"}, {{"x", "x"}}).ok());
  EXPECT_FALSE(CategoricalSchema::Create({"A", "B"}, {{"x"}}).ok());
}

TEST(CategoricalTableTest, AddRowValidates) {
  CategoricalTable table(CarSchema());
  EXPECT_TRUE(table.AddRow({0, 1, 1}).ok());
  EXPECT_FALSE(table.AddRow({0, 1}).ok());      // Wrong width.
  EXPECT_FALSE(table.AddRow({0, 9, 1}).ok());   // Value out of range.
  EXPECT_EQ(table.num_rows(), 1);
}

TEST(CategoricalTest, QueryMatching) {
  // Tuple: Toyota, Black, Automatic.
  const CategoricalTuple t = {1, 2, 1};
  EXPECT_TRUE(QueryMatchesTuple({{0, 1}}, t));
  EXPECT_TRUE(QueryMatchesTuple({{0, 1}, {2, 1}}, t));
  EXPECT_FALSE(QueryMatchesTuple({{0, 0}}, t));
  EXPECT_TRUE(QueryMatchesTuple({}, t));  // Empty query matches.
}

TEST(CategoricalTest, ReductionDropsMismatchedQueries) {
  CategoricalSchema schema = CarSchema();
  const CategoricalTuple t = {1, 2, 1};  // Toyota, Black, Automatic.
  const std::vector<CategoricalQuery> queries = {
      {{0, 1}, {1, 2}},  // Toyota + Black: winnable -> {Make, Color}.
      {{0, 0}},          // Honda: mismatched -> dropped.
      {{2, 1}},          // Automatic: winnable -> {Transmission}.
  };
  auto reduction = ReduceCategoricalToBoolean(schema, queries, t);
  ASSERT_TRUE(reduction.ok());
  EXPECT_EQ(reduction->dropped_queries, 1);
  ASSERT_EQ(reduction->boolean_log.size(), 2);
  EXPECT_EQ(reduction->boolean_log.query(0).ToString(), "110");
  EXPECT_EQ(reduction->boolean_log.query(1).ToString(), "001");
  EXPECT_TRUE(reduction->boolean_tuple.All());
}

TEST(CategoricalTest, ReductionRejectsBadConditions) {
  CategoricalSchema schema = CarSchema();
  const CategoricalTuple t = {1, 2, 1};
  auto bad_attr = ReduceCategoricalToBoolean(schema, {{{9, 0}}}, t);
  EXPECT_FALSE(bad_attr.ok());
  auto bad_value = ReduceCategoricalToBoolean(schema, {{{0, 9}}}, t);
  EXPECT_FALSE(bad_value.ok());
}

TEST(CategoricalTest, EndToEndSolve) {
  CategoricalSchema schema = CarSchema();
  const CategoricalTuple t = {1, 2, 1};
  // 3 queries need {Make}, 2 need {Color, Transmission}, 1 unwinnable.
  std::vector<CategoricalQuery> queries;
  for (int i = 0; i < 3; ++i) queries.push_back({{0, 1}});
  for (int i = 0; i < 2; ++i) queries.push_back({{1, 2}, {2, 1}});
  queries.push_back({{1, 0}});
  BruteForceSolver exact;
  auto m1 = SolveCategoricalSoc(exact, schema, queries, t, 1);
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1->satisfied_queries, 3);
  EXPECT_EQ(m1->selected_attributes, (std::vector<int>{0}));
  auto m2 = SolveCategoricalSoc(exact, schema, queries, t, 2);
  ASSERT_TRUE(m2.ok());
  // {Color, Transmission} satisfies 2; {Make, anything} satisfies 3.
  EXPECT_EQ(m2->satisfied_queries, 3);
  auto m3 = SolveCategoricalSoc(exact, schema, queries, t, 3);
  ASSERT_TRUE(m3.ok());
  EXPECT_EQ(m3->satisfied_queries, 5);
}

TEST(CategoricalTest, OneHotEncoding) {
  CategoricalTable table(CarSchema());
  ASSERT_TRUE(table.AddRow({0, 1, 1}).ok());  // Honda, Blue, Automatic.
  ASSERT_TRUE(table.AddRow({2, 2, 0}).ok());  // BMW, Black, Manual.
  BooleanTable encoded = OneHotEncode(table);
  // 3 + 4 + 2 = 9 one-hot columns.
  EXPECT_EQ(encoded.num_attributes(), 9);
  EXPECT_EQ(encoded.num_rows(), 2);
  // Each row has exactly one bit per original attribute.
  EXPECT_EQ(encoded.row(0).Count(), 3u);
  EXPECT_EQ(encoded.schema().Find("Make=Honda"), 0);
  EXPECT_EQ(encoded.schema().Find("Color=Black"), 5);
  EXPECT_TRUE(encoded.row(0).Test(0));   // Make=Honda.
  EXPECT_TRUE(encoded.row(1).Test(5));   // Color=Black.
  EXPECT_FALSE(encoded.row(1).Test(0));
}

}  // namespace
}  // namespace soc::categorical
