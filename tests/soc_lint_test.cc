// soc_lint rule tests: each rule gets a passing and a failing crafted
// snippet, so the CI gate's behavior is pinned without depending on the
// (changing) real tree.

#include "soc_lint/lint.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace soc::lint {
namespace {

std::vector<Finding> RunAll(const std::vector<SourceFile>& files) {
  return LintTree(files);
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&rule](const Finding& f) { return f.rule == rule; });
}

// ---------------------------------------------------------------- guards

TEST(SocLintTest, CanonicalGuardDropsSrcAndUppercases) {
  EXPECT_EQ(CanonicalGuard("src/serve/metrics.h"), "SOC_SERVE_METRICS_H_");
  EXPECT_EQ(CanonicalGuard("src/common/thread_pool.h"),
            "SOC_COMMON_THREAD_POOL_H_");
  EXPECT_EQ(CanonicalGuard("tools/soc_lint/lint.h"),
            "SOC_TOOLS_SOC_LINT_LINT_H_");
}

TEST(SocLintTest, AcceptsCanonicalGuardAndPragmaOnce) {
  std::vector<Finding> findings;
  CheckIncludeGuard({"src/core/foo.h",
                     "#ifndef SOC_CORE_FOO_H_\n#define SOC_CORE_FOO_H_\n"
                     "#endif\n"},
                    &findings);
  CheckIncludeGuard({"tools/bar.h", "#pragma once\nint x;\n"}, &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(SocLintTest, FlagsMissingAndNonCanonicalGuards) {
  std::vector<Finding> findings;
  CheckIncludeGuard({"src/core/foo.h", "int x;\n"}, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");

  findings.clear();
  CheckIncludeGuard({"src/core/foo.h",
                     "#ifndef WRONG_NAME_H\n#define WRONG_NAME_H\n#endif\n"},
                    &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("SOC_CORE_FOO_H_"), std::string::npos);

  // #ifndef without the matching #define is a broken guard.
  findings.clear();
  CheckIncludeGuard({"src/core/foo.h",
                     "#ifndef SOC_CORE_FOO_H_\n#define OTHER_H_\n#endif\n"},
                    &findings);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(SocLintTest, GuardRuleIgnoresNonHeadersAndComments) {
  std::vector<Finding> findings;
  CheckIncludeGuard({"src/core/foo.cc", "int x;\n"}, &findings);
  // A commented-out pragma does not count as a guard.
  CheckIncludeGuard({"src/core/bar.h", "// #pragma once\nint x;\n"},
                    &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/core/bar.h");
}

// --------------------------------------------------------------- threads

TEST(SocLintTest, FlagsNakedThreadInSrc) {
  std::vector<Finding> findings;
  CheckNakedThread({"src/serve/foo.cc",
                    "#include <thread>\nvoid F() { std::thread t([]{}); }\n"},
                   &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "naked-thread");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(SocLintTest, ThreadRuleExemptsPoolTestsAndHardwareConcurrency) {
  std::vector<Finding> findings;
  // The pool implementation itself may own raw threads.
  CheckNakedThread({"src/common/thread_pool.cc",
                    "std::thread worker;\n"},
                   &findings);
  // Tests and bench are out of scope.
  CheckNakedThread({"tests/foo_test.cc", "std::thread t;\n"}, &findings);
  // Reading the parallelism hint is fine anywhere.
  CheckNakedThread({"src/serve/foo.cc",
                    "int n = std::thread::hardware_concurrency();\n"},
                   &findings);
  // Mentions in comments and strings do not count.
  CheckNakedThread({"src/serve/bar.cc",
                    "// std::thread is banned here\n"
                    "const char* s = \"std::thread\";\n"},
                   &findings);
  EXPECT_TRUE(findings.empty());
}

// -------------------------------------------------------------- layering

TEST(SocLintTest, FlagsServeIncludeFromLowerLayer) {
  std::vector<Finding> findings;
  CheckLayering({"src/core/foo.cc", "#include \"serve/metrics.h\"\n"},
                &findings);
  CheckLayering({"src/lp/bar.cc", "#include \"serve/protocol.h\"\n"},
                &findings);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "layering");
}

TEST(SocLintTest, LayeringAllowsServeAndToolsToUseServe) {
  std::vector<Finding> findings;
  CheckLayering({"src/serve/foo.cc", "#include \"serve/metrics.h\"\n"},
                &findings);
  CheckLayering({"tools/socvis_serve.cc",
                 "#include \"serve/visibility_service.h\"\n"},
                &findings);
  CheckLayering({"src/core/foo.cc", "#include \"core/solver.h\"\n"},
                &findings);
  EXPECT_TRUE(findings.empty());
}

// ----------------------------------------------------------- stop cadence

TEST(SocLintTest, FlagsModuloCadence) {
  std::vector<Finding> findings;
  CheckStopCadence({"src/lp/foo.cc",
                    "void F(long i) { if (i % kStopCheckInterval == 0) {} }\n"},
                   &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "stop-cadence");

  findings.clear();
  CheckStopCadence({"src/lp/foo.cc",
                    "void F(long i) { if ((i & kStopCheckMask) == 0) {} }\n"},
                   &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(SocLintTest, FlagsSolverFunctionThatIgnoresItsContext) {
  const char* bad =
      "Status Solve(const Log& log, SolveContext* context) {\n"
      "  for (int i = 0; i < 100; ++i) DoWork(i);\n"
      "  return Status::OK();\n"
      "}\n";
  std::vector<Finding> findings;
  CheckStopCadence({"src/core/foo.cc", bad}, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "stop-cadence");
  EXPECT_NE(findings[0].message.find("'context'"), std::string::npos);
}

TEST(SocLintTest, AcceptsCheckpointingAndForwardingFunctions) {
  const char* checkpointing =
      "Status Solve(const Log& log, SolveContext* context) {\n"
      "  for (int i = 0; i < 100; ++i) {\n"
      "    if (context != nullptr && context->Checkpoint()) break;\n"
      "  }\n"
      "  return Status::OK();\n"
      "}\n";
  const char* forwarding =
      "Status Outer(SolveContext* ctx) { return Inner(1, ctx); }\n";
  // A constructor may forward via its member-initializer list.
  const char* initializer_list =
      "Miner::Miner(const Db& db, SolveContext* context)\n"
      "    : db_(db), context_(context) {}\n";
  // Declarations and defaulted-out-of-scope signatures are not checked.
  const char* declaration =
      "Status Solve(const Log& log, SolveContext* context);\n"
      "virtual Status Go(SolveContext* context) = 0;\n";
  std::vector<Finding> findings;
  CheckStopCadence({"src/core/a.cc", checkpointing}, &findings);
  CheckStopCadence({"src/core/b.cc", forwarding}, &findings);
  CheckStopCadence({"src/core/c.cc", initializer_list}, &findings);
  CheckStopCadence({"src/core/d.cc", declaration}, &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, CadenceRuleSkipsNonSolverLayers) {
  // The function-use half only applies to solver layers (core/lp/
  // itemsets); serve composes contexts without ticking them itself.
  const char* ignoring =
      "void F(SolveContext* context) { DoWork(); }\n";
  std::vector<Finding> findings;
  CheckStopCadence({"src/serve/foo.cc", ignoring}, &findings);
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------- reject metrics

TEST(SocLintTest, RejectMetricsPassesWhenCounterPrecedesRejection) {
  std::vector<Finding> findings;
  CheckRejectMetrics(
      {"src/serve/foo.cc",
       "void Submit() {\n"
       "  metrics_.Increment(kRejectedQueueFull);\n"
       "  return reject(OverloadedError(\"queue full\"));\n"
       "}\n"},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, RejectMetricsFlagsUncountedRejection) {
  std::vector<Finding> findings;
  CheckRejectMetrics(
      {"src/serve/foo.cc",
       "void Submit() {\n"
       "  return reject(OverloadedError(\"silent shed\"));\n"
       "}\n"},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "reject-metrics");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("Increment"), std::string::npos);
}

TEST(SocLintTest, RejectMetricsSkipsCommentsHeadersAndOtherLayers) {
  std::vector<Finding> findings;
  // A mention in a comment is not a rejection path.
  CheckRejectMetrics({"src/serve/a.cc",
                      "// OverloadedError(\"doc only\")\n"},
                     &findings);
  // Headers declare the constructor; only .cc construction sites count.
  CheckRejectMetrics({"src/serve/b.h", "Status OverloadedError(s);\n"},
                     &findings);
  // The status library itself (and layers outside serve) are exempt.
  CheckRejectMetrics({"src/common/status.cc",
                      "Status OverloadedError(std::string m) { return {}; }\n"},
                     &findings);
  CheckRejectMetrics({"tools/x.cc", "auto s = OverloadedError(\"cli\");\n"},
                     &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, RejectMetricsWindowDoesNotSpanDistantCounters) {
  // An Increment far above the rejection (outside the window) must not
  // satisfy the rule.
  std::string padding;
  for (int i = 0; i < 60; ++i) padding += "  DoUnrelatedWork(1234567890);\n";
  std::vector<Finding> findings;
  CheckRejectMetrics({"src/serve/foo.cc",
                      "void A() { metrics_.Increment(kAccepted); }\n" +
                          padding +
                          "void B() { return reject(OverloadedError(\"x\")); }\n"},
                     &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "reject-metrics");
}

// -------------------------------------------------------- registry parity

constexpr char kRegistrySnippet[] =
    "constexpr RegistryEntry kRegistry[] = {\n"
    "    {\"Alpha\", &MakeAlpha},\n"
    "    {\"Beta\", &MakeBeta},\n"
    "};\n";

TEST(SocLintTest, RegistryParityPassesWhenTestCoversAllNames) {
  std::vector<Finding> findings;
  CheckRegistryTestParity(
      {{"src/core/solver_registry.cc", kRegistrySnippet},
       {"tests/solver_registry_test.cc",
        "for (auto n : {\"Alpha\", \"Beta\"}) Check(n);\n"}},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, RegistryParityFlagsUncoveredSolver) {
  std::vector<Finding> findings;
  CheckRegistryTestParity(
      {{"src/core/solver_registry.cc", kRegistrySnippet},
       {"tests/solver_registry_test.cc", "Check(\"Alpha\");\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "registry-parity");
  EXPECT_NE(findings[0].message.find("\"Beta\""), std::string::npos);
}

TEST(SocLintTest, RegistryParityFlagsMissingTestFile) {
  std::vector<Finding> findings;
  CheckRegistryTestParity({{"src/core/solver_registry.cc", kRegistrySnippet}},
                          &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "registry-parity");
}

// -------------------------------------------------------- property parity

constexpr char kPropertyListSnippet[] =
    "constexpr const char* kPropertyCheckedSolvers[] = {\n"
    "    \"Alpha\", \"Beta\",\n"
    "};\n";

TEST(SocLintTest, PropertyParityPassesWhenListMatchesRegistry) {
  std::vector<Finding> findings;
  CheckPropertyParity(
      {{"src/core/solver_registry.cc", kRegistrySnippet},
       {"src/check/properties.cc", kPropertyListSnippet}},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, PropertyParityFlagsUncheckedSolver) {
  std::vector<Finding> findings;
  CheckPropertyParity(
      {{"src/core/solver_registry.cc", kRegistrySnippet},
       {"src/check/properties.cc",
        "constexpr const char* kPropertyCheckedSolvers[] = {\n"
        "    \"Alpha\",\n"
        "};\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "property-parity");
  EXPECT_NE(findings[0].message.find("\"Beta\""), std::string::npos);
  EXPECT_NE(findings[0].message.find("property suite"), std::string::npos);
}

TEST(SocLintTest, PropertyParityFlagsStaleListEntry) {
  std::vector<Finding> findings;
  CheckPropertyParity(
      {{"src/core/solver_registry.cc", kRegistrySnippet},
       {"src/check/properties.cc",
        "constexpr const char* kPropertyCheckedSolvers[] = {\n"
        "    \"Alpha\", \"Beta\", \"Retired\",\n"
        "};\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "property-parity");
  EXPECT_NE(findings[0].message.find("\"Retired\""), std::string::npos);
}

TEST(SocLintTest, PropertyParityFlagsMissingPropertiesFile) {
  std::vector<Finding> findings;
  CheckPropertyParity({{"src/core/solver_registry.cc", kRegistrySnippet}},
                      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "property-parity");
}

TEST(SocLintTest, PropertyParityFlagsBrokenList) {
  std::vector<Finding> findings;
  CheckPropertyParity(
      {{"src/core/solver_registry.cc", kRegistrySnippet},
       {"src/check/properties.cc", "int unrelated = 0;\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("kPropertyCheckedSolvers"),
            std::string::npos);
}

// ------------------------------------------------------------ span names

constexpr char kSpanTableSnippet[] =
    "inline constexpr const char* kSpanNames[] = {\n"
    "    \"solve\", \"mining\", \"degraded\",\n"
    "};\n";

TEST(SocLintTest, SpanNamePassesForCanonicalNames) {
  std::vector<Finding> findings;
  CheckSpanNameParity(
      {{"src/obs/span_names.h", kSpanTableSnippet},
       {"src/core/foo.cc",
        "void F(SolveContext* c) {\n"
        "  const PhaseScope phase(c, \"mining\");\n"
        "}\n"},
       {"src/serve/bar.cc",
        "void G(obs::TraceRecorder* r) {\n"
        "  obs::TraceSpan span(r, \"solve\", \"serve\");\n"
        "  r->RecordInstant(\"degraded\", \"serve\");\n"
        "}\n"}},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, SpanNameFlagsOffTableName) {
  std::vector<Finding> findings;
  CheckSpanNameParity(
      {{"src/obs/span_names.h", kSpanTableSnippet},
       {"src/lp/foo.cc",
        "void F(SolveContext* c) {\n"
        "  const PhaseScope phase(c, \"my_cool_phase\");\n"
        "}\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "span-name");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("\"my_cool_phase\""), std::string::npos);
}

TEST(SocLintTest, SpanNameSkipsCommentsVariablesAndOtherLayers) {
  std::vector<Finding> findings;
  CheckSpanNameParity(
      {{"src/obs/span_names.h", kSpanTableSnippet},
       // A mention in a comment is not a construction.
       {"src/core/a.cc", "// PhaseScope phase(c, \"bogus\");\n"},
       // A non-literal name cannot be checked statically.
       {"src/core/b.cc",
        "void F(SolveContext* c, const char* n) {\n"
        "  const PhaseScope phase(c, n);\n"
        "}\n"},
       // Layers outside core/lp/itemsets/serve are out of scope.
       {"tools/x.cc", "obs::TraceSpan span(r, \"bogus\", \"cli\");\n"},
       // The obs implementation itself is free to name parameters.
       {"src/obs/trace_recorder.h",
        "void RecordInstant(const char* name, const char* category);\n"}},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, SpanNameSkipsTreesWithoutTableButFlagsBrokenTable) {
  std::vector<Finding> findings;
  // No span_names.h at all: nothing to check against.
  CheckSpanNameParity(
      {{"src/core/foo.cc", "const PhaseScope phase(c, \"bogus\");\n"}},
      &findings);
  EXPECT_TRUE(findings.empty());

  // Present but unparseable table is itself a finding.
  CheckSpanNameParity({{"src/obs/span_names.h", "int x;\n"}}, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "span-name");
}

// ---------------------------------------------------------- cache metrics

constexpr char kCacheHeaderSnippet[] =
    "inline constexpr char kResultCacheHits[] = \"result_cache.hits\";\n"
    "inline constexpr char kResultCacheEvictions[] = "
    "\"result_cache.evictions\";\n";

TEST(SocLintTest, CacheMetricsPassesWhenEveryPathCounts) {
  std::vector<Finding> findings;
  CheckCacheMetrics(
      {{"src/tenant/result_cache.h", kCacheHeaderSnippet},
       {"src/tenant/result_cache.cc",
        "CachedResultPtr ResultCache::Probe(const Key& key) {\n"
        "  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);\n"
        "  Count(kResultCacheHits);\n"
        "  return it->second.result;\n"
        "}\n"
        "void ResultCache::Evict() {\n"
        "  lru_.pop_back();\n"
        "  Count(kResultCacheEvictions);\n"
        "}\n"}},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, CacheMetricsFlagsNeverIncrementedConstant) {
  std::vector<Finding> findings;
  CheckCacheMetrics(
      {{"src/tenant/result_cache.h", kCacheHeaderSnippet},
       {"src/tenant/result_cache.cc",
        "CachedResultPtr ResultCache::Probe(const Key& key) {\n"
        "  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);\n"
        "  Count(kResultCacheHits);\n"
        "  return it->second.result;\n"
        "}\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "cache-metrics");
  EXPECT_NE(findings[0].message.find("kResultCacheEvictions"),
            std::string::npos);
}

TEST(SocLintTest, CacheMetricsFlagsUncountedEvictionPath) {
  std::vector<Finding> findings;
  CheckCacheMetrics(
      {{"src/tenant/result_cache.h", kCacheHeaderSnippet},
       {"src/tenant/result_cache.cc",
        // Constants referenced so the parity half passes; the pop_back
        // sits alone in a window with no Count/Increment.
        "const char* used[] = {kResultCacheHits, kResultCacheEvictions};\n" +
            std::string(500, '\n') +
            "void ResultCache::Evict() {\n"
            "  lru_.pop_back();\n"
            "  entries_.erase(*victim);\n"
            "}\n" +
            std::string(500, '\n')}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "cache-metrics");
  EXPECT_NE(findings[0].message.find("eviction"), std::string::npos);
}

TEST(SocLintTest, CacheMetricsFlagsOrphanedPairAndSkipsAbsentTree) {
  std::vector<Finding> findings;
  CheckCacheMetrics({{"src/core/foo.cc", "int x;\n"}}, &findings);
  EXPECT_TRUE(findings.empty());

  CheckCacheMetrics({{"src/tenant/result_cache.h", kCacheHeaderSnippet}},
                    &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "cache-metrics");
  EXPECT_NE(findings[0].message.find("travel together"), std::string::npos);
}

TEST(SocLintTest, SpanNameCoversTenantLayer) {
  std::vector<Finding> findings;
  CheckSpanNameParity(
      {{"src/obs/span_names.h", kSpanTableSnippet},
       {"src/tenant/shard.cc",
        "void F(obs::TraceRecorder* r) {\n"
        "  obs::TraceSpan span(r, \"made_up_span\", \"tenant\");\n"
        "}\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "span-name");
  EXPECT_NE(findings[0].message.find("\"made_up_span\""), std::string::npos);
}

// ------------------------------------------------------------- aggregate

TEST(SocLintTest, LintTreeAggregatesSortedFindingsAndJson) {
  const std::vector<SourceFile> files = {
      {"src/core/zeta.cc", "#include \"serve/metrics.h\"\n"},
      {"src/core/alpha.h", "int x;\n"},
  };
  const std::vector<Finding> findings = RunAll(files);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].path, "src/core/alpha.h");  // Sorted by path.
  EXPECT_TRUE(HasRule(findings, "layering"));
  EXPECT_TRUE(HasRule(findings, "include-guard"));

  const std::string json = FindingsToJson(findings);
  EXPECT_NE(json.find("\"rule\":\"layering\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"src/core/alpha.h\""), std::string::npos);

  EXPECT_EQ(FindingsToJson({}), "[]");
}

TEST(SocLintTest, CleanTreeSnippetsProduceNoFindings) {
  const std::vector<SourceFile> files = {
      {"src/core/ok.h",
       "#ifndef SOC_CORE_OK_H_\n#define SOC_CORE_OK_H_\n#endif\n"},
      {"src/core/ok.cc",
       "Status Solve(SolveContext* context) {\n"
       "  while (!context->Checkpoint()) {}\n"
       "  return Status::OK();\n"
       "}\n"},
  };
  EXPECT_TRUE(RunAll(files).empty());
}

}  // namespace
}  // namespace soc::lint
