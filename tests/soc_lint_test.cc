// soc_lint rule tests: each rule gets a passing and a failing crafted
// snippet, so the CI gate's behavior is pinned without depending on the
// (changing) real tree.

#include "soc_lint/lint.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "soc_lint/lock_graph.h"

namespace soc::lint {
namespace {

std::vector<Finding> RunAll(const std::vector<SourceFile>& files) {
  return LintTree(files);
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&rule](const Finding& f) { return f.rule == rule; });
}

// ---------------------------------------------------------------- guards

TEST(SocLintTest, CanonicalGuardDropsSrcAndUppercases) {
  EXPECT_EQ(CanonicalGuard("src/serve/metrics.h"), "SOC_SERVE_METRICS_H_");
  EXPECT_EQ(CanonicalGuard("src/common/thread_pool.h"),
            "SOC_COMMON_THREAD_POOL_H_");
  EXPECT_EQ(CanonicalGuard("tools/soc_lint/lint.h"),
            "SOC_TOOLS_SOC_LINT_LINT_H_");
}

TEST(SocLintTest, AcceptsCanonicalGuardAndPragmaOnce) {
  std::vector<Finding> findings;
  CheckIncludeGuard({"src/core/foo.h",
                     "#ifndef SOC_CORE_FOO_H_\n#define SOC_CORE_FOO_H_\n"
                     "#endif\n"},
                    &findings);
  CheckIncludeGuard({"tools/bar.h", "#pragma once\nint x;\n"}, &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(SocLintTest, FlagsMissingAndNonCanonicalGuards) {
  std::vector<Finding> findings;
  CheckIncludeGuard({"src/core/foo.h", "int x;\n"}, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");

  findings.clear();
  CheckIncludeGuard({"src/core/foo.h",
                     "#ifndef WRONG_NAME_H\n#define WRONG_NAME_H\n#endif\n"},
                    &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("SOC_CORE_FOO_H_"), std::string::npos);

  // #ifndef without the matching #define is a broken guard.
  findings.clear();
  CheckIncludeGuard({"src/core/foo.h",
                     "#ifndef SOC_CORE_FOO_H_\n#define OTHER_H_\n#endif\n"},
                    &findings);
  EXPECT_EQ(findings.size(), 1u);
}

TEST(SocLintTest, GuardRuleIgnoresNonHeadersAndComments) {
  std::vector<Finding> findings;
  CheckIncludeGuard({"src/core/foo.cc", "int x;\n"}, &findings);
  // A commented-out pragma does not count as a guard.
  CheckIncludeGuard({"src/core/bar.h", "// #pragma once\nint x;\n"},
                    &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/core/bar.h");
}

// --------------------------------------------------------------- threads

TEST(SocLintTest, FlagsNakedThreadInSrc) {
  std::vector<Finding> findings;
  CheckNakedThread({"src/serve/foo.cc",
                    "#include <thread>\nvoid F() { std::thread t([]{}); }\n"},
                   &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "naked-thread");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(SocLintTest, ThreadRuleExemptsPoolTestsAndHardwareConcurrency) {
  std::vector<Finding> findings;
  // The pool implementation itself may own raw threads.
  CheckNakedThread({"src/common/thread_pool.cc",
                    "std::thread worker;\n"},
                   &findings);
  // Tests and bench are out of scope.
  CheckNakedThread({"tests/foo_test.cc", "std::thread t;\n"}, &findings);
  // Reading the parallelism hint is fine anywhere.
  CheckNakedThread({"src/serve/foo.cc",
                    "int n = std::thread::hardware_concurrency();\n"},
                   &findings);
  // Mentions in comments and strings do not count.
  CheckNakedThread({"src/serve/bar.cc",
                    "// std::thread is banned here\n"
                    "const char* s = \"std::thread\";\n"},
                   &findings);
  EXPECT_TRUE(findings.empty());
}

// -------------------------------------------------------------- layering

TEST(SocLintTest, FlagsServeIncludeFromLowerLayer) {
  std::vector<Finding> findings;
  CheckLayering({"src/core/foo.cc", "#include \"serve/metrics.h\"\n"},
                &findings);
  CheckLayering({"src/lp/bar.cc", "#include \"serve/protocol.h\"\n"},
                &findings);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "layering");
}

TEST(SocLintTest, LayeringAllowsServeAndToolsToUseServe) {
  std::vector<Finding> findings;
  CheckLayering({"src/serve/foo.cc", "#include \"serve/metrics.h\"\n"},
                &findings);
  CheckLayering({"tools/socvis_serve.cc",
                 "#include \"serve/visibility_service.h\"\n"},
                &findings);
  CheckLayering({"src/core/foo.cc", "#include \"core/solver.h\"\n"},
                &findings);
  EXPECT_TRUE(findings.empty());
}

// ----------------------------------------------------------- stop cadence

TEST(SocLintTest, FlagsModuloCadence) {
  std::vector<Finding> findings;
  CheckStopCadence({"src/lp/foo.cc",
                    "void F(long i) { if (i % kStopCheckInterval == 0) {} }\n"},
                   &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "stop-cadence");

  findings.clear();
  CheckStopCadence({"src/lp/foo.cc",
                    "void F(long i) { if ((i & kStopCheckMask) == 0) {} }\n"},
                   &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(SocLintTest, FlagsSolverFunctionThatIgnoresItsContext) {
  const char* bad =
      "Status Solve(const Log& log, SolveContext* context) {\n"
      "  for (int i = 0; i < 100; ++i) DoWork(i);\n"
      "  return Status::OK();\n"
      "}\n";
  std::vector<Finding> findings;
  CheckStopCadence({"src/core/foo.cc", bad}, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "stop-cadence");
  EXPECT_NE(findings[0].message.find("'context'"), std::string::npos);
}

TEST(SocLintTest, AcceptsCheckpointingAndForwardingFunctions) {
  const char* checkpointing =
      "Status Solve(const Log& log, SolveContext* context) {\n"
      "  for (int i = 0; i < 100; ++i) {\n"
      "    if (context != nullptr && context->Checkpoint()) break;\n"
      "  }\n"
      "  return Status::OK();\n"
      "}\n";
  const char* forwarding =
      "Status Outer(SolveContext* ctx) { return Inner(1, ctx); }\n";
  // A constructor may forward via its member-initializer list.
  const char* initializer_list =
      "Miner::Miner(const Db& db, SolveContext* context)\n"
      "    : db_(db), context_(context) {}\n";
  // Declarations and defaulted-out-of-scope signatures are not checked.
  const char* declaration =
      "Status Solve(const Log& log, SolveContext* context);\n"
      "virtual Status Go(SolveContext* context) = 0;\n";
  std::vector<Finding> findings;
  CheckStopCadence({"src/core/a.cc", checkpointing}, &findings);
  CheckStopCadence({"src/core/b.cc", forwarding}, &findings);
  CheckStopCadence({"src/core/c.cc", initializer_list}, &findings);
  CheckStopCadence({"src/core/d.cc", declaration}, &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, CadenceRuleSkipsNonSolverLayers) {
  // The function-use half only applies to solver layers (core/lp/
  // itemsets); serve composes contexts without ticking them itself.
  const char* ignoring =
      "void F(SolveContext* context) { DoWork(); }\n";
  std::vector<Finding> findings;
  CheckStopCadence({"src/serve/foo.cc", ignoring}, &findings);
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------- reject metrics

TEST(SocLintTest, RejectMetricsPassesWhenCounterPrecedesRejection) {
  std::vector<Finding> findings;
  CheckRejectMetrics(
      {"src/serve/foo.cc",
       "void Submit() {\n"
       "  metrics_.Increment(kRejectedQueueFull);\n"
       "  return reject(OverloadedError(\"queue full\"));\n"
       "}\n"},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, RejectMetricsFlagsUncountedRejection) {
  std::vector<Finding> findings;
  CheckRejectMetrics(
      {"src/serve/foo.cc",
       "void Submit() {\n"
       "  return reject(OverloadedError(\"silent shed\"));\n"
       "}\n"},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "reject-metrics");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("Increment"), std::string::npos);
}

TEST(SocLintTest, RejectMetricsSkipsCommentsHeadersAndOtherLayers) {
  std::vector<Finding> findings;
  // A mention in a comment is not a rejection path.
  CheckRejectMetrics({"src/serve/a.cc",
                      "// OverloadedError(\"doc only\")\n"},
                     &findings);
  // Headers declare the constructor; only .cc construction sites count.
  CheckRejectMetrics({"src/serve/b.h", "Status OverloadedError(s);\n"},
                     &findings);
  // The status library itself (and layers outside serve) are exempt.
  CheckRejectMetrics({"src/common/status.cc",
                      "Status OverloadedError(std::string m) { return {}; }\n"},
                     &findings);
  CheckRejectMetrics({"tools/x.cc", "auto s = OverloadedError(\"cli\");\n"},
                     &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, RejectMetricsWindowDoesNotSpanDistantCounters) {
  // An Increment far above the rejection (outside the window) must not
  // satisfy the rule.
  std::string padding;
  for (int i = 0; i < 60; ++i) padding += "  DoUnrelatedWork(1234567890);\n";
  std::vector<Finding> findings;
  CheckRejectMetrics({"src/serve/foo.cc",
                      "void A() { metrics_.Increment(kAccepted); }\n" +
                          padding +
                          "void B() { return reject(OverloadedError(\"x\")); }\n"},
                     &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "reject-metrics");
}

// -------------------------------------------------------- registry parity

constexpr char kRegistrySnippet[] =
    "constexpr RegistryEntry kRegistry[] = {\n"
    "    {\"Alpha\", &MakeAlpha},\n"
    "    {\"Beta\", &MakeBeta},\n"
    "};\n";

TEST(SocLintTest, RegistryParityPassesWhenTestCoversAllNames) {
  std::vector<Finding> findings;
  CheckRegistryTestParity(
      {{"src/core/solver_registry.cc", kRegistrySnippet},
       {"tests/solver_registry_test.cc",
        "for (auto n : {\"Alpha\", \"Beta\"}) Check(n);\n"}},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, RegistryParityFlagsUncoveredSolver) {
  std::vector<Finding> findings;
  CheckRegistryTestParity(
      {{"src/core/solver_registry.cc", kRegistrySnippet},
       {"tests/solver_registry_test.cc", "Check(\"Alpha\");\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "registry-parity");
  EXPECT_NE(findings[0].message.find("\"Beta\""), std::string::npos);
}

TEST(SocLintTest, RegistryParityFlagsMissingTestFile) {
  std::vector<Finding> findings;
  CheckRegistryTestParity({{"src/core/solver_registry.cc", kRegistrySnippet}},
                          &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "registry-parity");
}

// -------------------------------------------------------- property parity

constexpr char kPropertyListSnippet[] =
    "constexpr const char* kPropertyCheckedSolvers[] = {\n"
    "    \"Alpha\", \"Beta\",\n"
    "};\n";

TEST(SocLintTest, PropertyParityPassesWhenListMatchesRegistry) {
  std::vector<Finding> findings;
  CheckPropertyParity(
      {{"src/core/solver_registry.cc", kRegistrySnippet},
       {"src/check/properties.cc", kPropertyListSnippet}},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, PropertyParityFlagsUncheckedSolver) {
  std::vector<Finding> findings;
  CheckPropertyParity(
      {{"src/core/solver_registry.cc", kRegistrySnippet},
       {"src/check/properties.cc",
        "constexpr const char* kPropertyCheckedSolvers[] = {\n"
        "    \"Alpha\",\n"
        "};\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "property-parity");
  EXPECT_NE(findings[0].message.find("\"Beta\""), std::string::npos);
  EXPECT_NE(findings[0].message.find("property suite"), std::string::npos);
}

TEST(SocLintTest, PropertyParityFlagsStaleListEntry) {
  std::vector<Finding> findings;
  CheckPropertyParity(
      {{"src/core/solver_registry.cc", kRegistrySnippet},
       {"src/check/properties.cc",
        "constexpr const char* kPropertyCheckedSolvers[] = {\n"
        "    \"Alpha\", \"Beta\", \"Retired\",\n"
        "};\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "property-parity");
  EXPECT_NE(findings[0].message.find("\"Retired\""), std::string::npos);
}

TEST(SocLintTest, PropertyParityFlagsMissingPropertiesFile) {
  std::vector<Finding> findings;
  CheckPropertyParity({{"src/core/solver_registry.cc", kRegistrySnippet}},
                      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "property-parity");
}

TEST(SocLintTest, PropertyParityFlagsBrokenList) {
  std::vector<Finding> findings;
  CheckPropertyParity(
      {{"src/core/solver_registry.cc", kRegistrySnippet},
       {"src/check/properties.cc", "int unrelated = 0;\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("kPropertyCheckedSolvers"),
            std::string::npos);
}

// ------------------------------------------------------------ span names

constexpr char kSpanTableSnippet[] =
    "inline constexpr const char* kSpanNames[] = {\n"
    "    \"solve\", \"mining\", \"degraded\",\n"
    "};\n";

TEST(SocLintTest, SpanNamePassesForCanonicalNames) {
  std::vector<Finding> findings;
  CheckSpanNameParity(
      {{"src/obs/span_names.h", kSpanTableSnippet},
       {"src/core/foo.cc",
        "void F(SolveContext* c) {\n"
        "  const PhaseScope phase(c, \"mining\");\n"
        "}\n"},
       {"src/serve/bar.cc",
        "void G(obs::TraceRecorder* r) {\n"
        "  obs::TraceSpan span(r, \"solve\", \"serve\");\n"
        "  r->RecordInstant(\"degraded\", \"serve\");\n"
        "}\n"}},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, SpanNameFlagsOffTableName) {
  std::vector<Finding> findings;
  CheckSpanNameParity(
      {{"src/obs/span_names.h", kSpanTableSnippet},
       {"src/lp/foo.cc",
        "void F(SolveContext* c) {\n"
        "  const PhaseScope phase(c, \"my_cool_phase\");\n"
        "}\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "span-name");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("\"my_cool_phase\""), std::string::npos);
}

TEST(SocLintTest, SpanNameSkipsCommentsVariablesAndOtherLayers) {
  std::vector<Finding> findings;
  CheckSpanNameParity(
      {{"src/obs/span_names.h", kSpanTableSnippet},
       // A mention in a comment is not a construction.
       {"src/core/a.cc", "// PhaseScope phase(c, \"bogus\");\n"},
       // A non-literal name cannot be checked statically.
       {"src/core/b.cc",
        "void F(SolveContext* c, const char* n) {\n"
        "  const PhaseScope phase(c, n);\n"
        "}\n"},
       // Layers outside core/lp/itemsets/serve are out of scope.
       {"tools/x.cc", "obs::TraceSpan span(r, \"bogus\", \"cli\");\n"},
       // The obs implementation itself is free to name parameters.
       {"src/obs/trace_recorder.h",
        "void RecordInstant(const char* name, const char* category);\n"}},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, SpanNameSkipsTreesWithoutTableButFlagsBrokenTable) {
  std::vector<Finding> findings;
  // No span_names.h at all: nothing to check against.
  CheckSpanNameParity(
      {{"src/core/foo.cc", "const PhaseScope phase(c, \"bogus\");\n"}},
      &findings);
  EXPECT_TRUE(findings.empty());

  // Present but unparseable table is itself a finding.
  CheckSpanNameParity({{"src/obs/span_names.h", "int x;\n"}}, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "span-name");
}

// ----------------------------------------------------- event field parity

constexpr char kShedConstantsSnippet[] =
    "inline constexpr char kShedReasonQueueFull[] = \"queue_full\";\n"
    "inline constexpr char kShedReasonShutdown[] = \"shutdown\";\n";

constexpr char kEventReasonsSnippet[] =
    "inline constexpr const char* kWideEventShedReasons[] = {\n"
    "    \"queue_full\",\n"
    "    \"shutdown\",\n"
    "};\n";

TEST(SocLintTest, EventFieldParityPassesWhenVocabulariesMatch) {
  std::vector<Finding> findings;
  CheckEventFieldParity(
      {{"src/serve/visibility_service.h", kShedConstantsSnippet},
       {"src/obs/wide_event.h", kEventReasonsSnippet}},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, EventFieldParityFlagsReasonTheSchemaCannotEncode) {
  std::vector<Finding> findings;
  CheckEventFieldParity(
      {{"src/serve/visibility_service.h",
        "inline constexpr char kShedReasonQueueFull[] = \"queue_full\";\n"
        "inline constexpr char kShedReasonShutdown[] = \"shutdown\";\n"
        "inline constexpr char kShedReasonBrownout[] = \"brownout\";\n"},
       {"src/obs/wide_event.h", kEventReasonsSnippet}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "event-field-parity");
  EXPECT_NE(findings[0].message.find("\"brownout\""), std::string::npos);
  EXPECT_NE(findings[0].message.find("fail its own schema"),
            std::string::npos);
}

TEST(SocLintTest, EventFieldParityFlagsStaleSchemaEntry) {
  std::vector<Finding> findings;
  CheckEventFieldParity(
      {{"src/serve/visibility_service.h", kShedConstantsSnippet},
       {"src/obs/wide_event.h",
        "inline constexpr const char* kWideEventShedReasons[] = {\n"
        "    \"queue_full\",\n"
        "    \"shutdown\",\n"
        "    \"retired_reason\",\n"
        "};\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "event-field-parity");
  EXPECT_NE(findings[0].message.find("\"retired_reason\""),
            std::string::npos);
}

TEST(SocLintTest, EventFieldParityIgnoresCommentMentions) {
  std::vector<Finding> findings;
  CheckEventFieldParity(
      {{"src/serve/visibility_service.h",
        "// kShedReason* constants; one of \"queue_full\" or so.\n"
        "inline constexpr char kShedReasonQueueFull[] = \"queue_full\";\n"
        "inline constexpr char kShedReasonShutdown[] = \"shutdown\";\n"},
       {"src/obs/wide_event.h", kEventReasonsSnippet}},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, EventFieldParitySkipsTreesWithoutSchemaButFlagsBrokenOnes) {
  std::vector<Finding> findings;
  // No wide_event.h at all: nothing to check against.
  CheckEventFieldParity(
      {{"src/serve/visibility_service.h", kShedConstantsSnippet}},
      &findings);
  EXPECT_TRUE(findings.empty());

  // Schema without the table is itself a finding.
  CheckEventFieldParity(
      {{"src/serve/visibility_service.h", kShedConstantsSnippet},
       {"src/obs/wide_event.h", "int x;\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "event-field-parity");
  EXPECT_NE(findings[0].message.find("kWideEventShedReasons"),
            std::string::npos);
}

// ------------------------------------------------------- kernel dispatch

constexpr char kFencedAvxTu[] =
    "#include \"kernels/kernels.h\"\n"
    "#if defined(__AVX2__)\n"
    "#include <immintrin.h>\n"
    "namespace soc::kernels {\n"
    "std::uint64_t SubsetMask(const std::uint64_t* b) {\n"
    "  __m256i v = _mm256_load_si256((const __m256i*)b);\n"
    "  return 0;\n"
    "}\n"
    "}\n"
    "#else\n"
    "namespace soc::kernels {\n"
    "const KernelOps* Avx2Ops() { return nullptr; }\n"
    "}\n"
    "#endif\n";

constexpr char kGoodDispatchTu[] =
    "#include \"kernels/kernels.h\"\n"
    "namespace soc::kernels {\n"
    "Tier DetectTier() { return Tier::kScalar; }\n"
    "const KernelOps* GetOps(Tier tier) {\n"
    "  return internal::ScalarOps();\n"
    "}\n"
    "}\n";

TEST(SocLintTest, KernelDispatchPassesForFencedTuAndScalarDispatch) {
  std::vector<Finding> findings;
  CheckKernelDispatch({{"src/kernels/kernels_avx2.cc", kFencedAvxTu},
                       {"src/kernels/dispatch.cc", kGoodDispatchTu},
                       // Comment mentions of intrinsics do not count.
                       {"src/core/greedy.cc",
                        "// The batch path beats _mm256_ era hand loops.\n"
                        "int x;\n"}},
                      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, KernelDispatchFlagsUnfencedIntrinsics) {
  std::vector<Finding> findings;
  CheckKernelDispatch(
      {{"src/kernels/kernels_avx2.cc",
        "#include <immintrin.h>\n"
        "__m256i Load(const void* p) { return _mm256_loadu_si256(p); }\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "kernel-dispatch");
  EXPECT_NE(findings[0].message.find("fenced"), std::string::npos);
}

TEST(SocLintTest, KernelDispatchFlagsIntrinsicsOutsideKernels) {
  std::vector<Finding> findings;
  CheckKernelDispatch(
      {{"src/core/greedy.cc",
        "#if defined(__AVX2__)\n"
        "#include <immintrin.h>\n"
        "#endif\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "kernel-dispatch");
  EXPECT_NE(findings[0].message.find("outside src/kernels"),
            std::string::npos);
}

TEST(SocLintTest, KernelDispatchFlagsMissingElseAndScalarlessDispatch) {
  std::vector<Finding> findings;
  // Fence without an #else: nothing registers the fallback.
  CheckKernelDispatch(
      {{"src/kernels/kernels_avx512.cc",
        "#if defined(__AVX512F__)\n"
        "#include <immintrin.h>\n"
        "int Use() { return (int)_mm512_reduce_add_epi64(__m512i{}); }\n"
        "#endif\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("#else"), std::string::npos);

  // A dispatch TU that never touches ScalarOps cannot be total.
  findings.clear();
  CheckKernelDispatch(
      {{"src/kernels/dispatch.cc",
        "Tier DetectTier() { return Tier::kAvx2; }\n"
        "const KernelOps* GetOps(Tier tier) { return Avx2Ops(); }\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("ScalarOps"), std::string::npos);
}

// ---------------------------------------------------------- cache metrics

constexpr char kCacheHeaderSnippet[] =
    "inline constexpr char kResultCacheHits[] = \"result_cache.hits\";\n"
    "inline constexpr char kResultCacheEvictions[] = "
    "\"result_cache.evictions\";\n";

TEST(SocLintTest, CacheMetricsPassesWhenEveryPathCounts) {
  std::vector<Finding> findings;
  CheckCacheMetrics(
      {{"src/tenant/result_cache.h", kCacheHeaderSnippet},
       {"src/tenant/result_cache.cc",
        "CachedResultPtr ResultCache::Probe(const Key& key) {\n"
        "  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);\n"
        "  Count(kResultCacheHits);\n"
        "  return it->second.result;\n"
        "}\n"
        "void ResultCache::Evict() {\n"
        "  lru_.pop_back();\n"
        "  Count(kResultCacheEvictions);\n"
        "}\n"}},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, CacheMetricsFlagsNeverIncrementedConstant) {
  std::vector<Finding> findings;
  CheckCacheMetrics(
      {{"src/tenant/result_cache.h", kCacheHeaderSnippet},
       {"src/tenant/result_cache.cc",
        "CachedResultPtr ResultCache::Probe(const Key& key) {\n"
        "  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);\n"
        "  Count(kResultCacheHits);\n"
        "  return it->second.result;\n"
        "}\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "cache-metrics");
  EXPECT_NE(findings[0].message.find("kResultCacheEvictions"),
            std::string::npos);
}

TEST(SocLintTest, CacheMetricsFlagsUncountedEvictionPath) {
  std::vector<Finding> findings;
  CheckCacheMetrics(
      {{"src/tenant/result_cache.h", kCacheHeaderSnippet},
       {"src/tenant/result_cache.cc",
        // Constants referenced so the parity half passes; the pop_back
        // sits alone in a window with no Count/Increment.
        "const char* used[] = {kResultCacheHits, kResultCacheEvictions};\n" +
            std::string(500, '\n') +
            "void ResultCache::Evict() {\n"
            "  lru_.pop_back();\n"
            "  entries_.erase(*victim);\n"
            "}\n" +
            std::string(500, '\n')}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "cache-metrics");
  EXPECT_NE(findings[0].message.find("eviction"), std::string::npos);
}

TEST(SocLintTest, CacheMetricsFlagsOrphanedPairAndSkipsAbsentTree) {
  std::vector<Finding> findings;
  CheckCacheMetrics({{"src/core/foo.cc", "int x;\n"}}, &findings);
  EXPECT_TRUE(findings.empty());

  CheckCacheMetrics({{"src/tenant/result_cache.h", kCacheHeaderSnippet}},
                    &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "cache-metrics");
  EXPECT_NE(findings[0].message.find("travel together"), std::string::npos);
}

TEST(SocLintTest, SpanNameCoversTenantLayer) {
  std::vector<Finding> findings;
  CheckSpanNameParity(
      {{"src/obs/span_names.h", kSpanTableSnippet},
       {"src/tenant/shard.cc",
        "void F(obs::TraceRecorder* r) {\n"
        "  obs::TraceSpan span(r, \"made_up_span\", \"tenant\");\n"
        "}\n"}},
      &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "span-name");
  EXPECT_NE(findings[0].message.find("\"made_up_span\""), std::string::npos);
}

// ------------------------------------------------------------- aggregate

TEST(SocLintTest, LintTreeAggregatesSortedFindingsAndJson) {
  const std::vector<SourceFile> files = {
      {"src/core/zeta.cc", "#include \"serve/metrics.h\"\n"},
      {"src/core/alpha.h", "int x;\n"},
  };
  const std::vector<Finding> findings = RunAll(files);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].path, "src/core/alpha.h");  // Sorted by path.
  EXPECT_TRUE(HasRule(findings, "layering"));
  EXPECT_TRUE(HasRule(findings, "include-guard"));

  const std::string json = FindingsToJson(findings);
  EXPECT_NE(json.find("\"rule\":\"layering\""), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"src/core/alpha.h\""), std::string::npos);

  EXPECT_EQ(FindingsToJson({}), "{\"schema_version\":2,\"findings\":[]}");
}

TEST(SocLintTest, JsonOrdersFindingsByRuleForStableArtifacts) {
  // Input deliberately out of rule order; the artifact must not care.
  std::vector<Finding> findings;
  findings.push_back({"span-name", "src/b.cc", 3, "zzz"});
  findings.push_back({"layering", "src/a.cc", 9, "aaa"});
  const std::string json = FindingsToJson(findings);
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
  EXPECT_LT(json.find("\"rule\":\"layering\""),
            json.find("\"rule\":\"span-name\""));
}

TEST(SocLintTest, SarifCarriesRulesResultsAndLocations) {
  std::vector<Finding> findings;
  findings.push_back({"lock-order", "src/tenant/shard.cc", 42, "inversion"});
  const std::string sarif = FindingsToSarif(findings);
  EXPECT_NE(sarif.find("\"version\":\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\":\"soc_lint\""), std::string::npos);
  // The rule table lists every registered rule, found or not.
  EXPECT_NE(sarif.find("\"id\":\"condvar-wait-loop\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\":\"lock-order\""), std::string::npos);
  EXPECT_NE(sarif.find("\"uri\":\"src/tenant/shard.cc\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\":42"), std::string::npos);
  // File-level findings (line 0) still emit a valid 1-based region.
  findings.clear();
  findings.push_back({"registry-parity", "src/core/solver_registry.cc", 0,
                      "missing"});
  EXPECT_NE(FindingsToSarif(findings).find("\"startLine\":1"),
            std::string::npos);
}

TEST(SocLintTest, CleanTreeSnippetsProduceNoFindings) {
  const std::vector<SourceFile> files = {
      {"src/core/ok.h",
       "#ifndef SOC_CORE_OK_H_\n#define SOC_CORE_OK_H_\n#endif\n"},
      {"src/core/ok.cc",
       "Status Solve(SolveContext* context) {\n"
       "  while (!context->Checkpoint()) {}\n"
       "  return Status::OK();\n"
       "}\n"},
  };
  EXPECT_TRUE(RunAll(files).empty());
}

// ------------------------------------------------- naked-thread variants

TEST(SocLintTest, NakedThreadBansAsync) {
  std::vector<Finding> findings;
  CheckNakedThread({"src/serve/bad.cc",
                    "auto f = std::async(std::launch::async, Work);\n"},
                   &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "naked-thread");
  EXPECT_NE(findings[0].message.find("std::async"), std::string::npos);
}

TEST(SocLintTest, NakedThreadBansJthread) {
  std::vector<Finding> findings;
  CheckNakedThread({"src/serve/bad.cc", "std::jthread t(Work);\n"},
                   &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("std::jthread"), std::string::npos);
}

TEST(SocLintTest, NakedThreadBansDetachedTemporaries) {
  std::vector<Finding> findings;
  CheckNakedThread({"src/serve/bad.cc", "std::thread(Work).detach();\n"},
                   &findings);
  // Both the construction and the detach are findings.
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[1].message.find("detach"), std::string::npos);

  findings.clear();
  CheckNakedThread({"src/serve/bad2.cc", "worker->detach();\n"}, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("join point"), std::string::npos);
}

TEST(SocLintTest, NakedThreadStillAllowsHardwareConcurrencyAndComments) {
  std::vector<Finding> findings;
  CheckNakedThread(
      {"src/serve/ok.cc",
       "int n = std::thread::hardware_concurrency();\n"
       "// std::async in a comment is fine; detach() too.\n"},
      &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

// ------------------------------------------------------------ fix mode

TEST(SocLintTest, FixIncludeGuardRewritesNonCanonicalGuard) {
  const SourceFile file{
      "src/serve/widget.h",
      "// Header comment.\n"
      "#ifndef WIDGET_H\n#define WIDGET_H\n"
      "int x;\n"
      "#endif  // WIDGET_H\n"};
  std::string fixed;
  ASSERT_TRUE(FixIncludeGuard(file, &fixed));
  EXPECT_EQ(fixed,
            "// Header comment.\n"
            "#ifndef SOC_SERVE_WIDGET_H_\n#define SOC_SERVE_WIDGET_H_\n"
            "int x;\n"
            "#endif  // SOC_SERVE_WIDGET_H_\n");

  // The fixed header lints clean...
  std::vector<Finding> findings;
  CheckIncludeGuard({file.path, fixed}, &findings);
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);

  // ...and the rewrite is idempotent.
  std::string again;
  EXPECT_FALSE(FixIncludeGuard({file.path, fixed}, &again));
}

TEST(SocLintTest, FixIncludeGuardLeavesUnfixableHeadersAlone) {
  std::string fixed;
  // No guard at all: nothing mechanical to do.
  EXPECT_FALSE(FixIncludeGuard({"src/serve/a.h", "int x;\n"}, &fixed));
  // Guard whose #define does not match: broken, not just misnamed.
  EXPECT_FALSE(FixIncludeGuard(
      {"src/serve/b.h", "#ifndef B_H\n#define OTHER_H\n#endif\n"}, &fixed));
  // #pragma once headers have no guard name to canonicalize.
  EXPECT_FALSE(
      FixIncludeGuard({"src/serve/c.h", "#pragma once\nint x;\n"}, &fixed));
}

// --------------------------------------------------- baseline engine

TEST(SocLintTest, BaselineRoundTripsAndSuppresses) {
  std::vector<Finding> findings;
  findings.push_back({"layering", "src/core/a.cc", 7, "no serve includes"});
  findings.push_back({"span-name", "src/core/b.cc", 9, "bad span"});

  const std::string text = WriteBaseline(findings);
  const std::set<std::string> baseline = ParseBaseline(text);
  EXPECT_EQ(baseline.size(), 2u);
  // Everything pinned: nothing survives.
  EXPECT_TRUE(ApplyBaseline(findings, baseline).empty());

  // A new finding in a pinned file still reports: the message is part
  // of the key.
  findings.push_back({"layering", "src/core/a.cc", 8, "another include"});
  const std::vector<Finding> kept = ApplyBaseline(findings, baseline);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].message, "another include");

  // Line numbers are not part of the key: drifting code keeps the pin.
  std::vector<Finding> drifted;
  drifted.push_back({"layering", "src/core/a.cc", 99, "no serve includes"});
  EXPECT_TRUE(ApplyBaseline(drifted, baseline).empty());
}

TEST(SocLintTest, BaselineParserSkipsCommentsAndBlanks) {
  const std::set<std::string> baseline =
      ParseBaseline("# comment\n\nlayering\tsrc/a.cc\tmsg\n");
  EXPECT_EQ(baseline.size(), 1u);
  EXPECT_EQ(baseline.count("layering\tsrc/a.cc\tmsg"), 1u);
}

TEST(SocLintTest, InlineSuppressionDropsFindingOnSameOrPreviousLine) {
  // Same line.
  std::vector<Finding> findings = RunAll(
      {{"src/core/sup.cc",
        "void F() { std::thread t(Work); }  "
        "// soc-lint-suppress(naked-thread)\n"}});
  EXPECT_FALSE(HasRule(findings, "naked-thread"))
      << FindingsToJson(findings);

  // Previous line (statement wraps).
  findings = RunAll({{"src/core/sup2.cc",
                      "// soc-lint-suppress(naked-thread)\n"
                      "std::thread t(Work);\n"}});
  EXPECT_FALSE(HasRule(findings, "naked-thread"))
      << FindingsToJson(findings);

  // The wrong rule id suppresses nothing.
  findings = RunAll({{"src/core/sup3.cc",
                      "std::thread t(Work);  "
                      "// soc-lint-suppress(layering)\n"}});
  EXPECT_TRUE(HasRule(findings, "naked-thread"));
}

TEST(SocLintTest, PassTableListsLockHierarchyRules) {
  bool found = false;
  for (const PassInfo& pass : Passes()) {
    if (std::string(pass.name) == "lock-hierarchy") {
      found = true;
      EXPECT_EQ(pass.rules.size(), 5u);
    }
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------ lock-hierarchy pass

// A fake rank table snippet the pass parses in place of the real
// src/common/lock_rank.h.
const char kRankTable[] =
    "#ifndef SOC_COMMON_LOCK_RANK_H_\n#define SOC_COMMON_LOCK_RANK_H_\n"
    "struct LockRank { int rank; const char* name; };\n"
    "inline constexpr LockRank kLow{10, \"low\"};\n"
    "inline constexpr LockRank kHigh{20, \"high\"};\n"
    "#endif\n";

std::vector<Finding> RunLockPass(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  CheckLockHierarchy(files, &findings);
  return findings;
}

TEST(SocLintTest, HarvestBuildsRegistryWithRanksGuardsAndRequires) {
  const LockRegistry registry = HarvestLocks(
      {{"src/common/lock_rank.h", kRankTable},
       {"src/core/store.h",
        "class Store {\n"
        " public:\n"
        "  void Touch() SOC_REQUIRES(mu_);\n"
        " private:\n"
        "  Mutex mu_{kLow};\n"
        "  mutable SharedMutex map_mu_{kHigh};\n"
        "  int value_ SOC_GUARDED_BY(mu_);\n"
        "};\n"}});
  ASSERT_EQ(registry.locks.size(), 2u);

  const LockDecl* mu = registry.Find("Store::mu_");
  ASSERT_NE(mu, nullptr);
  EXPECT_EQ(mu->rank, 10);
  EXPECT_EQ(mu->rank_label, "low");
  EXPECT_FALSE(mu->shared);

  const LockDecl* map_mu = registry.Find("Store::map_mu_");
  ASSERT_NE(map_mu, nullptr);
  EXPECT_EQ(map_mu->rank, 20);
  EXPECT_TRUE(map_mu->shared);

  const auto guard = registry.guarded_by.find("Store::value_");
  ASSERT_NE(guard, registry.guarded_by.end());
  EXPECT_EQ(guard->second, "Store::mu_");

  const auto req = registry.requires_locks.find("Store::Touch");
  ASSERT_NE(req, registry.requires_locks.end());
  ASSERT_EQ(req->second.size(), 1u);
  EXPECT_EQ(req->second[0], "Store::mu_");
}

TEST(SocLintTest, SeededTwoMutexInversionIsALockOrderFinding) {
  // The canonical seeded defect: AB() nests a_ -> b_, BA() nests
  // b_ -> a_. Two threads running one each deadlock.
  const std::vector<Finding> findings = RunLockPass(
      {{"src/core/pair.h",
        "class Pair {\n"
        " public:\n"
        "  void AB() {\n"
        "    MutexLock a(a_);\n"
        "    MutexLock b(b_);\n"
        "  }\n"
        "  void BA() {\n"
        "    MutexLock b(b_);\n"
        "    MutexLock a(a_);\n"
        "  }\n"
        " private:\n"
        "  Mutex a_;\n"
        "  Mutex b_;\n"
        "};\n"}});
  ASSERT_TRUE(HasRule(findings, "lock-order")) << FindingsToJson(findings);
  std::string message;
  for (const Finding& f : findings) {
    if (f.rule == "lock-order") message = f.message;
  }
  EXPECT_NE(message.find("Pair::a_"), std::string::npos) << message;
  EXPECT_NE(message.find("Pair::b_"), std::string::npos) << message;
}

TEST(SocLintTest, ConsistentNestingOrderIsClean) {
  const std::vector<Finding> findings = RunLockPass(
      {{"src/core/pair.h",
        "class Pair {\n"
        " public:\n"
        "  void AB() { MutexLock a(a_); MutexLock b(b_); }\n"
        "  void AlsoAB() { MutexLock a(a_); MutexLock b(b_); }\n"
        " private:\n"
        "  Mutex a_;\n"
        "  Mutex b_;\n"
        "};\n"}});
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, CrossTuCallChainInversionIsFound) {
  // Alpha::Step holds Alpha::mu_ and calls Beta::Compute (resolved
  // project-wide), which takes Beta::mu_. Beta::Reverse holds
  // Beta::mu_ and calls Alpha::Grab, which takes Alpha::mu_. The cycle
  // only exists through the cross-TU call graph.
  const std::vector<Finding> findings = RunLockPass(
      {{"src/core/alpha.h",
        "class Alpha {\n"
        " public:\n"
        "  void Step() {\n"
        "    MutexLock lock(mu_);\n"
        "    Compute();\n"
        "  }\n"
        "  void Grab() { MutexLock lock(mu_); }\n"
        " private:\n"
        "  Mutex mu_;\n"
        "};\n"},
       {"src/serve_less/beta.h",  // Different TU, non-ranked dir.
        "class Beta {\n"
        " public:\n"
        "  void Compute() { MutexLock lock(mu_); }\n"
        "  void Reverse() {\n"
        "    MutexLock lock(mu_);\n"
        "    Grab();\n"
        "  }\n"
        " private:\n"
        "  Mutex mu_;\n"
        "};\n"}});
  ASSERT_TRUE(HasRule(findings, "lock-order")) << FindingsToJson(findings);
  std::string message;
  for (const Finding& f : findings) {
    if (f.rule == "lock-order") message = f.message;
  }
  // The witness names the call chain, not just the endpoints.
  EXPECT_NE(message.find("via"), std::string::npos) << message;
}

TEST(SocLintTest, RequiresAnnotationSeedsHeldSetAtEntry) {
  // Helper() never takes a_ itself — SOC_REQUIRES says the caller
  // already holds it — so the a_ -> b_ edge exists only through the
  // annotation; Mixed() supplies the b_ -> a_ edge to close the cycle.
  const std::vector<Finding> findings = RunLockPass(
      {{"src/core/store.h",
        "class Store {\n"
        " public:\n"
        "  void Helper() SOC_REQUIRES(a_) { MutexLock lock(b_); }\n"
        "  void Mixed() {\n"
        "    MutexLock b(b_);\n"
        "    MutexLock a(a_);\n"
        "  }\n"
        " private:\n"
        "  Mutex a_;\n"
        "  Mutex b_;\n"
        "};\n"}});
  EXPECT_TRUE(HasRule(findings, "lock-order")) << FindingsToJson(findings);
}

TEST(SocLintTest, DescendingRankAcquisitionIsARankOrderFinding) {
  const std::vector<Finding> findings = RunLockPass(
      {{"src/common/lock_rank.h", kRankTable},
       {"src/core/ranked.h",
        "class Ranked {\n"
        " public:\n"
        "  void Down() {\n"
        "    MutexLock h(high_);\n"
        "    MutexLock l(low_);\n"
        "  }\n"
        " private:\n"
        "  Mutex low_{kLow};\n"
        "  Mutex high_{kHigh};\n"
        "};\n"}});
  ASSERT_TRUE(HasRule(findings, "lock-rank-order"))
      << FindingsToJson(findings);
  std::string message;
  for (const Finding& f : findings) {
    if (f.rule == "lock-rank-order") message = f.message;
  }
  EXPECT_NE(message.find("strictly increase"), std::string::npos) << message;
}

TEST(SocLintTest, AscendingRankAcquisitionIsClean) {
  const std::vector<Finding> findings = RunLockPass(
      {{"src/common/lock_rank.h", kRankTable},
       {"src/core/ranked.h",
        "class Ranked {\n"
        " public:\n"
        "  void Up() {\n"
        "    MutexLock l(low_);\n"
        "    MutexLock h(high_);\n"
        "  }\n"
        " private:\n"
        "  Mutex low_{kLow};\n"
        "  Mutex high_{kHigh};\n"
        "};\n"}});
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, UnrankedServingMutexIsAMissingRankFinding) {
  // serve/ requires ranks...
  std::vector<Finding> findings = RunLockPass(
      {{"src/serve/thing.h", "class Thing { Mutex mu_; };\n"}});
  ASSERT_EQ(findings.size(), 1u) << FindingsToJson(findings);
  EXPECT_EQ(findings[0].rule, "lock-rank-missing");

  // ...core/ does not...
  findings = RunLockPass(
      {{"src/core/thing.h", "class Thing { Mutex mu_; };\n"}});
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);

  // ...and a ranked serving mutex is clean.
  findings = RunLockPass(
      {{"src/common/lock_rank.h", kRankTable},
       {"src/serve/thing.h", "class Thing { Mutex mu_{kLow}; };\n"}});
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, UnknownRankNameIsAMissingRankFinding) {
  const std::vector<Finding> findings = RunLockPass(
      {{"src/common/lock_rank.h", kRankTable},
       {"src/serve/thing.h", "class Thing { Mutex mu_{kBogus}; };\n"}});
  ASSERT_EQ(findings.size(), 1u) << FindingsToJson(findings);
  EXPECT_EQ(findings[0].rule, "lock-rank-missing");
  EXPECT_NE(findings[0].message.find("kBogus"), std::string::npos);
}

TEST(SocLintTest, BlockingCallUnderHeldLockIsFlagged) {
  const std::vector<Finding> findings = RunLockPass(
      {{"src/core/runner.cc",
        "class Runner {\n"
        " public:\n"
        "  void Bad() {\n"
        "    MutexLock lock(mu_);\n"
        "    solver.Solve(context);\n"
        "  }\n"
        " private:\n"
        "  Mutex mu_;\n"
        "};\n"}});
  ASSERT_TRUE(HasRule(findings, "blocking-under-lock"))
      << FindingsToJson(findings);
}

TEST(SocLintTest, BlockingCallAfterScopeCloseIsClean) {
  const std::vector<Finding> findings = RunLockPass(
      {{"src/core/runner.cc",
        "class Runner {\n"
        " public:\n"
        "  void Good() {\n"
        "    {\n"
        "      MutexLock lock(mu_);\n"
        "      state = Snapshot();\n"
        "    }\n"
        "    solver.Solve(context);\n"
        "  }\n"
        " private:\n"
        "  Mutex mu_;\n"
        "};\n"}});
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, BareCondVarWaitOutsideWhileIsFlagged) {
  const std::vector<Finding> findings = RunLockPass(
      {{"src/core/waiter.cc",
        "class Waiter {\n"
        " public:\n"
        "  void Bad() {\n"
        "    MutexLock lock(mu_);\n"
        "    cv_.Wait(&mu_);\n"
        "  }\n"
        " private:\n"
        "  Mutex mu_;\n"
        "  CondVar cv_;\n"
        "};\n"}});
  ASSERT_EQ(findings.size(), 1u) << FindingsToJson(findings);
  EXPECT_EQ(findings[0].rule, "condvar-wait-loop");
}

TEST(SocLintTest, WhileWrappedWaitAndTimedWaitForAreClean) {
  const std::vector<Finding> findings = RunLockPass(
      {{"src/core/waiter.cc",
        "class Waiter {\n"
        " public:\n"
        "  void Braced() {\n"
        "    MutexLock lock(mu_);\n"
        "    while (!ready_) {\n"
        "      cv_.Wait(&mu_);\n"
        "    }\n"
        "  }\n"
        "  void Unbraced() {\n"
        "    MutexLock lock(mu_);\n"
        "    while (!ready_) cv_.Wait(&mu_);\n"
        "  }\n"
        "  void Timed() {\n"
        "    MutexLock lock(mu_);\n"
        "    cv_.WaitFor(&mu_, timeout);\n"
        "  }\n"
        " private:\n"
        "  Mutex mu_;\n"
        "  CondVar cv_;\n"
        "};\n"}});
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

TEST(SocLintTest, DirectSameLockReentryIsFlagged) {
  const std::vector<Finding> findings = RunLockPass(
      {{"src/core/reenter.cc",
        "class Reenter {\n"
        " public:\n"
        "  void Twice() {\n"
        "    MutexLock a(mu_);\n"
        "    MutexLock b(mu_);\n"
        "  }\n"
        " private:\n"
        "  Mutex mu_;\n"
        "};\n"}});
  ASSERT_TRUE(HasRule(findings, "lock-order")) << FindingsToJson(findings);
}

TEST(SocLintTest, LockPassIgnoresNonSrcFiles) {
  const std::vector<Finding> findings = RunLockPass(
      {{"tests/fixture.cc",
        "class Pair {\n"
        " public:\n"
        "  void AB() { MutexLock a(a_); MutexLock b(b_); }\n"
        "  void BA() { MutexLock b(b_); MutexLock a(a_); }\n"
        " private:\n"
        "  Mutex a_;\n"
        "  Mutex b_;\n"
        "};\n"}});
  EXPECT_TRUE(findings.empty()) << FindingsToJson(findings);
}

}  // namespace
}  // namespace soc::lint
