// SloEngine tests: burn-rate arithmetic against the SRE-handbook
// definition, the fast+slow multi-window alert gate, latency-threshold
// classification, window wraparound, clock edge cases (records near
// t=0, backwards steps from an injected clock), and tenant-cardinality
// folding into "other".

#include "obs/slo.h"

#include <string>

#include <gtest/gtest.h>

namespace soc::obs {
namespace {

// Finds one tenant's state in a report; fails the test when absent.
TenantSlo StateOf(const SloReport& report, const std::string& tenant) {
  for (const auto& [id, state] : report.tenants) {
    if (id == tenant) return state;
  }
  ADD_FAILURE() << "tenant " << tenant << " not in report";
  return {};
}

SloEngineOptions TestOptions(double* now) {
  SloEngineOptions options;
  options.fast_window_s = 10;
  options.slow_window_s = 100;
  options.fast_burn_threshold = 2.0;
  options.slow_burn_threshold = 1.0;
  options.clock = [now] { return *now; };
  return options;
}

TEST(SloEngineTest, BurnRateMatchesTheHandbookDefinition) {
  double now = 0;
  SloEngineOptions options = TestOptions(&now);
  options.default_objective.availability_target = 0.9;  // Budget 0.1.
  SloEngine engine(options);

  for (int i = 0; i < 5; ++i) engine.RecordOutcome("acme", true, 1);
  for (int i = 0; i < 5; ++i) engine.RecordOutcome("acme", false, 0);

  const TenantSlo state = StateOf(engine.Report(), "acme");
  EXPECT_EQ(state.good, 5);
  EXPECT_EQ(state.bad, 5);
  // bad_frac 0.5 over budget 0.1 -> burning 5x too fast, both windows.
  EXPECT_DOUBLE_EQ(state.burn_fast, 5.0);
  EXPECT_DOUBLE_EQ(state.burn_slow, 5.0);
}

TEST(SloEngineTest, AlertRequiresBothWindowsToBurn) {
  double now = 0;
  SloEngineOptions options = TestOptions(&now);
  options.default_objective.availability_target = 0.5;  // Budget 0.5.
  // With budget 0.5 the burn tops out at 2.0 (all-bad), so thresholds
  // sit below that ceiling.
  options.fast_burn_threshold = 1.5;
  options.slow_burn_threshold = 1.2;
  SloEngine engine(options);

  // A long good history fills the slow window.
  for (now = 0; now < 95; now += 1) engine.RecordOutcome("acme", true, 1);

  // A heavy bad burst saturates the fast window: 50 bads against the 4
  // goods still inside it burn at (50/54)/0.5 = 1.85 > 1.5.
  for (now = 95; now < 100; now += 1) {
    for (int i = 0; i < 10; ++i) engine.RecordOutcome("acme", false, 0);
  }
  TenantSlo state = StateOf(engine.Report(), "acme");
  EXPECT_GT(state.burn_fast, options.fast_burn_threshold);
  // The slow window still remembers the good history: no alert yet.
  EXPECT_LE(state.burn_slow, options.slow_burn_threshold);
  EXPECT_FALSE(state.alerting);

  // Sustain the outage until the slow window burns too.
  for (now = 100; now < 200; now += 1) {
    engine.RecordOutcome("acme", false, 0);
  }
  state = StateOf(engine.Report(), "acme");
  EXPECT_GT(state.burn_fast, options.fast_burn_threshold);
  EXPECT_GT(state.burn_slow, options.slow_burn_threshold);
  EXPECT_TRUE(state.alerting);
}

TEST(SloEngineTest, SlowSuccessCountsAsBad) {
  double now = 0;
  SloEngineOptions options = TestOptions(&now);
  SloEngine engine(options);
  SloObjective strict;
  strict.latency_threshold_ms = 10;
  strict.availability_target = 0.5;
  engine.SetObjective("acme", strict);

  engine.RecordOutcome("acme", true, 5);    // Good: ok and fast.
  engine.RecordOutcome("acme", true, 50);   // Bad: ok but slow.
  engine.RecordOutcome("acme", false, 1);   // Bad: failed.

  const TenantSlo state = StateOf(engine.Report(), "acme");
  EXPECT_EQ(state.good, 1);
  EXPECT_EQ(state.bad, 2);
  EXPECT_DOUBLE_EQ(state.objective.latency_threshold_ms, 10);
}

TEST(SloEngineTest, EmptyEngineAndZeroTrafficTenantsDoNotAlert) {
  double now = 0;
  SloEngine engine(TestOptions(&now));
  EXPECT_TRUE(engine.Report().tenants.empty());

  SloObjective objective;
  engine.SetObjective("idle", objective);
  const TenantSlo state = StateOf(engine.Report(), "idle");
  EXPECT_EQ(state.good, 0);
  EXPECT_EQ(state.bad, 0);
  EXPECT_DOUBLE_EQ(state.burn_fast, 0);
  EXPECT_DOUBLE_EQ(state.burn_slow, 0);
  EXPECT_FALSE(state.alerting);
}

TEST(SloEngineTest, WindowedBurnForgetsWhatTheLedgerRemembers) {
  double now = 0;
  SloEngineOptions options = TestOptions(&now);
  options.default_objective.availability_target = 0.5;
  SloEngine engine(options);

  // An all-bad spike...
  for (int i = 0; i < 10; ++i) engine.RecordOutcome("acme", false, 0);
  TenantSlo state = StateOf(engine.Report(), "acme");
  EXPECT_GT(state.burn_slow, 0);

  // ...slides out of both windows after 200 idle seconds.
  now = 250;
  for (int i = 0; i < 10; ++i) engine.RecordOutcome("acme", true, 1);
  state = StateOf(engine.Report(), "acme");
  EXPECT_DOUBLE_EQ(state.burn_fast, 0);
  EXPECT_DOUBLE_EQ(state.burn_slow, 0);
  EXPECT_FALSE(state.alerting);
  // The cumulative ledger keeps the whole history.
  EXPECT_EQ(state.good, 10);
  EXPECT_EQ(state.bad, 10);
}

TEST(SloEngineTest, RecordsNearTimeZeroStayInBounds) {
  // Regression: a report taken when now_s < slow_window_s used to index
  // ring buckets with a negative start second.
  double now = 1;
  SloEngineOptions options = TestOptions(&now);
  options.default_objective.availability_target = 0.5;
  SloEngine engine(options);
  engine.RecordOutcome("acme", false, 0);
  const TenantSlo state = StateOf(engine.Report(), "acme");
  EXPECT_EQ(state.bad, 1);
  EXPECT_DOUBLE_EQ(state.burn_fast, 2.0);
  EXPECT_DOUBLE_EQ(state.burn_slow, 2.0);
}

TEST(SloEngineTest, BackwardsClockStepClampsIntoNewestBucket) {
  double now = 50;
  SloEngineOptions options = TestOptions(&now);
  options.default_objective.availability_target = 0.5;
  SloEngine engine(options);
  engine.RecordOutcome("acme", false, 0);

  now = 20;  // An injected clock may step backwards; steady ones don't.
  engine.RecordOutcome("acme", false, 0);
  engine.RecordOutcome("acme", true, 1);

  const TenantSlo state = StateOf(engine.Report(), "acme");
  EXPECT_EQ(state.good, 1);
  EXPECT_EQ(state.bad, 2);
  // All three land in the newest bucket's window: nothing lost.
  EXPECT_DOUBLE_EQ(state.burn_slow, (2.0 / 3.0) / 0.5);
}

TEST(SloEngineTest, TenantOverflowFoldsIntoOther) {
  double now = 0;
  SloEngineOptions options = TestOptions(&now);
  options.max_tenants = 2;
  SloEngine engine(options);

  engine.RecordOutcome("a", true, 1);
  engine.RecordOutcome("b", true, 1);
  engine.RecordOutcome("c", false, 0);  // Third distinct tenant.
  engine.RecordOutcome("d", false, 0);  // Fourth shares the bucket.
  engine.RecordOutcome("a", true, 1);   // Known tenants keep recording.

  const SloReport report = engine.Report();
  EXPECT_EQ(report.tenants.size(), 3u);  // a, b, other.
  EXPECT_EQ(StateOf(report, "a").good, 2);
  EXPECT_EQ(StateOf(report, "b").good, 1);
  EXPECT_EQ(StateOf(report, "other").bad, 2);
}

TEST(SloEngineTest, ReportJsonCarriesEveryTenant) {
  double now = 0;
  SloEngine engine(TestOptions(&now));
  engine.RecordOutcome("acme", true, 1);
  engine.RecordOutcome("zeta", false, 0);
  const std::string json = engine.Report().ToJson().ToString();
  EXPECT_NE(json.find("\"acme\""), std::string::npos);
  EXPECT_NE(json.find("\"zeta\""), std::string::npos);
  EXPECT_NE(json.find("\"burn_fast\""), std::string::npos);
  EXPECT_NE(json.find("\"alerting\""), std::string::npos);
}

}  // namespace
}  // namespace soc::obs
