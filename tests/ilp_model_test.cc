// Structural tests of the Sec IV.B ILP formulation (with and without the
// presolve improvement) and of the IlpSocSolver options.

#include "core/ilp_solver.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "datagen/workload.h"
#include "paper_example.h"

namespace soc {
namespace {

TEST(IlpModelTest, PresolvedModelShape) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();  // 5 attributes set.
  const SocIlpModel built = BuildConjunctiveSocModel(log, t, 3);
  // x variables: only the 5 attributes of t.
  EXPECT_EQ(built.num_x, 5);
  // y variables: only the 4 satisfiable queries (q5 needs Turbo).
  EXPECT_EQ(built.num_y, 4);
  EXPECT_EQ(built.model.num_variables(), 9);
  // Constraints: 1 budget + Σ|q_i| link rows = 1 + 8.
  EXPECT_EQ(built.model.num_constraints(), 9);
  EXPECT_TRUE(built.model.HasIntegralObjective());
}

TEST(IlpModelTest, PaperModelShape) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  const SocIlpModel built =
      BuildConjunctiveSocModel(log, t, 3, /*presolve=*/false);
  // The literal Sec IV.B model: one x per attribute, one y per query.
  EXPECT_EQ(built.num_x, 6);
  EXPECT_EQ(built.num_y, 5);
  // Attributes outside t are bounded to zero.
  int fixed = 0;
  for (int j = 0; j < built.num_x; ++j) {
    if (built.model.variable(j).upper == 0.0) ++fixed;
  }
  EXPECT_EQ(fixed, 1);  // Turbo.
  // Link rows for all queries: Σ|q_i| = 10.
  EXPECT_EQ(built.model.num_constraints(), 11);
}

TEST(IlpModelTest, BudgetRowBindsSelection) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  const SocIlpModel built = BuildConjunctiveSocModel(log, t, 2);
  const lp::Constraint& budget = built.model.constraint(0);
  EXPECT_EQ(budget.rhs, 2.0);
  EXPECT_EQ(budget.vars.size(), static_cast<std::size_t>(built.num_x));
}

TEST(IlpModelTest, PresolveAndPaperModelAgreeOnOptimum) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  for (int m = 0; m <= 6; ++m) {
    IlpSocOptions presolved;
    IlpSocOptions literal;
    literal.presolve = false;
    const IlpSocSolver a{presolved};
    const IlpSocSolver b{literal};
    auto sa = a.Solve(log, t, m);
    auto sb = b.Solve(log, t, m);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(sb.ok());
    EXPECT_EQ(sa->satisfied_queries, sb->satisfied_queries) << "m=" << m;
  }
}

TEST(IlpModelTest, SeedingDoesNotChangeOptimum) {
  const AttributeSchema schema = AttributeSchema::Anonymous(10);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = 40;
  wl.seed = 3;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
  DynamicBitset t(10);
  t.SetAll();
  BruteForceSolver reference;
  for (bool seed : {false, true}) {
    IlpSocOptions options;
    options.seed_with_greedy = seed;
    const IlpSocSolver solver(options);
    auto solution = solver.Solve(log, t, 4);
    auto expected = reference.Solve(log, t, 4);
    ASSERT_TRUE(solution.ok());
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(solution->satisfied_queries, expected->satisfied_queries)
        << "seed=" << seed;
  }
}

TEST(IlpModelTest, MetricsExposed) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  const IlpSocSolver solver;
  auto solution = solver.Solve(log, t, 3);
  ASSERT_TRUE(solution.ok());
  bool has_nodes = false;
  for (const auto& [key, value] : solution->metrics) {
    if (key == "nodes") {
      has_nodes = true;
      EXPECT_GE(value, 1.0);
    }
  }
  EXPECT_TRUE(has_nodes);
}

TEST(IlpModelTest, TimeLimitDegradesToPartialSolution) {
  // A large adversarial instance with an absurd 1-microsecond budget: the
  // solver must stop, degrade, and still hand back a valid (padded)
  // selection instead of an error.
  const AttributeSchema schema = AttributeSchema::Anonymous(30);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = 400;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
  DynamicBitset t(30);
  t.SetAll();
  IlpSocOptions options;
  options.presolve = false;
  options.seed_with_greedy = false;
  options.mip.time_limit_seconds = 1e-6;
  const IlpSocSolver solver(options);
  auto solution = solver.Solve(log, t, 5);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(IsDegraded(*solution));
  EXPECT_EQ(SolutionStopReason(*solution), StopReason::kDeadline);
  EXPECT_FALSE(solution->proved_optimal);
  EXPECT_EQ(solution->selected.Count(), 5u);
  EXPECT_TRUE(solution->selected.IsSubsetOf(t));
}

}  // namespace
}  // namespace soc
