#include "check/fuzz.h"

#include <gtest/gtest.h>

#include <string>

namespace soc::check {
namespace {

TEST(FuzzProtocolTest, SeededRunIsCleanAndCoversBothOutcomes) {
  FuzzOptions options;
  options.iterations = 150;
  options.seed = 1;
  auto report = FuzzProtocol(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->iterations, 150);
  EXPECT_EQ(report->accepted + report->rejected, 150);
  // A structure-aware fuzzer that only ever produces one outcome is not
  // exploring the boundary.
  EXPECT_GT(report->accepted, 0);
  EXPECT_GT(report->rejected, 0);
}

TEST(FuzzProtocolTest, DeterministicInSeed) {
  FuzzOptions options;
  options.iterations = 60;
  options.seed = 7;
  auto first = FuzzProtocol(options);
  auto second = FuzzProtocol(options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->accepted, second->accepted);
  EXPECT_EQ(first->rejected, second->rejected);
}

TEST(FuzzQueryLogCsvTest, SeededRunIsCleanAndCoversBothOutcomes) {
  FuzzOptions options;
  options.iterations = 150;
  options.seed = 1;
  auto report = FuzzQueryLogCsv(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->accepted + report->rejected, 150);
  EXPECT_GT(report->accepted, 0);
  EXPECT_GT(report->rejected, 0);
}

TEST(FuzzInstanceTextTest, SeededRunIsCleanAndCoversBothOutcomes) {
  FuzzOptions options;
  options.iterations = 150;
  options.seed = 1;
  auto report = FuzzInstanceText(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->accepted + report->rejected, 150);
  EXPECT_GT(report->accepted, 0);
  EXPECT_GT(report->rejected, 0);
}

TEST(FuzzWideEventTest, SeededRunIsCleanAndCoversBothOutcomes) {
  FuzzOptions options;
  options.iterations = 150;
  options.seed = 1;
  auto report = FuzzWideEvent(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->accepted + report->rejected, 150);
  EXPECT_GT(report->accepted, 0);
  EXPECT_GT(report->rejected, 0);
}

TEST(ReplayCorpusInputTest, AcceptsEveryKind) {
  EXPECT_TRUE(ReplayCorpusInput("csv", "a0,a1\n10\n01\n").ok());
  EXPECT_TRUE(ReplayCorpusInput("instance", "tuple=101\nm=1\na0,a1,a2\n")
                  .ok());
  EXPECT_TRUE(
      ReplayCorpusInput("protocol", "{\"tuple\": \"110101\", \"m\": 2}")
          .ok());
  EXPECT_TRUE(
      ReplayCorpusInput(
          "event",
          "{\"v\":1,\"ts_ms\":1,\"id\":\"r1\",\"solver_req\":\"\","
          "\"solver\":\"Fallback\",\"m\":0,\"num_queries\":1,"
          "\"num_attributes\":1,\"collapse_ratio\":1,\"queue_ms\":0,"
          "\"solve_ms\":0,\"total_ms\":0,\"outcome\":\"ok\",\"code\":\"OK\"}")
          .ok());
}

TEST(ReplayCorpusInputTest, CleanRejectionIsNotAFailure) {
  // The parser rejecting garbage with a Status is the *correct* outcome;
  // only invariant violations (or sanitizer crashes) fail a replay.
  EXPECT_TRUE(ReplayCorpusInput("csv", "\x01\x02 not a csv").ok());
  EXPECT_TRUE(ReplayCorpusInput("instance", "tuple=2\nm=\n").ok());
  EXPECT_TRUE(ReplayCorpusInput("protocol", "{\"tuple\": 7").ok());
}

TEST(ReplayCorpusInputTest, RejectsUnknownKind) {
  EXPECT_FALSE(ReplayCorpusInput("elf", "\x7f" "ELF").ok());
}

}  // namespace
}  // namespace soc::check
