// Replays the checked-in minimized corpus under tests/corpus/ so that any
// input which once broke a parser stays handled forever. Each file name is
// <kind>-<slug>.txt where <kind> selects the parser ("protocol",
// "response", "csv", "instance", "event"); the payload is fed back
// verbatim. A replay fails only on an invariant violation (or a
// sanitizer report) — clean rejection is fine.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.h"

#ifndef SOC_CORPUS_DIR
#error "SOC_CORPUS_DIR must point at tests/corpus"
#endif

namespace soc::check {
namespace {

std::vector<std::filesystem::path> CorpusFiles() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(SOC_CORPUS_DIR)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CorpusReplayTest, CorpusIsNonEmptyAndCoversEveryKind) {
  bool saw_protocol = false, saw_response = false;
  bool saw_csv = false, saw_instance = false, saw_event = false;
  for (const auto& path : CorpusFiles()) {
    const std::string name = path.filename().string();
    saw_protocol |= name.rfind("protocol-", 0) == 0;
    saw_response |= name.rfind("response-", 0) == 0;
    saw_csv |= name.rfind("csv-", 0) == 0;
    saw_instance |= name.rfind("instance-", 0) == 0;
    saw_event |= name.rfind("event-", 0) == 0;
  }
  EXPECT_TRUE(saw_protocol);
  EXPECT_TRUE(saw_response);
  EXPECT_TRUE(saw_csv);
  EXPECT_TRUE(saw_instance);
  EXPECT_TRUE(saw_event);
}

TEST(CorpusReplayTest, EveryInputReplaysCleanly) {
  const std::vector<std::filesystem::path> files = CorpusFiles();
  ASSERT_FALSE(files.empty());
  for (const auto& path : files) {
    const std::string name = path.filename().string();
    const std::string kind = name.substr(0, name.find('-'));
    const Status status = ReplayCorpusInput(kind, ReadFile(path));
    EXPECT_TRUE(status.ok()) << name << ": " << status.ToString();
  }
}

}  // namespace
}  // namespace soc::check
