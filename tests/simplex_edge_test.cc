// Edge-case suite for the simplex beyond simplex_test.cc: redundant and
// contradictory equalities, variables starting at upper bounds, negative
// objective rows, and empty models.

#include <gtest/gtest.h>

#include "lp/model.h"
#include "lp/simplex.h"

namespace soc::lp {
namespace {

TEST(SimplexEdgeTest, RedundantEqualityRows) {
  // x + y = 2 stated twice; max x with x,y in [0, 2].
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", 0, 2, 1);
  const int y = model.AddVariable("y", 0, 2, 0);
  for (int rep = 0; rep < 2; ++rep) {
    const int row = model.AddConstraint("eq", ConstraintSense::kEqual, 2);
    model.AddTerm(row, x, 1);
    model.AddTerm(row, y, 1);
  }
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 2.0, 1e-6);
  EXPECT_NEAR(result->x[x] + result->x[y], 2.0, 1e-6);
}

TEST(SimplexEdgeTest, ContradictoryEqualities) {
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", 0, 10, 1);
  int r1 = model.AddConstraint("a", ConstraintSense::kEqual, 2);
  model.AddTerm(r1, x, 1);
  int r2 = model.AddConstraint("b", ConstraintSense::kEqual, 3);
  model.AddTerm(r2, x, 1);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, SolveStatus::kInfeasible);
}

TEST(SimplexEdgeTest, VariableStartsAtUpperBound) {
  // Variable with (-inf, u] bounds must start at its upper bound.
  LinearModel model(ObjectiveSense::kMinimize);
  const int x = model.AddVariable("x", -kInfinity, 5, 1);
  int row = model.AddConstraint("c", ConstraintSense::kGreaterEqual, -3);
  model.AddTerm(row, x, 1);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->x[x], -3.0, 1e-6);
  EXPECT_NEAR(result->objective, -3.0, 1e-6);
}

TEST(SimplexEdgeTest, AllNegativeObjective) {
  LinearModel model(ObjectiveSense::kMaximize);
  model.AddVariable("x", 0, 5, -1);
  model.AddVariable("y", 0, 5, -2);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 0.0, 1e-9);  // Stay at the lower bounds.
}

TEST(SimplexEdgeTest, EmptyModel) {
  LinearModel model(ObjectiveSense::kMaximize);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 0.0, 1e-12);
  EXPECT_TRUE(result->x.empty());
}

TEST(SimplexEdgeTest, ConstraintWithoutVariables) {
  // 0 <= 1: trivially satisfiable row; 0 <= -1: infeasible row.
  LinearModel feasible(ObjectiveSense::kMaximize);
  feasible.AddVariable("x", 0, 1, 1);
  feasible.AddConstraint("ok", ConstraintSense::kLessEqual, 1);
  auto result = SolveLp(feasible);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 1.0, 1e-9);

  LinearModel infeasible(ObjectiveSense::kMaximize);
  infeasible.AddVariable("x", 0, 1, 1);
  infeasible.AddConstraint("bad", ConstraintSense::kLessEqual, -1);
  auto result2 = SolveLp(infeasible);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->status, SolveStatus::kInfeasible);
}

TEST(SimplexEdgeTest, TinyCoefficientsStayStable) {
  // Scale-sensitive instance: coefficients across 6 orders of magnitude.
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", 0, 1e6, 1e-3);
  const int y = model.AddVariable("y", 0, 1e6, 1.0);
  int row = model.AddConstraint("c", ConstraintSense::kLessEqual, 1000.0);
  model.AddTerm(row, x, 1e-3);
  model.AddTerm(row, y, 1.0);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  // Both directions give objective 1000 (identical density); feasibility
  // is what matters here.
  EXPECT_TRUE(model.IsFeasible(result->x, 1e-4));
  EXPECT_NEAR(result->objective, 1000.0, 1e-3);
}

TEST(SimplexEdgeTest, EqualityPinsFreeDirectionThroughBounds) {
  // max x + y st x - y = 0, x <= 4, y <= 7 -> x = y = 4.
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", 0, 4, 1);
  const int y = model.AddVariable("y", 0, 7, 1);
  int row = model.AddConstraint("tie", ConstraintSense::kEqual, 0);
  model.AddTerm(row, x, 1);
  model.AddTerm(row, y, -1);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 8.0, 1e-6);
  EXPECT_NEAR(result->x[x], 4.0, 1e-6);
  EXPECT_NEAR(result->x[y], 4.0, 1e-6);
}

TEST(SimplexEdgeTest, MixedSenseSystem) {
  // max 2x + y  st  x + y <= 10, x - y >= 2, x + 2y = 8.
  // From equality: x = 8 - 2y; x - y >= 2 -> 8 - 3y >= 2 -> y <= 2;
  // x + y <= 10 -> 8 - y <= 10 (always). obj = 16 - 3y -> y = 0, x = 8.
  LinearModel model(ObjectiveSense::kMaximize);
  const int x = model.AddVariable("x", 0, 100, 2);
  const int y = model.AddVariable("y", 0, 100, 1);
  int a = model.AddConstraint("a", ConstraintSense::kLessEqual, 10);
  model.AddTerm(a, x, 1);
  model.AddTerm(a, y, 1);
  int b = model.AddConstraint("b", ConstraintSense::kGreaterEqual, 2);
  model.AddTerm(b, x, 1);
  model.AddTerm(b, y, -1);
  int c = model.AddConstraint("c", ConstraintSense::kEqual, 8);
  model.AddTerm(c, x, 1);
  model.AddTerm(c, y, 2);
  auto result = SolveLp(model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->status, SolveStatus::kOptimal);
  EXPECT_NEAR(result->objective, 16.0, 1e-6);
  EXPECT_NEAR(result->x[x], 8.0, 1e-6);
  EXPECT_NEAR(result->x[y], 0.0, 1e-6);
}

}  // namespace
}  // namespace soc::lp
