#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace soc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextUint64(1), 0u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All 7 values should appear in 1000 draws.
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    const auto sample = rng.SampleWithoutReplacement(100, 10);
    EXPECT_EQ(sample.size(), 10u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (int v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 100);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementDensePath) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(10, 10);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(31);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
  EXPECT_TRUE(rng.SampleWithoutReplacement(0, 0).empty());
}

TEST(RngTest, NextWeightedSkew) {
  Rng rng(37);
  const std::vector<double> weights = {0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[1] / 10000.0, 0.9, 0.03);
  EXPECT_NEAR(counts[2] / 10000.0, 0.1, 0.03);
}

TEST(ZipfTest, RankZeroMostLikely) {
  Rng rng(41);
  ZipfDistribution zipf(50, 1.0);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[30]);
  // Zipf(1.0): P(rank 0) = 1 / H_50 ≈ 0.2228.
  double h50 = 0;
  for (int i = 1; i <= 50; ++i) h50 += 1.0 / i;
  EXPECT_NEAR(counts[0] / 20000.0, 1.0 / h50, 0.02);
}

TEST(ZipfTest, SamplesInRange) {
  Rng rng(43);
  ZipfDistribution zipf(7, 1.5);
  for (int i = 0; i < 1000; ++i) {
    const int v = zipf.Sample(rng);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

}  // namespace
}  // namespace soc
