// Unit tests for the overload-control building blocks: the cost model's
// prior/EWMA blend and backlog accounting, the degradation ladder's
// hysteresis, and the client retry policy (backoff schedule + budget).

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "serve/cost_model.h"
#include "serve/degradation_ladder.h"
#include "serve/retry.h"

namespace soc::serve {
namespace {

CostFeatures Features(int queries = 1000, int attributes = 12,
                      double collapse = 1.0) {
  CostFeatures features;
  features.num_queries = queries;
  features.num_attributes = attributes;
  features.collapse_ratio = collapse;
  return features;
}

// ------------------------------------------------------------ cost model

TEST(CostModelTest, PriorOrdersTheSolverCostLadder) {
  const CostModel model(Features(), /*num_workers=*/4);
  const double brute = model.PredictSolveMs("BruteForce", 3);
  const double bnb = model.PredictSolveMs("BranchAndBound", 3);
  const double ilp = model.PredictSolveMs("ILP", 3);
  const double mfi = model.PredictSolveMs("MaxFreqItemSets", 3);
  const double greedy = model.PredictSolveMs("Fallback", 3);
  EXPECT_GT(brute, bnb);
  EXPECT_GT(bnb, ilp);
  EXPECT_GT(ilp, mfi);
  EXPECT_GT(mfi, greedy);
  EXPECT_GT(greedy, 0);
}

TEST(CostModelTest, PriorScalesWithCollapsedQueryVolumeAndBudget) {
  const CostModel small(Features(100), 4);
  const CostModel large(Features(10000), 4);
  EXPECT_GT(large.PredictSolveMs("ILP", 3), small.PredictSolveMs("ILP", 3));

  // The collapse ratio discounts duplicate queries: a log that collapses
  // to a tenth of its raw size predicts a tenth of the work.
  const CostModel collapsed(Features(10000, 12, 0.1), 4);
  EXPECT_NEAR(collapsed.PredictSolveMs("ILP", 3),
              small.PredictSolveMs("ILP", 3) * 10, 1e-9);

  const CostModel base(Features(), 4);
  EXPECT_GT(base.PredictSolveMs("ILP", 8), base.PredictSolveMs("ILP", 1));
}

TEST(CostModelTest, EwmaTakesOverAfterWarmup) {
  CostModelOptions options;
  options.warmup_samples = 4;
  CostModel model(Features(), 4, options);
  const double prior = model.PredictSolveMs("ILP", 2);

  // Feed samples far above the prior; the prediction must move toward
  // them monotonically and match the EWMA once warm.
  double previous = prior;
  for (int i = 0; i < 4; ++i) {
    model.Observe("ILP", 50.0);
    const double predicted = model.PredictSolveMs("ILP", 2);
    EXPECT_GT(predicted, previous);
    previous = predicted;
  }
  EXPECT_NEAR(model.PredictSolveMs("ILP", 2), 50.0, 1e-9);
  // Observations are per-tier: Fallback keeps its (tiny) prior.
  EXPECT_LT(model.PredictSolveMs("Fallback", 2), 1.0);
}

TEST(CostModelTest, BacklogChargesAndSettlesSymmetrically) {
  CostModel model(Features(), /*num_workers=*/2);
  EXPECT_EQ(model.BacklogMs(), 0);
  model.Charge(10.0);
  model.Charge(6.0);
  EXPECT_NEAR(model.BacklogMs(), 16.0, 1e-6);
  // The pool spreads the backlog: wait = backlog / workers.
  EXPECT_NEAR(model.PredictedQueueWaitMs(), 8.0, 1e-6);
  EXPECT_NEAR(model.RetryAfterMs(), 4.0, 1e-6);
  model.Settle(10.0);
  model.Settle(6.0);
  EXPECT_NEAR(model.BacklogMs(), 0.0, 1e-6);
  // Floored so a shed on an empty queue still suggests a real pause.
  EXPECT_GE(model.RetryAfterMs(), 1.0);
}

// --------------------------------------------------------------- ladder

TEST(DegradationLadderTest, StaysAtZeroUnderLightLoad) {
  DegradationLadder ladder;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ladder.Observe(0.2), 0);
  }
  EXPECT_EQ(ladder.level(), 0);
}

TEST(DegradationLadderTest, SustainedPressureClimbsOneStepPerCrossing) {
  DegradationLadder ladder;  // Watermarks 0.25 / 0.75, max level 2.
  int observations_to_level1 = 0;
  while (ladder.level() < 1) {
    ladder.Observe(1.0);
    ++observations_to_level1;
    ASSERT_LT(observations_to_level1, 1000);
  }
  // A single full-queue sample seeds the EWMA at 1.0, but each further
  // step requires the re-armed EWMA to climb back over the watermark.
  int observations_to_level2 = 0;
  while (ladder.level() < 2) {
    ladder.Observe(1.0);
    ++observations_to_level2;
    ASSERT_LT(observations_to_level2, 1000);
  }
  EXPECT_GT(observations_to_level2, 1);
  // max_level caps the ladder.
  for (int i = 0; i < 100; ++i) EXPECT_LE(ladder.Observe(1.0), 2);
}

TEST(DegradationLadderTest, HysteresisHoldsTheLevelThroughMidPressure) {
  DegradationLadder ladder;
  while (ladder.level() < 1) ladder.Observe(1.0);
  // Mid-band occupancy (between the watermarks) must not flap the level
  // in either direction.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(ladder.Observe(0.5), 1);
  }
  // Only sustained calm brings it back down.
  while (ladder.level() > 0) ladder.Observe(0.0);
  EXPECT_EQ(ladder.level(), 0);
}

TEST(DegradationLadderTest, MaxLevelZeroDisablesDegradation) {
  DegradationLadderOptions options;
  options.max_level = 0;
  DegradationLadder ladder(options);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ladder.Observe(1.0), 0);
}

TEST(DegradationLadderTest, ApplyLevelDowngradesExactTiersThenEverything) {
  EXPECT_EQ(DegradationLadder::ApplyLevel(0, "BruteForce"), "BruteForce");
  EXPECT_EQ(DegradationLadder::ApplyLevel(1, "BruteForce"), "Fallback");
  EXPECT_EQ(DegradationLadder::ApplyLevel(1, "BranchAndBound"), "Fallback");
  EXPECT_EQ(DegradationLadder::ApplyLevel(1, "ILP"), "Fallback");
  // Mining and greedy tiers survive level 1.
  EXPECT_EQ(DegradationLadder::ApplyLevel(1, "MaxFreqItemSets"),
            "MaxFreqItemSets");
  EXPECT_EQ(DegradationLadder::ApplyLevel(1, "ConsumeAttrCumul"),
            "ConsumeAttrCumul");
  EXPECT_EQ(DegradationLadder::ApplyLevel(2, "MaxFreqItemSets"), "Fallback");
  EXPECT_EQ(DegradationLadder::ApplyLevel(2, "Fallback"), "Fallback");
}

// ---------------------------------------------------------------- retry

TEST(RetryTest, OnlyOverloadedIsRetryable) {
  EXPECT_TRUE(IsRetryableStatus(OverloadedError("queue full")));
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
  EXPECT_FALSE(IsRetryableStatus(InvalidArgumentError("bad tuple")));
  EXPECT_FALSE(IsRetryableStatus(InternalError("solver fault")));
  EXPECT_FALSE(IsRetryableStatus(DeadlineExceededError("late")));
}

TEST(RetryTest, DelayGrowsExponentiallyWithJitterInHalfToFullBand) {
  RetryOptions options;
  options.initial_backoff_ms = 4;
  options.backoff_multiplier = 2.0;
  options.max_backoff_ms = 1000;
  Rng rng(7);
  for (int attempt = 1; attempt <= 5; ++attempt) {
    const double ceiling = 4.0 * std::pow(2.0, attempt - 1);
    for (int i = 0; i < 50; ++i) {
      const double delay = RetryDelayMs(options, attempt, 0, rng);
      EXPECT_GE(delay, ceiling * 0.5);
      EXPECT_LT(delay, ceiling);
    }
  }
}

TEST(RetryTest, DelayIsCappedAndFlooredByTheServerHint) {
  RetryOptions options;
  options.initial_backoff_ms = 4;
  options.backoff_multiplier = 10.0;
  options.max_backoff_ms = 20;
  Rng rng(7);
  // Attempt 4 would be 4000ms uncapped; the cap bounds the ceiling at 20.
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(RetryDelayMs(options, 4, 0, rng), 20.0);
  }
  // A server hint above the schedule floors it: never retry before the
  // backlog has a chance to drain.
  for (int i = 0; i < 50; ++i) {
    EXPECT_GE(RetryDelayMs(options, 1, 80.0, rng), 40.0);  // >= hint/2.
    EXPECT_LT(RetryDelayMs(options, 1, 80.0, rng), 80.0);
  }
}

TEST(RetryTest, BudgetSpendsDownAndEarnsPerSubmission) {
  RetryOptions options;
  options.initial_budget = 2;
  options.budget_ratio = 0.5;
  RetryBudget budget(options);
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend());  // Empty: deny without going negative.
  EXPECT_NEAR(budget.tokens(), 0.0, 1e-9);

  // Two fresh submissions earn one retry at ratio 0.5.
  budget.OnSubmit();
  EXPECT_FALSE(budget.TrySpend());
  budget.OnSubmit();
  EXPECT_TRUE(budget.TrySpend());
}

TEST(RetryTest, BudgetCapsAtTheBurstAllowance) {
  RetryOptions options;
  options.initial_budget = 3;
  options.budget_ratio = 1.0;
  RetryBudget budget(options);
  // However long the quiet stretch, the bucket never banks more than the
  // burst allowance.
  for (int i = 0; i < 100; ++i) budget.OnSubmit();
  EXPECT_NEAR(budget.tokens(), 3.0, 1e-9);
  int spendable = 0;
  while (budget.TrySpend()) ++spendable;
  EXPECT_EQ(spendable, 3);
}

TEST(RetryTest, ZeroRatioBudgetDeniesOnceInitialAllowanceIsSpent) {
  RetryOptions options;
  options.initial_budget = 1;
  options.budget_ratio = 0;
  RetryBudget budget(options);
  EXPECT_TRUE(budget.TrySpend());
  for (int i = 0; i < 50; ++i) budget.OnSubmit();
  EXPECT_FALSE(budget.TrySpend());
}

}  // namespace
}  // namespace soc::serve
