// Arena allocator guarantees the kernels rely on: 64-byte alignment for
// AVX-512 loads, reset/reuse semantics (steady state creates no blocks),
// and ASan poisoning of freed regions (verified in the sanitizer CI leg,
// compiled out elsewhere).

#include "kernels/arena.h"

#include <cstdint>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#if defined(__SANITIZE_ADDRESS__)
#define SOC_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SOC_TEST_ASAN 1
#endif
#endif

#if defined(SOC_TEST_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace soc::kernels {
namespace {

TEST(ArenaTest, AllocationsAreCacheLineAligned) {
  Arena arena;
  // Odd sizes must not knock later allocations off alignment.
  for (const std::size_t bytes : {1u, 7u, 63u, 64u, 65u, 1000u, 4097u}) {
    void* ptr = arena.Allocate(bytes);
    ASSERT_NE(ptr, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ptr) % Arena::kAlignment, 0u)
        << bytes;
    std::memset(ptr, 0xab, bytes);  // Must be writable end to end.
  }
}

TEST(ArenaTest, ResetReusesBlocksWithoutReallocating) {
  Arena arena(1 << 10);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) arena.Allocate(512);
    arena.Reset();
  }
  const Arena::Stats warm = arena.stats();
  // Steady state: further identical rounds create zero new blocks.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 50; ++i) arena.Allocate(512);
    arena.Reset();
  }
  EXPECT_EQ(arena.stats().blocks_created, warm.blocks_created);
  EXPECT_EQ(arena.stats().bytes_reserved, warm.bytes_reserved);
}

TEST(ArenaTest, RewindFreesOnlyPastTheMark) {
  Arena arena;
  std::uint64_t* before = arena.AllocateWords(8);
  before[0] = 42;
  const Arena::Mark mark = arena.mark();
  arena.AllocateWords(1024);
  arena.Rewind(mark);
  // The pre-mark allocation survives; post-mark space is reusable.
  EXPECT_EQ(before[0], 42u);
  std::uint64_t* again = arena.AllocateWords(1024);
  EXPECT_NE(again, nullptr);
}

TEST(ArenaTest, ScratchScopeNestsAndRewinds) {
  Arena& scratch = ThreadScratchArena();
  const std::int64_t created_before = Arena::TotalBlocksCreated();
  {
    ScratchScope outer;
    outer.arena().AllocateWords(100);
    {
      ScratchScope inner;
      inner.arena().AllocateWords(100);
    }
    outer.arena().AllocateWords(100);
  }
  // Warm a second time: the scope reuses what the first pass created.
  {
    ScratchScope scope;
    scope.arena().AllocateWords(300);
  }
  const std::int64_t warm = Arena::TotalBlocksCreated();
  {
    ScratchScope scope;
    scope.arena().AllocateWords(300);
  }
  EXPECT_EQ(Arena::TotalBlocksCreated(), warm);
  EXPECT_GE(warm, created_before);
  (void)scratch;
}

TEST(ArenaTest, ThreadScratchArenaIsPerThread) {
  Arena* main_arena = &ThreadScratchArena();
  Arena* other_arena = nullptr;
  std::thread worker([&] { other_arena = &ThreadScratchArena(); });
  worker.join();
  EXPECT_NE(main_arena, other_arena);
}

#if defined(SOC_TEST_ASAN)
TEST(ArenaTest, FreedRegionsArePoisonedUnderAsan)
{
  Arena arena;
  const Arena::Mark mark = arena.mark();
  char* ptr = static_cast<char*>(arena.Allocate(256));
  EXPECT_FALSE(__asan_address_is_poisoned(ptr));
  EXPECT_FALSE(__asan_address_is_poisoned(ptr + 255));
  arena.Rewind(mark);
  EXPECT_TRUE(__asan_address_is_poisoned(ptr));
  EXPECT_TRUE(__asan_address_is_poisoned(ptr + 255));
  // Reallocation unpoisons exactly the handed-out range again.
  char* again = static_cast<char*>(arena.Allocate(256));
  EXPECT_EQ(again, ptr);
  EXPECT_FALSE(__asan_address_is_poisoned(again));
}

TEST(ArenaTest, FreshBlockTailStaysPoisonedUnderAsan) {
  Arena arena(1 << 12);
  char* ptr = static_cast<char*>(arena.Allocate(64));
  // Beyond the allocation, the rest of the block is poisoned.
  EXPECT_TRUE(__asan_address_is_poisoned(ptr + 64));
}
#endif  // SOC_TEST_ASAN

}  // namespace
}  // namespace soc::kernels
