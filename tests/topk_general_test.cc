#include "core/topk_general.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/topk.h"
#include "datagen/workload.h"
#include "paper_example.h"

namespace soc {
namespace {

TEST(TopkGeneralTest, SpecificityScorePrefersShortTuples) {
  const QueryScoreFn score = MakeSpecificityScore();
  const DynamicBitset q = DynamicBitset::FromString("1100");
  const DynamicBitset small = DynamicBitset::FromString("1100");
  const DynamicBitset big = DynamicBitset::FromString("1111");
  EXPECT_GT(score(q, small), score(q, big));
}

TEST(TopkGeneralTest, WeightedOverlapScore) {
  const QueryScoreFn score = MakeWeightedOverlapScore({1.0, 2.0, 4.0});
  const DynamicBitset q = DynamicBitset::FromString("111");
  EXPECT_DOUBLE_EQ(score(q, DynamicBitset::FromString("101")), 5.0);
  EXPECT_DOUBLE_EQ(score(q, DynamicBitset::FromString("010")), 2.0);
  const DynamicBitset partial_q = DynamicBitset::FromString("001");
  EXPECT_DOUBLE_EQ(score(partial_q, DynamicBitset::FromString("111")), 4.0);
}

TEST(TopkGeneralTest, RetrievalRequiresConjunctiveMatch) {
  const BooleanTable db = testdata::PaperDatabase();
  const QueryScoreFn score = MakeSpecificityScore();
  const DynamicBitset q = DynamicBitset::FromString("110000");
  const DynamicBitset bad = DynamicBitset::FromString("100000");
  EXPECT_FALSE(TopkRetrievesGeneral(db, score, q, bad, 100));
}

TEST(TopkGeneralTest, SpecificityMakesCompressionDesirable) {
  // One competitor matches {a0} with 3 attributes. Under specificity
  // scoring, our tuple wins at k=1 only if we keep it SHORTER than the
  // competitor — exactly the selection-dependence the reduction cannot
  // express.
  BooleanTable db(AttributeSchema::Anonymous(4));
  db.AddRow(DynamicBitset::FromString("1110"));
  QueryLog log(db.schema());
  log.AddQueryFromIndices({0});
  const QueryScoreFn score = MakeSpecificityScore();
  DynamicBitset full = DynamicBitset::FromString("1111");
  DynamicBitset short2 = DynamicBitset::FromString("1100");
  // Full tuple (4 attrs) loses to the 3-attr competitor; the 2-attr
  // compression wins.
  EXPECT_EQ(CountTopkSatisfiedGeneral(db, score, log, full, 1), 0);
  EXPECT_EQ(CountTopkSatisfiedGeneral(db, score, log, short2, 1), 1);
}

TEST(TopkGeneralTest, GreedyFindsSpecificityTradeoff) {
  // Same setup: with m = 2 the greedy should find a winning short tuple.
  BooleanTable db(AttributeSchema::Anonymous(4));
  db.AddRow(DynamicBitset::FromString("1110"));
  QueryLog log(db.schema());
  for (int i = 0; i < 3; ++i) log.AddQueryFromIndices({0});
  DynamicBitset t = DynamicBitset::FromString("1111");
  auto solution =
      SolveTopkGeneralGreedy(db, MakeSpecificityScore(), log, t, 2, 1);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->satisfied_queries, 3);
  EXPECT_TRUE(solution->selected.Test(0));
  EXPECT_EQ(solution->selected.Count(), 2u);
}

TEST(TopkGeneralTest, MatchesGlobalEvaluatorForGlobalScores) {
  // A weighted-overlap score with equal weights over full queries is
  // query-dependent in form; but the attribute-count *global* score can be
  // emulated: score(q, t) = |t| via weights... instead, directly compare
  // the general evaluator against core/topk.h's on its own scoring.
  const BooleanTable db = testdata::PaperDatabase();
  const QueryLog log = testdata::PaperQueryLog();
  const GlobalScoring global = MakeAttributeCountScoring(db);
  const QueryScoreFn general = [](const DynamicBitset&,
                                  const DynamicBitset& t) {
    return static_cast<double>(t.Count());
  };
  Rng rng(8);
  for (int trial = 0; trial < 30; ++trial) {
    DynamicBitset t_prime(6);
    for (int a = 0; a < 6; ++a) {
      if (rng.NextBernoulli(0.5)) t_prime.Set(a);
    }
    for (int k : {1, 2, 5}) {
      EXPECT_EQ(CountTopkSatisfiedGeneral(db, general, log, t_prime, k),
                CountTopkSatisfied(db, global, log, t_prime, k))
          << t_prime.ToString() << " k=" << k;
    }
  }
}

TEST(TopkGeneralTest, GreedyNeverBeatsBruteForce) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const AttributeSchema schema = AttributeSchema::Anonymous(8);
    BooleanTable db(schema);
    for (int r = 0; r < 6; ++r) {
      DynamicBitset row(8);
      for (int a = 0; a < 8; ++a) {
        if (rng.NextBernoulli(0.5)) row.Set(a);
      }
      db.AddRow(std::move(row));
    }
    datagen::SyntheticWorkloadOptions wl;
    wl.num_queries = 20;
    wl.seed = 900 + trial;
    const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
    DynamicBitset t(8);
    for (int a = 0; a < 8; ++a) {
      if (rng.NextBernoulli(0.7)) t.Set(a);
    }
    const int m = rng.NextInt(1, 5);
    const int k = rng.NextInt(1, 3);
    const QueryScoreFn score = MakeSpecificityScore();
    auto exact = SolveTopkGeneralBruteForce(db, score, log, t, m, k);
    auto greedy = SolveTopkGeneralGreedy(db, score, log, t, m, k);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(greedy.ok());
    EXPECT_LE(greedy->satisfied_queries, exact->satisfied_queries)
        << "trial " << trial;
    // Both must report objectives consistent with the reference evaluator.
    EXPECT_EQ(greedy->satisfied_queries,
              CountTopkSatisfiedGeneral(db, score, log, greedy->selected, k));
    EXPECT_EQ(exact->satisfied_queries,
              CountTopkSatisfiedGeneral(db, score, log, exact->selected, k));
  }
}

TEST(TopkGeneralTest, BruteForceGuardTrips) {
  BooleanTable db(AttributeSchema::Anonymous(40));
  QueryLog log(db.schema());
  DynamicBitset t(40);
  t.SetAll();
  TopkGeneralBruteForceOptions options;
  options.max_combinations = 100;
  auto result = SolveTopkGeneralBruteForce(db, MakeSpecificityScore(), log, t,
                                           20, 1, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace soc
