#include <cmath>

#include "numeric/numeric.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"

namespace soc::numeric {
namespace {

TEST(NumericTableTest, AddRowValidates) {
  NumericTable table({"Price", "Weight"});
  EXPECT_TRUE(table.AddRow({199.0, 1.2}).ok());
  EXPECT_FALSE(table.AddRow({1.0}).ok());
  EXPECT_FALSE(table.AddRow({1.0, std::nan("")}).ok());
  EXPECT_EQ(table.num_rows(), 1);
  EXPECT_EQ(table.row(0)[0], 199.0);
}

TEST(NumericTest, RangeMatching) {
  // Camera: price 300, weight 0.5, resolution 12.
  const std::vector<double> t = {300.0, 0.5, 12.0};
  EXPECT_TRUE(RangeQueryMatches({{0, 200, 400}}, t));
  EXPECT_TRUE(RangeQueryMatches({{0, 300, 300}}, t));  // Inclusive bounds.
  EXPECT_FALSE(RangeQueryMatches({{0, 0, 299.99}}, t));
  EXPECT_TRUE(RangeQueryMatches({{0, 200, 400}, {2, 10, 20}}, t));
  EXPECT_FALSE(RangeQueryMatches({{0, 200, 400}, {1, 0.6, 1.0}}, t));
  EXPECT_TRUE(RangeQueryMatches({}, t));
}

TEST(NumericTest, ReductionKeepsInRangeQueries) {
  const std::vector<std::string> names = {"Price", "Weight", "Resolution"};
  const std::vector<double> t = {300.0, 0.5, 12.0};
  const std::vector<RangeQuery> queries = {
      {{0, 200, 400}},                    // winnable -> {Price}
      {{0, 0, 100}},                      // out of range -> dropped
      {{1, 0.3, 0.8}, {2, 10, 14}},       // winnable -> {Weight, Resolution}
  };
  auto reduction = ReduceNumericToBoolean(names, queries, t);
  ASSERT_TRUE(reduction.ok());
  EXPECT_EQ(reduction->dropped_queries, 1);
  ASSERT_EQ(reduction->boolean_log.size(), 2);
  EXPECT_EQ(reduction->boolean_log.query(0).ToString(), "100");
  EXPECT_EQ(reduction->boolean_log.query(1).ToString(), "011");
  EXPECT_TRUE(reduction->boolean_tuple.All());
}

TEST(NumericTest, ReductionRejectsMalformedQueries) {
  const std::vector<std::string> names = {"Price"};
  const std::vector<double> t = {10.0};
  EXPECT_FALSE(ReduceNumericToBoolean(names, {{{5, 0, 1}}}, t).ok());
  EXPECT_FALSE(ReduceNumericToBoolean(names, {{{0, 5, 1}}}, t).ok());
  EXPECT_FALSE(ReduceNumericToBoolean(names, {}, {1.0, 2.0}).ok());
}

TEST(NumericTest, EndToEndSolve) {
  // Digital-camera browsing (the paper's example): users filter on price,
  // weight, resolution, zoom.
  const std::vector<std::string> names = {"Price", "Weight", "Resolution",
                                          "Zoom"};
  const std::vector<double> camera = {299.0, 0.4, 16.0, 5.0};
  std::vector<RangeQuery> queries;
  for (int i = 0; i < 4; ++i) queries.push_back({{0, 250, 350}});  // Price.
  for (int i = 0; i < 3; ++i) {
    queries.push_back({{2, 12, 20}, {3, 4, 10}});  // Resolution + Zoom.
  }
  queries.push_back({{1, 0.0, 0.3}});  // Too heavy: unwinnable.

  BruteForceSolver exact;
  auto m1 = SolveNumericSoc(exact, names, queries, camera, 1);
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1->satisfied_queries, 4);
  EXPECT_EQ(m1->selected_attributes, (std::vector<int>{0}));

  auto m2 = SolveNumericSoc(exact, names, queries, camera, 2);
  ASSERT_TRUE(m2.ok());
  // {Resolution, Zoom} -> 3 < {Price, x} -> 4.
  EXPECT_EQ(m2->satisfied_queries, 4);

  auto m3 = SolveNumericSoc(exact, names, queries, camera, 3);
  ASSERT_TRUE(m3.ok());
  EXPECT_EQ(m3->satisfied_queries, 7);
  EXPECT_EQ(m3->selected_attributes, (std::vector<int>{0, 2, 3}));
}

}  // namespace
}  // namespace soc::numeric
