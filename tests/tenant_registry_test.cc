// TenantRegistry: tenant lifecycle (create / duplicate / publish),
// RCU snapshot semantics (readers pin an epoch; publishes never
// invalidate a pinned snapshot), ring routing stability, and the
// serialized-swap guarantee under concurrent publishers.

#include "tenant/registry.h"

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "boolean/query_log.h"
#include "boolean/schema.h"
#include "common/thread_pool.h"

namespace soc::tenant {
namespace {

QueryLog MakeLog(int width, std::vector<std::vector<int>> queries) {
  QueryLog log(AttributeSchema::Anonymous(width));
  for (const auto& q : queries) log.AddQueryFromIndices(q);
  return log;
}

TEST(TenantRegistryTest, CreateStartsAtEpochOne) {
  TenantRegistry registry(4);
  ASSERT_TRUE(registry.CreateTenant("acme", MakeLog(6, {{0, 1}, {2}})).ok());
  EXPECT_EQ(registry.tenant_count(), 1);

  const SnapshotPtr snapshot = registry.Acquire("acme");
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->tenant_id(), "acme");
  EXPECT_EQ(snapshot->epoch(), 1);
  EXPECT_EQ(snapshot->log().num_attributes(), 6);
  EXPECT_EQ(snapshot->log().size(), 2);
}

TEST(TenantRegistryTest, DuplicateCreateFails) {
  TenantRegistry registry(4);
  ASSERT_TRUE(registry.CreateTenant("acme", MakeLog(4, {{0}})).ok());
  const Status again = registry.CreateTenant("acme", MakeLog(4, {{1}}));
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  // The original catalog survives the rejected create.
  EXPECT_EQ(registry.Acquire("acme")->log().size(), 1);
}

TEST(TenantRegistryTest, AcquireUnknownTenantIsNull) {
  TenantRegistry registry(4);
  EXPECT_EQ(registry.Acquire("ghost"), nullptr);
}

TEST(TenantRegistryTest, PublishUnknownTenantIsNotFound) {
  TenantRegistry registry(4);
  EXPECT_EQ(registry.PublishEpoch("ghost", MakeLog(4, {{0}})).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.epochs_published(), 0);
}

TEST(TenantRegistryTest, PublishBumpsEpochAndSwapsTheCatalog) {
  TenantRegistry registry(4);
  ASSERT_TRUE(registry.CreateTenant("acme", MakeLog(4, {{0}})).ok());

  auto epoch2 = registry.PublishEpoch("acme", MakeLog(5, {{0}, {1}, {2}}));
  ASSERT_TRUE(epoch2.ok());
  EXPECT_EQ(*epoch2, 2);
  auto epoch3 = registry.PublishEpoch("acme", MakeLog(6, {{3}}));
  ASSERT_TRUE(epoch3.ok());
  EXPECT_EQ(*epoch3, 3);
  EXPECT_EQ(registry.epochs_published(), 2);

  const SnapshotPtr snapshot = registry.Acquire("acme");
  EXPECT_EQ(snapshot->epoch(), 3);
  EXPECT_EQ(snapshot->log().num_attributes(), 6);
}

TEST(TenantRegistryTest, PinnedSnapshotSurvivesAPublish) {
  TenantRegistry registry(4);
  ASSERT_TRUE(registry.CreateTenant("acme", MakeLog(4, {{0}, {1}})).ok());

  // A reader pins epoch 1, then a publish swaps the slot underneath it.
  const SnapshotPtr pinned = registry.Acquire("acme");
  ASSERT_TRUE(registry.PublishEpoch("acme", MakeLog(7, {{2}})).ok());

  // The pinned snapshot is untouched; only fresh acquires see epoch 2.
  EXPECT_EQ(pinned->epoch(), 1);
  EXPECT_EQ(pinned->log().num_attributes(), 4);
  EXPECT_EQ(pinned->log().size(), 2);
  EXPECT_EQ(registry.Acquire("acme")->epoch(), 2);
}

TEST(TenantRegistryTest, ShardOfIsDefinedAndStableForUnknownTenants) {
  TenantRegistry registry(8);
  EXPECT_EQ(registry.num_shards(), 8);
  const int shard = registry.ShardOf("never-created");
  EXPECT_GE(shard, 0);
  EXPECT_LT(shard, 8);
  // Routing does not depend on registration state.
  ASSERT_TRUE(registry.CreateTenant("never-created", MakeLog(4, {{0}})).ok());
  EXPECT_EQ(registry.ShardOf("never-created"), shard);
}

TEST(TenantRegistryTest, TenantIdsListsEveryTenant) {
  TenantRegistry registry(4);
  for (const char* id : {"b", "a", "c"}) {
    ASSERT_TRUE(registry.CreateTenant(id, MakeLog(4, {{0}})).ok());
  }
  const std::vector<std::string> ids = registry.TenantIds();
  EXPECT_EQ(ids, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TenantRegistryTest, ConcurrentPublishesSerializeOnTheSwap) {
  TenantRegistry registry(4);
  ASSERT_TRUE(registry.CreateTenant("acme", MakeLog(4, {{0}})).ok());

  constexpr int kPublishers = 8;
  std::atomic<int> successes{0};
  std::vector<std::int64_t> epochs(kPublishers, 0);
  {
    ThreadPool pool(kPublishers);
    for (int i = 0; i < kPublishers; ++i) {
      pool.Submit([i, &registry, &successes, &epochs] {
        auto epoch = registry.PublishEpoch("acme", MakeLog(4, {{i % 4}}));
        if (epoch.ok()) {
          epochs[i] = *epoch;
          successes.fetch_add(1);
        } else {
          // A loser observed a concurrent swap; the only legal failure.
          EXPECT_EQ(epoch.status().code(), StatusCode::kFailedPrecondition);
        }
      });
    }
    pool.Shutdown();
  }

  // Every successful publish got a distinct epoch, and the slot ends on
  // the largest one.
  std::set<std::int64_t> distinct;
  for (const std::int64_t epoch : epochs) {
    if (epoch != 0) distinct.insert(epoch);
  }
  EXPECT_EQ(static_cast<int>(distinct.size()), successes.load());
  ASSERT_GE(successes.load(), 1);
  EXPECT_EQ(registry.Acquire("acme")->epoch(), *distinct.rbegin());
  EXPECT_EQ(registry.epochs_published(), successes.load());
}

}  // namespace
}  // namespace soc::tenant
