// CircuitBreaker state-machine tests: closed -> open on consecutive
// failures, open -> half-open after the cool-down, single-probe admission
// (including a many-thread probe race that must grant exactly one —
// the TSan target), and the BreakerPanel's per-solver lookup.

#include "serve/circuit_breaker.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace soc::serve {
namespace {

CircuitBreakerOptions FastOptions(int threshold = 3, double open_ms = 5) {
  CircuitBreakerOptions options;
  options.failure_threshold = threshold;
  options.open_ms = open_ms;
  return options;
}

void SleepMs(double ms) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

TEST(CircuitBreakerTest, StaysClosedBelowThreshold) {
  CircuitBreaker breaker(FastOptions(3));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.trips(), 0);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureRun) {
  CircuitBreaker breaker(FastOptions(3));
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // Run broken: the next two failures are 1, 2.
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure();  // Third consecutive.
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, TripsOpenAtThresholdAndDeniesWhileOpen) {
  // Long cool-down so the breaker stays open for the whole test.
  CircuitBreaker breaker(FastOptions(2, /*open_ms=*/60000));
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
}

TEST(CircuitBreakerTest, HalfOpenAdmitsOneProbeThenClosesOnSuccess) {
  CircuitBreaker breaker(FastOptions(1, /*open_ms=*/2));
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  SleepMs(5);  // Past the cool-down.
  EXPECT_TRUE(breaker.Allow());  // The probe.
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // Everyone else waits on the probe.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, FailedProbeReopensAndRestartsTheTimer) {
  CircuitBreaker breaker(FastOptions(1, /*open_ms=*/2));
  breaker.RecordFailure();
  SleepMs(5);
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordFailure();  // Probe failed.
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  EXPECT_FALSE(breaker.Allow());  // Timer restarted: still cooling down.
  SleepMs(5);
  EXPECT_TRUE(breaker.Allow());  // A fresh probe after the second cool-down.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, NonPositiveThresholdDisablesTheBreaker) {
  CircuitBreaker breaker(FastOptions(0));
  for (int i = 0; i < 100; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.trips(), 0);
}

TEST(CircuitBreakerTest, HalfOpenProbeRaceGrantsExactlyOne) {
  // The TSan-relevant invariant: when the cool-down lapses with many
  // threads calling Allow concurrently, exactly one wins the probe slot.
  CircuitBreaker breaker(FastOptions(1, /*open_ms=*/2));
  breaker.RecordFailure();
  SleepMs(5);

  constexpr int kThreads = 8;
  std::atomic<int> granted{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&breaker, &granted, &go] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 50; ++i) {
        if (breaker.Allow()) granted.fetch_add(1);
      }
    });
  }
  go.store(true);
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(granted.load(), 1);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);

  // Concurrent outcome reporting must keep the machine in a legal state.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ConcurrentFailuresTripExactlyOnce) {
  CircuitBreaker breaker(FastOptions(4, /*open_ms=*/60000));
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&breaker] {
      for (int i = 0; i < 25; ++i) breaker.RecordFailure();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // 200 failures against threshold 4, but a trip happens on the closed ->
  // open edge only; once open, further failures cannot re-trip.
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(BreakerPanelTest, OneBreakerPerSolverName) {
  BreakerPanel panel({"ILP", "Fallback", "BruteForce"}, FastOptions(2));
  ASSERT_NE(panel.Get("ILP"), nullptr);
  ASSERT_NE(panel.Get("Fallback"), nullptr);
  EXPECT_EQ(panel.Get("NoSuchSolver"), nullptr);
  EXPECT_NE(panel.Get("ILP"), panel.Get("Fallback"));

  panel.Get("ILP")->RecordFailure();
  panel.Get("ILP")->RecordFailure();
  EXPECT_EQ(panel.Get("ILP")->state(), BreakerState::kOpen);
  EXPECT_EQ(panel.Get("Fallback")->state(), BreakerState::kClosed);

  int visited = 0;
  int open = 0;
  panel.ForEach([&](const std::string& name, const CircuitBreaker& breaker) {
    ++visited;
    if (breaker.state() == BreakerState::kOpen) {
      ++open;
      EXPECT_EQ(name, "ILP");
    }
  });
  EXPECT_EQ(visited, 3);
  EXPECT_EQ(open, 1);
}

TEST(BreakerStateTest, ToStringNamesEveryState) {
  EXPECT_STREQ(BreakerStateToString(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateToString(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateToString(BreakerState::kHalfOpen), "half_open");
}

}  // namespace
}  // namespace soc::serve
