// EDF ordering invariants for the admission scheduler's priority queue:
// earliest deadline pops first, Infinite() sorts last, and ties (including
// all deadline-less entries) preserve FIFO admission order.

#include "serve/edf_queue.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace soc::serve {
namespace {

TEST(EdfQueueTest, PopOnEmptyReturnsFalse) {
  EdfQueue<int> queue;
  int value = -1;
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.Pop(&value));
  EXPECT_EQ(value, -1);  // Outputs untouched.
}

TEST(EdfQueueTest, EarliestDeadlinePopsFirst) {
  EdfQueue<std::string> queue;
  queue.Push(Deadline::AfterSeconds(30), "later");
  queue.Push(Deadline::AfterSeconds(10), "soonest");
  queue.Push(Deadline::AfterSeconds(20), "middle");
  EXPECT_EQ(queue.size(), 3u);

  std::string value;
  ASSERT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, "soonest");
  ASSERT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, "middle");
  ASSERT_TRUE(queue.Pop(&value));
  EXPECT_EQ(value, "later");
  EXPECT_TRUE(queue.empty());
}

TEST(EdfQueueTest, InfiniteDeadlineSortsAfterEveryFiniteOne) {
  EdfQueue<int> queue;
  queue.Push(Deadline::Infinite(), 0);
  queue.Push(Deadline::AfterSeconds(1000), 1);  // Distant but finite.
  queue.Push(Deadline::Infinite(), 2);

  int value = -1;
  Deadline deadline = Deadline::Infinite();
  ASSERT_TRUE(queue.Pop(&value, &deadline));
  EXPECT_EQ(value, 1);
  EXPECT_TRUE(deadline.has_deadline());
  ASSERT_TRUE(queue.Pop(&value, &deadline));
  EXPECT_EQ(value, 0);  // Deadline-less entries keep FIFO order.
  EXPECT_FALSE(deadline.has_deadline());
  ASSERT_TRUE(queue.Pop(&value, &deadline));
  EXPECT_EQ(value, 2);
}

TEST(EdfQueueTest, EqualDeadlinesPopInAdmissionOrder) {
  // One Deadline value shared by every entry: strictly a tie, so the
  // sequence number must decide — EDF never reorders equal-urgency work.
  const Deadline shared = Deadline::AfterSeconds(60);
  EdfQueue<int> queue;
  for (int i = 0; i < 32; ++i) queue.Push(shared, i);
  for (int i = 0; i < 32; ++i) {
    int value = -1;
    ASSERT_TRUE(queue.Pop(&value));
    EXPECT_EQ(value, i);
  }
}

TEST(EdfQueueTest, RandomizedPopsAreMonotoneInDeadline) {
  // Property: for any interleaving of pushes, the pop sequence is sorted
  // by ExpiresBefore (with FIFO ties) — the heap never inverts urgency.
  Rng rng(0xEDF);
  EdfQueue<int> queue;
  for (int i = 0; i < 500; ++i) {
    if (rng.NextDouble() < 0.2) {
      queue.Push(Deadline::Infinite(), i);
    } else {
      queue.Push(Deadline::AfterSeconds(rng.NextInt(1, 50)), i);
    }
  }
  Deadline previous = Deadline::Infinite();
  bool first = true;
  int popped = 0;
  int value;
  Deadline deadline = Deadline::Infinite();
  while (queue.Pop(&value, &deadline)) {
    if (!first) {
      EXPECT_FALSE(deadline.ExpiresBefore(previous))
          << "pop " << popped << " was more urgent than its predecessor";
    }
    previous = deadline;
    first = false;
    ++popped;
  }
  EXPECT_EQ(popped, 500);
}

TEST(EdfQueueTest, InterleavedPushPopKeepsHeapConsistent) {
  Rng rng(0xBEEF);
  EdfQueue<int> queue;
  std::size_t pushed = 0, popped = 0;
  for (int round = 0; round < 2000; ++round) {
    if (queue.empty() || rng.NextDouble() < 0.6) {
      queue.Push(Deadline::AfterSeconds(rng.NextInt(1, 20)),
                 static_cast<int>(pushed));
      ++pushed;
    } else {
      int value;
      ASSERT_TRUE(queue.Pop(&value));
      ++popped;
    }
    ASSERT_EQ(queue.size(), pushed - popped);
  }
  int value;
  while (queue.Pop(&value)) ++popped;
  EXPECT_EQ(popped, pushed);
}

}  // namespace
}  // namespace soc::serve
