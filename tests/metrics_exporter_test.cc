// MetricsExporter tests: Prometheus text rendering, the cadence loop's
// export/stop contract, and the counter/quantile invariants the exposed
// pages must uphold.

#include "serve/metrics_exporter.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/mutex.h"
#include "serve/metrics.h"

namespace soc::serve {
namespace {

TEST(PrometheusTextTest, RendersCountersGaugesAndHistograms) {
  ServeMetrics metrics;
  metrics.Increment("completed", 7);
  metrics.Increment("solver.ILP.completed", 2);
  metrics.SetGauge("queue_depth", 3);
  metrics.RecordLatency("latency.total", 0.2);
  metrics.RecordLatency("latency.total", 80.0);
  const std::string page = ToPrometheusText(metrics.Snapshot());

  // Names are prefixed and sanitized (dots become underscores).
  EXPECT_NE(page.find("# TYPE soc_completed counter"), std::string::npos);
  EXPECT_NE(page.find("soc_completed 7"), std::string::npos);
  EXPECT_NE(page.find("soc_solver_ILP_completed 2"), std::string::npos);
  EXPECT_NE(page.find("# TYPE soc_queue_depth gauge"), std::string::npos);
  EXPECT_NE(page.find("soc_queue_depth 3"), std::string::npos);

  // Histograms: cumulative buckets ending in +Inf, plus sum/count and the
  // interpolated quantile companion series.
  EXPECT_NE(page.find("# TYPE soc_latency_total histogram"),
            std::string::npos);
  EXPECT_NE(page.find("soc_latency_total_bucket{le=\"0.25\"} 1"),
            std::string::npos);
  EXPECT_NE(page.find("soc_latency_total_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(page.find("soc_latency_total_count 2"), std::string::npos);
  EXPECT_NE(page.find("soc_latency_total_quantile{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(page.find("soc_latency_total_quantile{quantile=\"0.99\"}"),
            std::string::npos);
}

TEST(PrometheusTextTest, QuantileSeriesIsOrderedAndBoundedByMax) {
  ServeMetrics metrics;
  for (int i = 1; i <= 1000; ++i) {
    metrics.RecordLatency("latency.solve", 0.01 * i);
  }
  const MetricsSnapshot snapshot = metrics.Snapshot();
  const HistogramData& histogram = snapshot.histograms.at("latency.solve");
  const double p50 = histogram.Quantile(0.50);
  const double p95 = histogram.Quantile(0.95);
  const double p99 = histogram.Quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, histogram.max_ms);
}

TEST(MetricsExporterTest, ExportsOnCadenceAndStopFlushesFinalPage) {
  ServeMetrics metrics;
  metrics.Increment("completed");

  Mutex mutex;
  std::vector<std::string> pages;
  MetricsExporter::Options options;
  options.interval_s = 0.01;
  options.snapshot_provider = [&metrics] { return metrics.Snapshot(); };
  options.sink = [&mutex, &pages](const std::string& page) {
    MutexLock lock(mutex);
    pages.push_back(page);
  };
  MetricsExporter exporter(std::move(options));

  // Let a few cadence ticks elapse; the loop exports at least once per
  // interval, so this bounds below without timing the loop exactly.
  while (exporter.exports() < 2) {
  }
  metrics.Increment("completed", 41);
  exporter.Stop();
  const std::int64_t exports_after_stop = exporter.exports();
  EXPECT_GE(exports_after_stop, 3);  // >= 2 cadence ticks + final flush.

  {
    MutexLock lock(mutex);
    ASSERT_EQ(static_cast<std::int64_t>(pages.size()), exports_after_stop);
    // The final flush sees the latest counter values.
    EXPECT_NE(pages.back().find("soc_completed 42"), std::string::npos);
  }

  // Stop is idempotent and no exports happen after it returns.
  exporter.Stop();
  EXPECT_EQ(exporter.exports(), exports_after_stop);
}

TEST(MetricsExporterTest, CountersAreMonotonicAcrossExportedSnapshots) {
  ServeMetrics metrics;
  Mutex mutex;
  std::vector<std::int64_t> completed_series;
  MetricsExporter::Options options;
  options.interval_s = 0.005;
  options.snapshot_provider = [&metrics, &mutex, &completed_series] {
    const MetricsSnapshot snapshot = metrics.Snapshot();
    MutexLock lock(mutex);
    const auto it = snapshot.counters.find("completed");
    completed_series.push_back(it == snapshot.counters.end() ? 0
                                                             : it->second);
    return snapshot;
  };
  options.sink = [](const std::string&) {};
  MetricsExporter exporter(std::move(options));
  for (int i = 0; i < 50; ++i) metrics.Increment("completed");
  while (exporter.exports() < 3) {
  }
  exporter.Stop();

  MutexLock lock(mutex);
  ASSERT_GE(completed_series.size(), 3u);
  for (std::size_t i = 1; i < completed_series.size(); ++i) {
    EXPECT_LE(completed_series[i - 1], completed_series[i]);
  }
}

TEST(MetricsExporterTest, SlowSinkDoesNotStretchTheCadence) {
  // Drift regression: scheduling is by absolute next-deadline, so a
  // sink that eats most of the interval still yields one export per
  // interval. A relative sleep-after-work loop would run at interval +
  // sink time (80ms here) and manage only ~7 exports in 600ms.
  ServeMetrics metrics;
  metrics.Increment("completed");
  MetricsExporter::Options options;
  options.interval_s = 0.05;
  options.snapshot_provider = [&metrics] { return metrics.Snapshot(); };
  options.sink = [](const std::string&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  MetricsExporter exporter(std::move(options));
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  exporter.Stop();
  EXPECT_GE(exporter.exports(), 9);
}

}  // namespace
}  // namespace soc::serve
