#include "datagen/categorical_catalog.h"

#include <gtest/gtest.h>

#include "core/brute_force.h"

namespace soc::datagen {
namespace {

TEST(CategoricalCatalogTest, SchemaShape) {
  const categorical::CategoricalSchema schema = UsedCarCategoricalSchema();
  EXPECT_EQ(schema.num_attributes(), 6);
  EXPECT_EQ(schema.domain_size(0), 8);  // Make.
  EXPECT_EQ(schema.domain_size(4), 2);  // Transmission.
  EXPECT_EQ(schema.ValueIndex(0, "Toyota"), 0);
  EXPECT_EQ(schema.ValueIndex(5, "RWD"), 2);
}

TEST(CategoricalCatalogTest, RowsAreValidAndSkewed) {
  CategoricalCatalogOptions options;
  options.num_cars = 2000;
  const categorical::CategoricalTable catalog =
      GenerateCategoricalCatalog(options);
  EXPECT_EQ(catalog.num_rows(), 2000);
  // Value skew: the most popular make must clearly beat the rarest.
  std::vector<int> make_counts(8, 0);
  for (int r = 0; r < catalog.num_rows(); ++r) {
    ++make_counts[catalog.row(r)[0]];
  }
  EXPECT_GT(make_counts[0], 3 * make_counts[7]);
}

TEST(CategoricalCatalogTest, SportsBodiesSkewManual) {
  CategoricalCatalogOptions options;
  options.num_cars = 4000;
  const categorical::CategoricalTable catalog =
      GenerateCategoricalCatalog(options);
  int sports = 0, sports_manual = 0, sedans = 0, sedans_manual = 0;
  for (int r = 0; r < catalog.num_rows(); ++r) {
    const categorical::CategoricalTuple& car = catalog.row(r);
    if (car[1] >= 4) {
      ++sports;
      sports_manual += car[4] == 1;
    } else if (car[1] == 0) {
      ++sedans;
      sedans_manual += car[4] == 1;
    }
  }
  ASSERT_GT(sports, 50);
  ASSERT_GT(sedans, 50);
  EXPECT_GT(static_cast<double>(sports_manual) / sports,
            1.5 * static_cast<double>(sedans_manual) / sedans);
}

TEST(CategoricalWorkloadTest, QueriesAnchoredAndValid) {
  const categorical::CategoricalTable catalog = GenerateCategoricalCatalog();
  CategoricalWorkloadOptions options;
  options.num_queries = 200;
  const auto queries = MakeCategoricalWorkload(catalog, options);
  ASSERT_EQ(queries.size(), 200u);
  int matching = 0;
  for (const categorical::CategoricalQuery& q : queries) {
    ASSERT_GE(q.size(), 1u);
    ASSERT_LE(q.size(), 3u);
    bool hits = false;
    for (int r = 0; r < catalog.num_rows() && !hits; ++r) {
      hits = categorical::QueryMatchesTuple(q, catalog.row(r));
    }
    matching += hits;
  }
  EXPECT_EQ(matching, 200);  // Anchoring guarantees each query matches.
}

TEST(CategoricalCatalogTest, EndToEndThroughReduction) {
  const categorical::CategoricalTable catalog = GenerateCategoricalCatalog();
  const auto queries = MakeCategoricalWorkload(catalog);
  const BruteForceSolver exact;
  auto solution = categorical::SolveCategoricalSoc(
      exact, catalog.schema(), queries, catalog.row(3), 2);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->selected_attributes.size(), 2u);
  EXPECT_GT(solution->satisfied_queries, 0);
}

}  // namespace
}  // namespace soc::datagen
