#include "datagen/camera_catalog.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/brute_force.h"

namespace soc::datagen {
namespace {

TEST(CameraCatalogTest, ShapeAndRanges) {
  CameraCatalogOptions options;
  options.num_cameras = 300;
  const numeric::NumericTable catalog = GenerateCameraCatalog(options);
  EXPECT_EQ(catalog.num_rows(), 300);
  EXPECT_EQ(catalog.num_attributes(), kNumCameraAttributes);
  EXPECT_EQ(catalog.attribute_name(0), "Price");
  for (int r = 0; r < catalog.num_rows(); ++r) {
    const std::vector<double>& camera = catalog.row(r);
    EXPECT_GE(camera[0], 90.0);    // Price.
    EXPECT_LE(camera[0], 4500.0);
    EXPECT_GE(camera[1], 0.15);    // Weight.
    EXPECT_LE(camera[1], 1.60);
    EXPECT_GE(camera[2], 10.0);    // Resolution (whole MP).
    EXPECT_DOUBLE_EQ(camera[2], std::round(camera[2]));
  }
}

TEST(CameraCatalogTest, TiersProduceCorrelation) {
  CameraCatalogOptions options;
  options.num_cameras = 3000;
  const numeric::NumericTable catalog = GenerateCameraCatalog(options);
  // Price and resolution must correlate positively across tiers: compare
  // mean resolution of the cheapest vs the priciest third.
  std::vector<std::pair<double, double>> cameras;
  for (int r = 0; r < catalog.num_rows(); ++r) {
    cameras.emplace_back(catalog.row(r)[0], catalog.row(r)[2]);
  }
  std::sort(cameras.begin(), cameras.end());
  const int third = static_cast<int>(cameras.size() / 3);
  double cheap_res = 0, pricey_res = 0;
  for (int i = 0; i < third; ++i) {
    cheap_res += cameras[i].second;
    pricey_res += cameras[cameras.size() - 1 - i].second;
  }
  EXPECT_GT(pricey_res / third, cheap_res / third + 5.0);
}

TEST(CameraCatalogTest, DeterministicForSeed) {
  CameraCatalogOptions options;
  options.num_cameras = 50;
  const auto a = GenerateCameraCatalog(options);
  const auto b = GenerateCameraCatalog(options);
  for (int r = 0; r < 50; ++r) EXPECT_EQ(a.row(r), b.row(r));
}

TEST(CameraWorkloadTest, QueriesAreWellFormedAndAnchored) {
  CameraCatalogOptions catalog_options;
  catalog_options.num_cameras = 500;
  const numeric::NumericTable catalog =
      GenerateCameraCatalog(catalog_options);
  CameraWorkloadOptions options;
  options.num_queries = 300;
  const std::vector<numeric::RangeQuery> queries =
      MakeCameraWorkload(catalog, options);
  ASSERT_EQ(queries.size(), 300u);
  int total_matches = 0;
  for (const numeric::RangeQuery& q : queries) {
    ASSERT_GE(q.size(), 1u);
    ASSERT_LE(q.size(), 3u);
    for (const numeric::RangeCondition& condition : q) {
      EXPECT_GE(condition.attribute, 0);
      EXPECT_LT(condition.attribute, catalog.num_attributes());
      EXPECT_LE(condition.lo, condition.hi);
    }
    // Anchored windows must match at least the anchor camera.
    bool hits = false;
    for (int r = 0; r < catalog.num_rows() && !hits; ++r) {
      hits = numeric::RangeQueryMatches(q, catalog.row(r));
    }
    total_matches += hits;
  }
  EXPECT_EQ(total_matches, 300);  // Every query matches something.
}

TEST(CameraWorkloadTest, EndToEndThroughReduction) {
  CameraCatalogOptions catalog_options;
  catalog_options.num_cameras = 400;
  const numeric::NumericTable catalog =
      GenerateCameraCatalog(catalog_options);
  const std::vector<numeric::RangeQuery> queries =
      MakeCameraWorkload(catalog);
  const BruteForceSolver exact;
  auto solution = numeric::SolveNumericSoc(
      exact, CameraAttributeNames(), queries, catalog.row(7), 3);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->selected_attributes.size(), 3u);
  EXPECT_GT(solution->satisfied_queries, 0);
}

}  // namespace
}  // namespace soc::datagen
