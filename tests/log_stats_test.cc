#include "boolean/log_stats.h"

#include "boolean/evaluator.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/workload.h"
#include "paper_example.h"

namespace soc {
namespace {

TEST(LogStatsTest, PaperExampleStats) {
  const QueryLog log = testdata::PaperQueryLog();
  const QueryLogStats stats = ComputeQueryLogStats(log);
  EXPECT_EQ(stats.num_queries, 5);
  EXPECT_EQ(stats.num_attributes, 6);
  EXPECT_EQ(stats.distinct_queries, 5);
  EXPECT_EQ(stats.empty_queries, 0);
  EXPECT_EQ(stats.min_query_size, 2);
  EXPECT_EQ(stats.max_query_size, 2);
  EXPECT_DOUBLE_EQ(stats.mean_query_size, 2.0);
  ASSERT_EQ(stats.size_histogram.size(), 3u);
  EXPECT_EQ(stats.size_histogram[2], 5);
  // PowerDoors (attr 3) is the most frequent, count 3.
  EXPECT_EQ(stats.attribute_frequencies[0].first, 3);
  EXPECT_EQ(stats.attribute_frequencies[0].second, 3);
  // All 10 attribute occurrences are within the top 5 attributes... the
  // log uses 6 attributes; top-5 covers all but the least frequent one.
  EXPECT_GT(stats.top5_attribute_share, 0.8);
}

TEST(LogStatsTest, EmptyLog) {
  const QueryLog log(AttributeSchema::Anonymous(4));
  const QueryLogStats stats = ComputeQueryLogStats(log);
  EXPECT_EQ(stats.num_queries, 0);
  EXPECT_EQ(stats.distinct_queries, 0);
  EXPECT_EQ(stats.min_query_size, 0);
  EXPECT_EQ(stats.max_query_size, 0);
  EXPECT_DOUBLE_EQ(stats.mean_query_size, 0.0);
  EXPECT_DOUBLE_EQ(stats.top5_attribute_share, 0.0);
}

TEST(LogStatsTest, CountsDuplicatesAndEmpties) {
  QueryLog log(AttributeSchema::Anonymous(3));
  log.AddQueryFromIndices({0, 1});
  log.AddQueryFromIndices({0, 1});
  log.AddQuery(DynamicBitset(3));
  const QueryLogStats stats = ComputeQueryLogStats(log);
  EXPECT_EQ(stats.num_queries, 3);
  EXPECT_EQ(stats.distinct_queries, 2);
  EXPECT_EQ(stats.empty_queries, 1);
  EXPECT_EQ(stats.min_query_size, 0);
}

TEST(LogStatsTest, FormatMentionsAttributeNames) {
  const QueryLog log = testdata::PaperQueryLog();
  const std::string text =
      FormatQueryLogStats(log, ComputeQueryLogStats(log));
  EXPECT_NE(text.find("PowerDoors:3"), std::string::npos);
  EXPECT_NE(text.find("queries: 5"), std::string::npos);
}

TEST(LogStatsTest, CollapseDuplicatesPreservesTotals) {
  QueryLog log(AttributeSchema::Anonymous(4));
  log.AddQueryFromIndices({0});
  log.AddQueryFromIndices({1, 2});
  log.AddQueryFromIndices({0});
  log.AddQueryFromIndices({0});
  std::vector<int> weights;
  const QueryLog deduped = CollapseDuplicateQueries(log, &weights);
  ASSERT_EQ(deduped.size(), 2);
  EXPECT_EQ(weights, (std::vector<int>{3, 1}));
  EXPECT_EQ(deduped.query(0).SetBits(), (std::vector<int>{0}));
}

TEST(LogStatsTest, WeightedCountMatchesPlainCount) {
  Rng rng(99);
  const AttributeSchema schema = AttributeSchema::Anonymous(10);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = 200;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
  std::vector<int> weights;
  const QueryLog deduped = CollapseDuplicateQueries(log, &weights);
  EXPECT_LT(deduped.size(), log.size());  // Duplicates exist at this size.
  for (int trial = 0; trial < 20; ++trial) {
    DynamicBitset tuple(10);
    for (int a = 0; a < 10; ++a) {
      if (rng.NextBernoulli(0.5)) tuple.Set(a);
    }
    EXPECT_EQ(CountSatisfiedWeighted(deduped, weights, tuple),
              CountSatisfiedQueries(log, tuple));
  }
}

}  // namespace
}  // namespace soc
