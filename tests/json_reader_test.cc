#include "common/json_reader.h"

#include <gtest/gtest.h>

namespace soc {
namespace {

using Kind = JsonScalar::Kind;

TEST(JsonReaderTest, ParsesAllScalarKinds) {
  auto object = ParseFlatJsonObject(
      R"({"s":"hi","n":-2.5,"i":7,"t":true,"f":false,"z":null})");
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(object->size(), 6u);
  EXPECT_EQ(object->at("s").kind, Kind::kString);
  EXPECT_EQ(object->at("s").string_value, "hi");
  EXPECT_EQ(object->at("n").kind, Kind::kNumber);
  EXPECT_DOUBLE_EQ(object->at("n").number_value, -2.5);
  EXPECT_DOUBLE_EQ(object->at("i").number_value, 7);
  EXPECT_EQ(object->at("t").kind, Kind::kBool);
  EXPECT_TRUE(object->at("t").bool_value);
  EXPECT_FALSE(object->at("f").bool_value);
  EXPECT_EQ(object->at("z").kind, Kind::kNull);
}

TEST(JsonReaderTest, EmptyObjectAndWhitespace) {
  auto empty = ParseFlatJsonObject("  { }  ");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  auto spaced = ParseFlatJsonObject("{ \"a\" :\t1 ,\n\"b\": 2 }");
  ASSERT_TRUE(spaced.ok());
  EXPECT_EQ(spaced->size(), 2u);
}

TEST(JsonReaderTest, DecodesStringEscapes) {
  auto object = ParseFlatJsonObject(
      R"({"e":"q\"b\\s\/f\b\f\n\r\tend"})");
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(object->at("e").string_value, "q\"b\\s/f\b\f\n\r\tend");
}

TEST(JsonReaderTest, DecodesUnicodeEscapes) {
  auto object = ParseFlatJsonObject(R"({"u":"é€"})");
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(object->at("u").string_value, "\xC3\xA9\xE2\x82\xAC");  // é€

  // Surrogate pair: U+1F600.
  auto emoji = ParseFlatJsonObject(R"({"u":"😀"})");
  ASSERT_TRUE(emoji.ok());
  EXPECT_EQ(emoji->at("u").string_value, "\xF0\x9F\x98\x80");
}

TEST(JsonReaderTest, RawUtf8PassesThrough) {
  auto object = ParseFlatJsonObject("{\"u\":\"caf\xC3\xA9\"}");
  ASSERT_TRUE(object.ok());
  EXPECT_EQ(object->at("u").string_value, "caf\xC3\xA9");
}

TEST(JsonReaderTest, DuplicateKeysKeepLastValue) {
  auto object = ParseFlatJsonObject(R"({"a":1,"a":2})");
  ASSERT_TRUE(object.ok());
  EXPECT_DOUBLE_EQ(object->at("a").number_value, 2);
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseFlatJsonObject("").ok());
  EXPECT_FALSE(ParseFlatJsonObject("not json").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":1").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":}").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":tru}").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{a:1}").ok());
}

TEST(JsonReaderTest, RejectsNestedValues) {
  EXPECT_FALSE(ParseFlatJsonObject(R"({"a":[1,2]})").ok());
  EXPECT_FALSE(ParseFlatJsonObject(R"({"a":{"b":1}})").ok());
}

TEST(JsonReaderTest, RejectsBadEscapes) {
  EXPECT_FALSE(ParseFlatJsonObject(R"({"a":"\x41"})").ok());
  EXPECT_FALSE(ParseFlatJsonObject(R"({"a":"\u12"})").ok());
  EXPECT_FALSE(ParseFlatJsonObject(R"({"a":"\uZZZZ"})").ok());
  // Unpaired surrogates.
  EXPECT_FALSE(ParseFlatJsonObject(R"({"a":"\ud83d"})").ok());
  EXPECT_FALSE(ParseFlatJsonObject(R"({"a":"\ude00"})").ok());
  // Raw control character.
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":\"x\ny\"}").ok());
  // Unterminated string.
  EXPECT_FALSE(ParseFlatJsonObject("{\"a\":\"oops}").ok());
}

}  // namespace
}  // namespace soc
