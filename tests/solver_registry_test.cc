// The registry's name table and factory table were historically two
// separate lists that could drift apart; these tests pin the invariant
// that every advertised name constructs (and nothing else does).

#include "core/solver_registry.h"

#include <set>

#include <gtest/gtest.h>

#include "common/status.h"

namespace soc {
namespace {

TEST(SolverRegistryTest, EveryAdvertisedNameConstructs) {
  const std::vector<std::string> names = RegisteredSolverNames();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    auto solver = CreateSolverByName(name);
    ASSERT_TRUE(solver.ok()) << name << ": " << solver.status().ToString();
    ASSERT_NE(solver.value(), nullptr) << name;
  }
}

TEST(SolverRegistryTest, NamesAreUniqueAndStable) {
  const std::vector<std::string> names = RegisteredSolverNames();
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
  // The paper's solver set; additions are fine, removals are a break.
  for (const char* required :
       {"BruteForce", "BranchAndBound", "ILP", "MaxFreqItemSets",
        "MaxFreqItemSets-dfs", "ConsumeAttr", "ConsumeAttrCumul",
        "ConsumeQueries", "Fallback"}) {
    EXPECT_EQ(unique.count(required), 1u) << required;
  }
}

TEST(SolverRegistryTest, ConstructedSolverReportsItsOwnName) {
  // name() and the registry key agree except for the "-dfs" engine
  // variant, which is the same solver class under a different engine.
  for (const std::string& name : RegisteredSolverNames()) {
    auto solver = CreateSolverByName(name);
    ASSERT_TRUE(solver.ok()) << name;
    if (name == "MaxFreqItemSets-dfs") {
      EXPECT_EQ(solver.value()->name(), "MaxFreqItemSets");
    } else {
      EXPECT_EQ(solver.value()->name(), name) << name;
    }
  }
}

TEST(SolverRegistryTest, UnknownNameIsNotFound) {
  auto solver = CreateSolverByName("NoSuchSolver");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace soc
