// TraceRecorder tests: span nesting, cross-thread recording, overflow
// accounting, and a round-trip of exported event lines through the
// serve-layer flat JSON reader (the export deliberately emits one event
// object per line to make that possible).

#include "obs/trace_recorder.h"

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/solve_context.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "obs/context_tracer.h"
#include "obs/span_names.h"
#include "common/json_reader.h"

namespace soc::obs {
namespace {

// The exported event lines, one flat JSON object per event (the
// surrounding array/footer lines are dropped; trailing commas stripped).
std::vector<std::map<std::string, JsonScalar>> ParseEventLines(
    const std::string& json) {
  std::vector<std::map<std::string, JsonScalar>> events;
  for (const std::string& raw : Split(json, '\n')) {
    std::string line = raw;
    if (!line.empty() && line.back() == ',') line.pop_back();
    if (line.empty() || line.front() != '{') continue;
    if (line.find("\"ph\"") == std::string::npos) continue;  // Header/footer.
    auto parsed = ParseFlatJsonObject(line);
    // Lines carrying an args object are not flat; tests that need args
    // assert on the raw text instead.
    if (!parsed.ok()) continue;
    events.push_back(std::move(parsed).value());
  }
  return events;
}

TEST(TraceRecorderTest, DisabledRecorderIsInertAndSpansReportInactive) {
  TraceRecorder recorder;
  EXPECT_FALSE(recorder.enabled());
  {
    TraceSpan span(&recorder, "solve", "test");
    EXPECT_FALSE(span.active());
  }
  TraceSpan null_span(nullptr, "solve", "test");
  EXPECT_FALSE(null_span.active());
  recorder.RecordInstant("degraded", "test");
  EXPECT_EQ(recorder.events_recorded(), 0);
  EXPECT_EQ(recorder.events_dropped(), 0);
}

TEST(TraceRecorderTest, NestedSpansAreContainedInTheirParent) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  {
    TraceSpan outer(&recorder, "request", "test");
    ASSERT_TRUE(outer.active());
    TraceSpan inner(&recorder, "solve", "test");
    ASSERT_TRUE(inner.active());
  }
  EXPECT_EQ(recorder.events_recorded(), 2);

  const auto events = ParseEventLines(recorder.ToChromeTraceJson());
  ASSERT_EQ(events.size(), 2u);
  // Export sorts by start time: the outer span opened first.
  EXPECT_EQ(events[0].at("name").string_value, "request");
  EXPECT_EQ(events[1].at("name").string_value, "solve");
  const double outer_ts = events[0].at("ts").number_value;
  const double outer_end = outer_ts + events[0].at("dur").number_value;
  const double inner_ts = events[1].at("ts").number_value;
  const double inner_end = inner_ts + events[1].at("dur").number_value;
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_LE(inner_end, outer_end + 1e-3);  // One-microsecond rounding slop.
  // Same thread: Perfetto nests by containment on one track.
  EXPECT_EQ(events[0].at("tid").number_value,
            events[1].at("tid").number_value);
}

TEST(TraceRecorderTest, CrossThreadEventsGetDistinctTids) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  constexpr int kThreads = 4;
  std::atomic<int> started{0};
  {
    ThreadPool pool(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      pool.Submit([&recorder, &started] {
        ++started;
        // Hold every worker inside its task so all four record from
        // genuinely distinct threads.
        while (started.load() < kThreads) {
        }
        TraceSpan span(&recorder, "solve", "test");
      });
    }
  }
  EXPECT_EQ(recorder.events_recorded(), kThreads);
  EXPECT_EQ(recorder.events_dropped(), 0);

  const auto events = ParseEventLines(recorder.ToChromeTraceJson());
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads));
  std::set<double> tids;
  for (const auto& event : events) tids.insert(event.at("tid").number_value);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(TraceRecorderTest, FullBufferDropsAndCountsInsteadOfGrowing) {
  TraceRecorder recorder(/*per_thread_capacity=*/2);
  recorder.set_enabled(true);
  for (int i = 0; i < 5; ++i) recorder.RecordInstant("degraded", "test");
  EXPECT_EQ(recorder.events_recorded(), 2);
  EXPECT_EQ(recorder.events_dropped(), 3);
  EXPECT_NE(recorder.ToChromeTraceJson().find("\"dropped_events\":3"),
            std::string::npos);
}

TEST(TraceRecorderTest, ExportedEventLinesRoundTripThroughFlatReader) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.RecordComplete("solve", "serve", /*start_ns=*/1500,
                          /*dur_ns=*/2500);
  recorder.RecordInstant("degraded", "solve");

  const std::string json = recorder.ToChromeTraceJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  const auto events = ParseEventLines(json);
  ASSERT_EQ(events.size(), 2u);

  const auto& complete = events[0];
  EXPECT_EQ(complete.at("name").string_value, "solve");
  EXPECT_EQ(complete.at("cat").string_value, "serve");
  EXPECT_EQ(complete.at("ph").string_value, "X");
  EXPECT_DOUBLE_EQ(complete.at("ts").number_value, 1.5);   // µs.
  EXPECT_DOUBLE_EQ(complete.at("dur").number_value, 2.5);  // µs.
  EXPECT_EQ(complete.at("pid").number_value, 1.0);

  const auto& instant = events[1];
  EXPECT_EQ(instant.at("ph").string_value, "i");
  EXPECT_EQ(instant.at("s").string_value, "t");
  EXPECT_EQ(instant.count("dur"), 0u);
}

TEST(TraceRecorderTest, SpanArgsSerializeAsJsonObject) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  {
    TraceSpan span(&recorder, "solve", "serve");
    ASSERT_TRUE(span.active());
    span.AddArg(TraceArg::Str("solver", "Fallback"));
    span.AddArg(TraceArg::Int("m", 3));
  }
  const std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"args\":{\"solver\":\"Fallback\",\"m\":3}"),
            std::string::npos);
}

TEST(TraceRecorderTest, PhaseListenerTurnsPhaseScopesIntoSpans) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  SolveContext context;
  TracingPhaseListener listener(&recorder, "solve");
  context.set_phase_listener(&listener);
  {
    PhaseScope mining(&context, "mining");
    PhaseScope walk(&context, "mine_walk");
  }
  EXPECT_EQ(recorder.events_recorded(), 2);
  const auto events = ParseEventLines(recorder.ToChromeTraceJson());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").string_value, "mining");
  EXPECT_EQ(events[1].at("name").string_value, "mine_walk");
}

TEST(TraceRecorderTest, StoppedContextEmitsDegradedInstantWithArgs) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  SolveContext context;
  context.set_tick_budget(3);
  TracingPhaseListener listener(&recorder, "solve");
  context.set_phase_listener(&listener);
  while (!context.Checkpoint()) {
  }
  const std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"name\":\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("\"stop_reason\":\"tick_budget\""), std::string::npos);
  EXPECT_NE(json.find("\"tick_budget\":3"), std::string::npos);
}

TEST(TraceRecorderTest, DropCountingIsPerThreadBuffer) {
  // Capacity is per thread: two threads overflowing their own buffers must
  // each keep `capacity` events, with the spill counted — not evicting or
  // stealing slots from the other thread.
  TraceRecorder recorder(/*per_thread_capacity=*/2);
  recorder.set_enabled(true);
  constexpr int kPerThread = 5;
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.RecordInstant("degraded", "test");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(recorder.events_recorded(), 4);
  EXPECT_EQ(recorder.events_dropped(), 2 * (kPerThread - 2));
  const auto events = ParseEventLines(recorder.ToChromeTraceJson());
  ASSERT_EQ(events.size(), 4u);
  std::map<double, int> per_tid;
  for (const auto& event : events) ++per_tid[event.at("tid").number_value];
  ASSERT_EQ(per_tid.size(), 2u);
  for (const auto& [tid, count] : per_tid) EXPECT_EQ(count, 2) << tid;
}

TEST(TraceRecorderTest, EarliestEventsSurviveOverflowUnchanged) {
  // The buffer keeps the first `capacity` events and drops the rest — a
  // full buffer must never corrupt or evict what was already published.
  TraceRecorder recorder(/*per_thread_capacity=*/2);
  recorder.set_enabled(true);
  recorder.RecordComplete("solve", "first", /*start_ns=*/100, /*dur_ns=*/10);
  recorder.RecordComplete("solve", "second", /*start_ns=*/200, /*dur_ns=*/10);
  recorder.RecordComplete("solve", "late", /*start_ns=*/300, /*dur_ns=*/10);
  EXPECT_EQ(recorder.events_dropped(), 1);
  const auto events = ParseEventLines(recorder.ToChromeTraceJson());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("cat").string_value, "first");
  EXPECT_EQ(events[1].at("cat").string_value, "second");
}

TEST(TraceRecorderTest, DisabledWindowNeitherRecordsNorCountsDrops) {
  TraceRecorder recorder(/*per_thread_capacity=*/8);
  recorder.set_enabled(true);
  recorder.RecordInstant("degraded", "test");
  recorder.set_enabled(false);
  recorder.RecordInstant("degraded", "test");  // Inert, not a drop.
  recorder.set_enabled(true);
  recorder.RecordInstant("degraded", "test");
  EXPECT_EQ(recorder.events_recorded(), 2);
  EXPECT_EQ(recorder.events_dropped(), 0);
}

TEST(TraceRecorderTest, AllRecordedNamesAreCanonical) {
  EXPECT_TRUE(IsCanonicalSpanName("solve"));
  EXPECT_TRUE(IsCanonicalSpanName("degraded"));
  EXPECT_FALSE(IsCanonicalSpanName("not_a_span"));
  EXPECT_FALSE(IsCanonicalSpanName(""));
}

}  // namespace
}  // namespace soc::obs
