// JSONL protocol round-trip tests, centered on the response side: every
// ResponseToJson encoding must parse back via ParseSolveResponseLine into
// an equivalent response whose re-encoding is byte-identical (the
// fixed-point property the response fuzzer enforces at scale), including
// the kOverloaded guidance fields retry_after_ms and shed_reason.

#include "serve/protocol.h"

#include <string>

#include <gtest/gtest.h>

#include "serve/visibility_service.h"

namespace soc::serve {
namespace {

// Encode -> parse -> re-encode must be a fixed point.
SolveResponse RoundTrip(const SolveResponse& response) {
  const std::string encoded = ResponseToJson(response).ToString();
  auto parsed = ParseSolveResponseLine(encoded);
  EXPECT_TRUE(parsed.ok()) << encoded << ": " << parsed.status().ToString();
  if (!parsed.ok()) return SolveResponse{};
  EXPECT_EQ(ResponseToJson(*parsed).ToString(), encoded);
  return std::move(parsed).value();
}

TEST(ServeProtocolTest, OkResponseRoundTrips) {
  SolveResponse response;
  response.id = "r17";
  response.solver = "BranchAndBound";
  response.solution.selected = DynamicBitset::FromString("010110");
  response.solution.satisfied_queries = 42;
  response.solution.proved_optimal = true;
  response.queue_ms = 0.25;
  response.solve_ms = 3.5;

  const SolveResponse parsed = RoundTrip(response);
  EXPECT_EQ(parsed.id, "r17");
  EXPECT_TRUE(parsed.status.ok());
  EXPECT_EQ(parsed.solver, "BranchAndBound");
  EXPECT_EQ(parsed.solution.selected.ToString(), "010110");
  EXPECT_EQ(parsed.solution.satisfied_queries, 42);
  EXPECT_TRUE(parsed.solution.proved_optimal);
  EXPECT_FALSE(parsed.degraded);
  EXPECT_EQ(parsed.queue_ms, 0.25);
  EXPECT_EQ(parsed.solve_ms, 3.5);
}

TEST(ServeProtocolTest, DegradedResponseCarriesItsStopReason) {
  SolveResponse response;
  response.id = "slow";
  response.solver = "ILP";
  response.solution.selected = DynamicBitset::FromString("1100");
  response.solution.satisfied_queries = 7;
  response.degraded = true;
  response.stop_reason = StopReason::kDeadline;

  const SolveResponse parsed = RoundTrip(response);
  EXPECT_TRUE(parsed.degraded);
  EXPECT_EQ(parsed.stop_reason, StopReason::kDeadline);
}

TEST(ServeProtocolTest, ShedResponseRoundTripsGuidanceFields) {
  SolveResponse response;
  response.id = "shed-1";
  response.status = OverloadedError("predicted completion exceeds deadline");
  response.shed_reason = kShedReasonPredicted;
  response.retry_after_ms = 12.5;

  const SolveResponse parsed = RoundTrip(response);
  EXPECT_EQ(parsed.status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(parsed.status.message(),
            "predicted completion exceeds deadline");
  EXPECT_EQ(parsed.shed_reason, kShedReasonPredicted);
  EXPECT_EQ(parsed.retry_after_ms, 12.5);
  // An error line never leaks solution fields.
  EXPECT_EQ(parsed.solution.selected.Count(), 0u);
}

TEST(ServeProtocolTest, ErrorResponseWithoutGuidanceOmitsTheFields) {
  SolveResponse response;
  response.id = "bad";
  response.status = InvalidArgumentError("tuple width 3 != 12");

  const std::string encoded = ResponseToJson(response).ToString();
  EXPECT_EQ(encoded.find("shed_reason"), std::string::npos);
  EXPECT_EQ(encoded.find("retry_after_ms"), std::string::npos);
  const SolveResponse parsed = RoundTrip(response);
  EXPECT_EQ(parsed.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(parsed.retry_after_ms, 0);
  EXPECT_TRUE(parsed.shed_reason.empty());
}

TEST(ServeProtocolTest, EveryShedReasonConstantRoundTrips) {
  for (const char* reason :
       {kShedReasonQueueFull, kShedReasonPredicted, kShedReasonExpired,
        kShedReasonShutdown}) {
    SolveResponse response;
    response.id = "x";
    response.status = OverloadedError("shed");
    response.shed_reason = reason;
    response.retry_after_ms = 1;
    EXPECT_EQ(RoundTrip(response).shed_reason, reason);
  }
}

TEST(ServeProtocolTest, ParseRejectsMalformedResponses) {
  const char* malformed[] = {
      // Not JSON at all.
      "nope",
      // Missing status.
      R"({"id":"1"})",
      // Unknown status code.
      R"({"id":"1","status":"Sideways","error":"x"})",
      // OK line without a selection.
      R"({"id":"1","status":"OK"})",
      // 'error' on an OK line.
      R"({"id":"1","status":"OK","error":"x","selected":"01"})",
      // Solution fields on an error line.
      R"({"id":"1","status":"Overloaded","error":"x","selected":"01"})",
      // Error line without a message.
      R"({"id":"1","status":"Overloaded"})",
      // degraded <-> stop_reason parity, both directions.
      R"({"id":"1","status":"OK","selected":"01","degraded":true})",
      R"({"id":"1","status":"OK","selected":"01","stop_reason":"deadline"})",
      // Unknown stop reason.
      R"({"id":"1","status":"OK","selected":"01","degraded":true,)"
      R"("stop_reason":"tired"})",
      // Negative retry hint.
      R"({"id":"1","status":"Overloaded","error":"x","retry_after_ms":-1})",
      // Non-bitstring selection.
      R"({"id":"1","status":"OK","selected":"0x1"})",
      // Unknown field.
      R"({"id":"1","status":"OK","selected":"01","verbosity":3})",
  };
  for (const char* line : malformed) {
    EXPECT_FALSE(ParseSolveResponseLine(line).ok()) << line;
  }
}

TEST(ServeProtocolTest, ParseAcceptsHandWrittenShedLine) {
  // The exact shape socvis_serve emits for a predictive shed; clients
  // parsing the stream by hand depend on these field names.
  auto parsed = ParseSolveResponseLine(
      R"({"id":"9","status":"Overloaded",)"
      R"("error":"predicted completion 30ms exceeds deadline 10ms",)"
      R"("shed_reason":"predicted_deadline_miss","retry_after_ms":15})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(parsed->shed_reason, "predicted_deadline_miss");
  EXPECT_EQ(parsed->retry_after_ms, 15);
}

TEST(ServeProtocolTest, StatusAndStopReasonNamesRoundTripThroughStrings) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOverloaded, StatusCode::kDeadlineExceeded,
        StatusCode::kInternal}) {
    StatusCode back;
    ASSERT_TRUE(StatusCodeFromString(StatusCodeToString(code), &back));
    EXPECT_EQ(back, code);
  }
  StatusCode ignored_code;
  EXPECT_FALSE(StatusCodeFromString("NotACode", &ignored_code));
  for (StopReason reason :
       {StopReason::kNone, StopReason::kDeadline, StopReason::kCancelled,
        StopReason::kTickBudget, StopReason::kResourceLimit}) {
    StopReason back;
    ASSERT_TRUE(StopReasonFromString(StopReasonToString(reason), &back));
    EXPECT_EQ(back, reason);
  }
  StopReason ignored_reason;
  EXPECT_FALSE(StopReasonFromString("tired", &ignored_reason));
}

}  // namespace
}  // namespace soc::serve
