// JSONL protocol round-trip tests, centered on the response side: every
// ResponseToJson encoding must parse back via ParseSolveResponseLine into
// an equivalent response whose re-encoding is byte-identical (the
// fixed-point property the response fuzzer enforces at scale), including
// the kOverloaded guidance fields retry_after_ms and shed_reason.

#include "serve/protocol.h"

#include <string>

#include <gtest/gtest.h>

#include "serve/visibility_service.h"

namespace soc::serve {
namespace {

// Encode -> parse -> re-encode must be a fixed point.
SolveResponse RoundTrip(const SolveResponse& response) {
  const std::string encoded = ResponseToJson(response).ToString();
  auto parsed = ParseSolveResponseLine(encoded);
  EXPECT_TRUE(parsed.ok()) << encoded << ": " << parsed.status().ToString();
  if (!parsed.ok()) return SolveResponse{};
  EXPECT_EQ(ResponseToJson(*parsed).ToString(), encoded);
  return std::move(parsed).value();
}

TEST(ServeProtocolTest, OkResponseRoundTrips) {
  SolveResponse response;
  response.id = "r17";
  response.solver = "BranchAndBound";
  response.solution.selected = DynamicBitset::FromString("010110");
  response.solution.satisfied_queries = 42;
  response.solution.proved_optimal = true;
  response.queue_ms = 0.25;
  response.solve_ms = 3.5;

  const SolveResponse parsed = RoundTrip(response);
  EXPECT_EQ(parsed.id, "r17");
  EXPECT_TRUE(parsed.status.ok());
  EXPECT_EQ(parsed.solver, "BranchAndBound");
  EXPECT_EQ(parsed.solution.selected.ToString(), "010110");
  EXPECT_EQ(parsed.solution.satisfied_queries, 42);
  EXPECT_TRUE(parsed.solution.proved_optimal);
  EXPECT_FALSE(parsed.degraded);
  EXPECT_EQ(parsed.queue_ms, 0.25);
  EXPECT_EQ(parsed.solve_ms, 3.5);
}

TEST(ServeProtocolTest, DegradedResponseCarriesItsStopReason) {
  SolveResponse response;
  response.id = "slow";
  response.solver = "ILP";
  response.solution.selected = DynamicBitset::FromString("1100");
  response.solution.satisfied_queries = 7;
  response.degraded = true;
  response.stop_reason = StopReason::kDeadline;

  const SolveResponse parsed = RoundTrip(response);
  EXPECT_TRUE(parsed.degraded);
  EXPECT_EQ(parsed.stop_reason, StopReason::kDeadline);
}

TEST(ServeProtocolTest, ShedResponseRoundTripsGuidanceFields) {
  SolveResponse response;
  response.id = "shed-1";
  response.status = OverloadedError("predicted completion exceeds deadline");
  response.shed_reason = kShedReasonPredicted;
  response.retry_after_ms = 12.5;

  const SolveResponse parsed = RoundTrip(response);
  EXPECT_EQ(parsed.status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(parsed.status.message(),
            "predicted completion exceeds deadline");
  EXPECT_EQ(parsed.shed_reason, kShedReasonPredicted);
  EXPECT_EQ(parsed.retry_after_ms, 12.5);
  // An error line never leaks solution fields.
  EXPECT_EQ(parsed.solution.selected.Count(), 0u);
}

TEST(ServeProtocolTest, ErrorResponseWithoutGuidanceOmitsTheFields) {
  SolveResponse response;
  response.id = "bad";
  response.status = InvalidArgumentError("tuple width 3 != 12");

  const std::string encoded = ResponseToJson(response).ToString();
  EXPECT_EQ(encoded.find("shed_reason"), std::string::npos);
  EXPECT_EQ(encoded.find("retry_after_ms"), std::string::npos);
  const SolveResponse parsed = RoundTrip(response);
  EXPECT_EQ(parsed.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(parsed.retry_after_ms, 0);
  EXPECT_TRUE(parsed.shed_reason.empty());
}

TEST(ServeProtocolTest, EveryShedReasonConstantRoundTrips) {
  for (const char* reason :
       {kShedReasonQueueFull, kShedReasonPredicted, kShedReasonExpired,
        kShedReasonShutdown}) {
    SolveResponse response;
    response.id = "x";
    response.status = OverloadedError("shed");
    response.shed_reason = reason;
    response.retry_after_ms = 1;
    EXPECT_EQ(RoundTrip(response).shed_reason, reason);
  }
}

TEST(ServeProtocolTest, ParseRejectsMalformedResponses) {
  const char* malformed[] = {
      // Not JSON at all.
      "nope",
      // Missing status.
      R"({"id":"1"})",
      // Unknown status code.
      R"({"id":"1","status":"Sideways","error":"x"})",
      // OK line without a selection.
      R"({"id":"1","status":"OK"})",
      // 'error' on an OK line.
      R"({"id":"1","status":"OK","error":"x","selected":"01"})",
      // Solution fields on an error line.
      R"({"id":"1","status":"Overloaded","error":"x","selected":"01"})",
      // Error line without a message.
      R"({"id":"1","status":"Overloaded"})",
      // degraded <-> stop_reason parity, both directions.
      R"({"id":"1","status":"OK","selected":"01","degraded":true})",
      R"({"id":"1","status":"OK","selected":"01","stop_reason":"deadline"})",
      // Unknown stop reason.
      R"({"id":"1","status":"OK","selected":"01","degraded":true,)"
      R"("stop_reason":"tired"})",
      // Negative retry hint.
      R"({"id":"1","status":"Overloaded","error":"x","retry_after_ms":-1})",
      // Non-bitstring selection.
      R"({"id":"1","status":"OK","selected":"0x1"})",
      // Unknown field.
      R"({"id":"1","status":"OK","selected":"01","verbosity":3})",
  };
  for (const char* line : malformed) {
    EXPECT_FALSE(ParseSolveResponseLine(line).ok()) << line;
  }
}

TEST(ServeProtocolTest, ParseAcceptsHandWrittenShedLine) {
  // The exact shape socvis_serve emits for a predictive shed; clients
  // parsing the stream by hand depend on these field names.
  auto parsed = ParseSolveResponseLine(
      R"({"id":"9","status":"Overloaded",)"
      R"("error":"predicted completion 30ms exceeds deadline 10ms",)"
      R"("shed_reason":"predicted_deadline_miss","retry_after_ms":15})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->status.code(), StatusCode::kOverloaded);
  EXPECT_EQ(parsed->shed_reason, "predicted_deadline_miss");
  EXPECT_EQ(parsed->retry_after_ms, 15);
}

TEST(ServeProtocolTest, MultiTenantResponseRoundTripsItsMetadata) {
  SolveResponse response;
  response.id = "r3";
  response.tenant_id = "acme";
  response.epoch = 7;
  response.cache_hit = true;
  response.solver = "ILP";
  response.solution.selected = DynamicBitset::FromString("0101");
  response.solution.satisfied_queries = 12;
  response.solve_ms = 0.05;

  const SolveResponse parsed = RoundTrip(response);
  EXPECT_EQ(parsed.tenant_id, "acme");
  EXPECT_EQ(parsed.epoch, 7);
  EXPECT_TRUE(parsed.cache_hit);
}

TEST(ServeProtocolTest, SingleTenantResponseOmitsTenantFields) {
  SolveResponse response;
  response.id = "r1";
  response.solution.selected = DynamicBitset::FromString("01");
  response.solution.satisfied_queries = 1;

  const std::string encoded = ResponseToJson(response).ToString();
  EXPECT_EQ(encoded.find("tenant_id"), std::string::npos);
  EXPECT_EQ(encoded.find("epoch"), std::string::npos);
  EXPECT_EQ(encoded.find("cache_hit"), std::string::npos);
}

TEST(ServeProtocolTest, ParseRejectsMalformedTenantResponses) {
  const char* malformed[] = {
      // cache_hit is only meaningful on OK lines.
      R"({"id":"1","status":"Overloaded","error":"x","cache_hit":true})",
      // Epochs are positive integers.
      R"({"id":"1","status":"OK","selected":"01","epoch":0})",
      R"({"id":"1","status":"OK","selected":"01","epoch":-3})",
      R"({"id":"1","status":"OK","selected":"01","epoch":1.5})",
      // tenant_id must be a non-empty string.
      R"({"id":"1","status":"OK","selected":"01","tenant_id":""})",
      R"({"id":"1","status":"OK","selected":"01","tenant_id":17})",
      // Numbers must be finite: 1e309 overflows to inf, which would
      // re-encode as null and break the fixed point.
      R"({"id":"1","status":"OK","selected":"01","queue_ms":1e309})",
  };
  for (const char* line : malformed) {
    EXPECT_FALSE(ParseSolveResponseLine(line).ok()) << line;
  }
}

TEST(ServeProtocolTest, RequestParsersCarryTenantId) {
  const std::string line =
      R"({"id":"r1","tenant_id":"acme","tuple":"110101","m":3})";
  QueryLog log(AttributeSchema::Anonymous(6));
  auto with_log = ParseSolveRequestLine(line, log, 1);
  ASSERT_TRUE(with_log.ok()) << with_log.status().ToString();
  EXPECT_EQ(with_log->tenant_id, "acme");

  // The width-agnostic overload used by the sharded front door accepts
  // any tuple width; the tenant's own catalog checks it at admission.
  auto width_agnostic = ParseSolveRequestLine(line, /*num_attributes=*/-1, 1);
  ASSERT_TRUE(width_agnostic.ok()) << width_agnostic.status().ToString();
  EXPECT_EQ(width_agnostic->tenant_id, "acme");
  EXPECT_EQ(width_agnostic->tuple.ToString(), "110101");
}

TEST(ServeProtocolTest, RequestParserRejectsBadTenantIds) {
  const std::string oversized(kMaxTenantIdBytes + 1, 'x');
  const std::string bad[] = {
      R"({"id":"r1","tenant_id":"","tuple":"01","m":1})",
      R"({"id":"r1","tenant_id":42,"tuple":"01","m":1})",
      R"({"id":"r1","tenant_id":")" + oversized + R"(","tuple":"01","m":1})",
  };
  for (const std::string& line : bad) {
    EXPECT_FALSE(ParseSolveRequestLine(line, /*num_attributes=*/-1, 1).ok())
        << line;
  }
  // Exactly at the cap is legal.
  const std::string max_id(kMaxTenantIdBytes, 'x');
  EXPECT_TRUE(ParseSolveRequestLine(
                  R"({"id":"r1","tenant_id":")" + max_id +
                      R"(","tuple":"01","m":1})",
                  /*num_attributes=*/-1, 1)
                  .ok());
}

TEST(ServeProtocolTest, AdminLinesAreDetectedAndParsed) {
  const std::string line =
      R"({"admin":"create_tenant","tenant_id":"acme","log":"acme.csv"})";
  EXPECT_TRUE(LooksLikeAdminLine(line));
  EXPECT_FALSE(LooksLikeAdminLine(
      R"({"id":"r1","tuple":"01","m":1})"));

  auto parsed = ParseAdminRequestLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->action, "create_tenant");
  EXPECT_EQ(parsed->tenant_id, "acme");
  EXPECT_EQ(parsed->log_path, "acme.csv");

  auto publish = ParseAdminRequestLine(
      R"({"admin":"publish_epoch","tenant_id":"a","log":"v2.csv"})");
  ASSERT_TRUE(publish.ok());
  EXPECT_EQ(publish->action, "publish_epoch");
}

TEST(ServeProtocolTest, AdminParserRejectsMalformedLines) {
  const char* malformed[] = {
      // Unknown action.
      R"({"admin":"drop_tenant","tenant_id":"a","log":"x.csv"})",
      // Missing / empty required fields.
      R"({"admin":"create_tenant","log":"x.csv"})",
      R"({"admin":"create_tenant","tenant_id":"a"})",
      R"({"admin":"create_tenant","tenant_id":"","log":"x.csv"})",
      // Unknown fields are errors, as on the solve-request parser.
      R"({"admin":"create_tenant","tenant_id":"a","log":"x.csv","m":2})",
      // A solve-request line is not an admin line.
      R"({"id":"r1","tuple":"01","m":1})",
  };
  for (const char* line : malformed) {
    EXPECT_FALSE(ParseAdminRequestLine(line).ok()) << line;
  }
}

TEST(ServeProtocolTest, StatusAndStopReasonNamesRoundTripThroughStrings) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOverloaded, StatusCode::kDeadlineExceeded,
        StatusCode::kInternal}) {
    StatusCode back;
    ASSERT_TRUE(StatusCodeFromString(StatusCodeToString(code), &back));
    EXPECT_EQ(back, code);
  }
  StatusCode ignored_code;
  EXPECT_FALSE(StatusCodeFromString("NotACode", &ignored_code));
  for (StopReason reason :
       {StopReason::kNone, StopReason::kDeadline, StopReason::kCancelled,
        StopReason::kTickBudget, StopReason::kResourceLimit}) {
    StopReason back;
    ASSERT_TRUE(StopReasonFromString(StopReasonToString(reason), &back));
    EXPECT_EQ(back, reason);
  }
  StopReason ignored_reason;
  EXPECT_FALSE(StopReasonFromString("tired", &ignored_reason));
}

}  // namespace
}  // namespace soc::serve
