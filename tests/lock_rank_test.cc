// Runtime lock-rank checker tests (common/lock_rank.h, common/mutex.h).
//
// The checker is compiled in for debug/sanitizer builds (or with
// -DSOC_LOCK_RANKING=ON); in release builds the tests that need it
// GTEST_SKIP rather than silently pass. The death test pins the
// abort-before-deadlock behavior: acquiring a lower rank while a higher
// one is held must report both lock names and abort.

#include "common/lock_rank.h"

#include <gtest/gtest.h>

#include "common/mutex.h"

namespace soc {
namespace {

// Local ranks so the tests do not depend on the project table's values.
constexpr LockRank kOuter{100, "test.outer"};
constexpr LockRank kInner{200, "test.inner"};

TEST(LockRankTest, InOrderAcquisitionSucceeds) {
  Mutex outer(kOuter);
  Mutex inner(kInner);
  MutexLock a(outer);
  MutexLock b(inner);
  // Reaching here without an abort is the assertion.
  SUCCEED();
}

TEST(LockRankTest, ReleaseUnblocksTheRank) {
  Mutex outer(kOuter);
  Mutex inner(kInner);
  {
    MutexLock b(inner);
  }
  // inner (rank 200) was released, so taking outer (rank 100) now is
  // in-order even though 100 < 200.
  MutexLock a(outer);
  MutexLock b(inner);
  SUCCEED();
}

TEST(LockRankTest, UnrankedLocksAreExemptInEitherOrder) {
  Mutex ranked(kInner);
  Mutex unranked;
  MutexLock a(ranked);
  MutexLock b(unranked);  // Unranked under ranked: fine.
  Mutex another_unranked;
  MutexLock c(another_unranked);
  SUCCEED();
}

TEST(LockRankTest, SharedAcquisitionsParticipate) {
  SharedMutex outer(kOuter);
  Mutex inner(kInner);
  ReaderMutexLock a(outer);
  MutexLock b(inner);
  SUCCEED();
}

TEST(LockRankTest, TryLockPushesOnlyOnSuccess) {
  if (!kLockRankingEnabled) {
    GTEST_SKIP() << "lock ranking compiled out in this build";
  }
  Mutex inner(kInner);
  Mutex outer(kOuter);
  ASSERT_TRUE(inner.TryLock());
  // A failed TryLock must not leave a phantom entry on the held stack:
  // take-and-release outer first, which would abort if inner's failed
  // re-acquisition below had corrupted the stack ordering instead.
  ASSERT_FALSE(inner.TryLock());
  inner.Unlock();
  MutexLock a(outer);
  MutexLock b(inner);
  SUCCEED();
}

TEST(LockRankDeathTest, InvertedAcquisitionAbortsWithBothNames) {
  if (!kLockRankingEnabled) {
    GTEST_SKIP() << "lock ranking compiled out in this build";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex outer(kOuter);
        Mutex inner(kInner);
        MutexLock a(inner);   // rank 200 held...
        MutexLock b(outer);   // ...acquiring rank 100: inversion.
      },
      "lock-rank violation.*test\\.outer.*test\\.inner");
}

TEST(LockRankDeathTest, ReaderInversionAbortsToo) {
  if (!kLockRankingEnabled) {
    GTEST_SKIP() << "lock ranking compiled out in this build";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex held(kInner);
        SharedMutex low(kOuter);
        MutexLock a(held);
        ReaderMutexLock b(low);
      },
      "lock-rank violation");
}

}  // namespace
}  // namespace soc
