#include "core/variants.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/brute_force.h"
#include "core/greedy.h"
#include "datagen/workload.h"
#include "paper_example.h"

namespace soc {
namespace {

TEST(SocCbDTest, PaperExampleDominatesFourTuples) {
  // Sec II.B: m = 4 retaining {AC, FourDoor, PowerDoors, PowerBrakes}
  // dominates t1, t4, t5, t6; nothing dominates more.
  const BooleanTable db = testdata::PaperDatabase();
  const DynamicBitset t = testdata::PaperNewTuple();
  BruteForceSolver exact;
  auto solution = SolveSocCbD(exact, db, t, 4);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->satisfied_queries, 4);
  EXPECT_EQ(solution->selected, DynamicBitset::FromString("110101"));
}

TEST(SocCbDTest, DatabaseAsQueryLogPreservesRows) {
  const BooleanTable db = testdata::PaperDatabase();
  const QueryLog log = DatabaseAsQueryLog(db);
  ASSERT_EQ(log.size(), db.num_rows());
  for (int i = 0; i < db.num_rows(); ++i) {
    EXPECT_EQ(log.query(i), db.row(i));
  }
}

TEST(SocCbDTest, DominationObjectiveMatchesEvaluator) {
  const BooleanTable db = testdata::PaperDatabase();
  const DynamicBitset t = testdata::PaperNewTuple();
  BruteForceSolver exact;
  for (int m = 0; m <= 6; ++m) {
    auto solution = SolveSocCbD(exact, db, t, m);
    ASSERT_TRUE(solution.ok());
    EXPECT_EQ(solution->satisfied_queries,
              db.CountDominatedBy(solution->selected));
  }
}

TEST(SocCbDTest, PerAttributeVersionComposes) {
  // Sec II.B: "SOC-CB-D also has a natural per-attribute version" — it is
  // the per-attribute solver over the database-as-query-log.
  const BooleanTable db = testdata::PaperDatabase();
  const DynamicBitset t = testdata::PaperNewTuple();
  BruteForceSolver exact;
  const QueryLog as_log = DatabaseAsQueryLog(db);
  auto best = SolvePerAttribute(exact, as_log, t);
  ASSERT_TRUE(best.ok());
  EXPECT_GE(best->chosen_m, 1);
  // The ratio dominates every fixed-m domination count / m.
  for (int m = 1; m <= 5; ++m) {
    auto fixed = SolveSocCbD(exact, db, t, m);
    ASSERT_TRUE(fixed.ok());
    EXPECT_GE(best->ratio + 1e-9,
              static_cast<double>(fixed->satisfied_queries) / m);
  }
}

TEST(PerAttributeTest, MaximizesSatisfiedPerAttribute) {
  // Log: 10 copies of {a0}, 4 copies of {a1,a2}.
  QueryLog log(AttributeSchema::Anonymous(3));
  for (int i = 0; i < 10; ++i) log.AddQueryFromIndices({0});
  for (int i = 0; i < 4; ++i) log.AddQueryFromIndices({1, 2});
  DynamicBitset t(3);
  t.SetAll();
  BruteForceSolver exact;
  auto best = SolvePerAttribute(exact, log, t);
  ASSERT_TRUE(best.ok());
  // m=1 -> 10/1 = 10; m=3 -> 14/3 ≈ 4.7; m=2 -> 10/2 = 5.
  EXPECT_EQ(best->chosen_m, 1);
  EXPECT_DOUBLE_EQ(best->ratio, 10.0);
  EXPECT_TRUE(best->solution.selected.Test(0));
}

TEST(PerAttributeTest, PrefersSmallerMOnTies) {
  // {a0} and {a1} each appear 3 times; every m has ratio 3.
  QueryLog log(AttributeSchema::Anonymous(2));
  for (int i = 0; i < 3; ++i) log.AddQueryFromIndices({0});
  for (int i = 0; i < 3; ++i) log.AddQueryFromIndices({1});
  DynamicBitset t(2);
  t.SetAll();
  BruteForceSolver exact;
  auto best = SolvePerAttribute(exact, log, t);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->chosen_m, 1);
}

TEST(PerAttributeTest, EmptyTupleRejected) {
  QueryLog log(AttributeSchema::Anonymous(2));
  BruteForceSolver exact;
  auto best = SolvePerAttribute(exact, log, DynamicBitset(2));
  ASSERT_FALSE(best.ok());
  EXPECT_EQ(best.status().code(), StatusCode::kInvalidArgument);
}

TEST(PerAttributeTest, RatioIsOptimalAcrossAllBudgets) {
  Rng rng(4242);
  const AttributeSchema schema = AttributeSchema::Anonymous(8);
  datagen::SyntheticWorkloadOptions wl;
  wl.num_queries = 30;
  wl.seed = 77;
  const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
  DynamicBitset t(8);
  t.SetAll();
  BruteForceSolver exact;
  auto best = SolvePerAttribute(exact, log, t);
  ASSERT_TRUE(best.ok());
  for (int m = 1; m <= 8; ++m) {
    auto solution = exact.Solve(log, t, m);
    ASSERT_TRUE(solution.ok());
    EXPECT_GE(best->ratio + 1e-9,
              static_cast<double>(solution->satisfied_queries) / m);
  }
}

TEST(DisjunctiveTest, PaperExampleSingleAttributeCoverage) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  // PowerDoors intersects q2, q3, q4 — the best single attribute.
  auto brute = SolveDisjunctiveBruteForce(log, t, 1);
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(brute->satisfied_queries, 3);
  EXPECT_TRUE(brute->selected.Test(3));
}

TEST(DisjunctiveTest, FullCoverageWithTwoAttributes) {
  const QueryLog log = testdata::PaperQueryLog();
  const DynamicBitset t = testdata::PaperNewTuple();
  // {PowerDoors, AutoTrans} hits q2..q5 plus... q1 = {AC, FourDoor} is
  // missed; the optimum with m=2 covers 4 queries (e.g. PowerDoors + AC
  // hits q1,q2,q3,q4).
  auto brute = SolveDisjunctiveBruteForce(log, t, 2);
  ASSERT_TRUE(brute.ok());
  EXPECT_EQ(brute->satisfied_queries, 4);
  auto ilp = SolveDisjunctiveIlp(log, t, 2);
  ASSERT_TRUE(ilp.ok());
  EXPECT_EQ(ilp->satisfied_queries, 4);
}

TEST(DisjunctiveTest, GreedyWithinConstantFactor) {
  // Weighted max-coverage greedy achieves >= (1 - 1/e) of the optimum.
  Rng rng(2024);
  const AttributeSchema schema = AttributeSchema::Anonymous(10);
  for (int trial = 0; trial < 15; ++trial) {
    datagen::SyntheticWorkloadOptions wl;
    wl.num_queries = 50;
    wl.seed = trial;
    const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
    DynamicBitset t(10);
    for (int a = 0; a < 10; ++a) {
      if (rng.NextBernoulli(0.7)) t.Set(a);
    }
    const int m = rng.NextInt(1, 5);
    auto exact = SolveDisjunctiveBruteForce(log, t, m);
    auto greedy = SolveDisjunctiveGreedy(log, t, m);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(greedy.ok());
    EXPECT_LE(greedy->satisfied_queries, exact->satisfied_queries);
    EXPECT_GE(greedy->satisfied_queries + 1e-9,
              (1.0 - 1.0 / 2.718281828) * exact->satisfied_queries)
        << "trial " << trial;
  }
}

TEST(DisjunctiveTest, IlpMatchesBruteForceOnRandomInstances) {
  Rng rng(555);
  const AttributeSchema schema = AttributeSchema::Anonymous(9);
  for (int trial = 0; trial < 10; ++trial) {
    datagen::SyntheticWorkloadOptions wl;
    wl.num_queries = 25;
    wl.seed = 300 + trial;
    const QueryLog log = datagen::MakeSyntheticWorkload(schema, wl);
    DynamicBitset t(9);
    for (int a = 0; a < 9; ++a) {
      if (rng.NextBernoulli(0.6)) t.Set(a);
    }
    const int m = rng.NextInt(0, 4);
    auto exact = SolveDisjunctiveBruteForce(log, t, m);
    auto ilp = SolveDisjunctiveIlp(log, t, m);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(ilp.ok());
    EXPECT_EQ(ilp->satisfied_queries, exact->satisfied_queries)
        << "trial " << trial;
  }
}

TEST(DisjunctiveTest, EmptyQueryNeverCoveredDisjunctively) {
  QueryLog log(AttributeSchema::Anonymous(3));
  log.AddQuery(DynamicBitset(3));
  DynamicBitset t(3);
  t.SetAll();
  auto exact = SolveDisjunctiveBruteForce(log, t, 3);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->satisfied_queries, 0);
}

}  // namespace
}  // namespace soc
