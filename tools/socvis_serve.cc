// socvis_serve: concurrent batch SOC-CB-QL serving over JSONL.
//
// Usage:
//   socvis_serve --log=log.csv --requests=reqs.jsonl [--workers=N]
//   socvis_datagen ... | socvis_serve --log=log.csv --requests=-
//
// Reads one flat JSON solve request per line (see src/serve/protocol.h
// for the schema), runs them through a VisibilityService worker pool,
// and prints one JSON response per line in submission order. Blank lines
// are skipped; a malformed line becomes an error response for that line
// rather than aborting the run. The final line is a metrics block:
//   {"metrics":{"counters":{...},"histograms":{...}}}
//
// Flags:
//   --workers=N              worker threads (default 4)
//   --queue=N                admission bound on queued requests (0 = off)
//   --default-deadline-ms=T  deadline for requests that carry none
//   --reject-late            reject expired requests with Overloaded
//                            instead of degrading them to Fallback
//   --no-shed                disable cost-aware predictive shedding
//   --retries=N              retry Overloaded responses up to N times with
//                            jittered exponential backoff, honoring each
//                            response's retry_after_ms hint (default 0)
//   --retry-budget=R         retry-budget token ratio: at most R retries
//                            per fresh request over the run (default 0.1)
//   --cache-capacity=N       shared MFI cache entries per engine
//   --no-metrics             suppress the trailing metrics line
//   --trace-out=PATH         record per-request spans and solver phases,
//                            writing Chrome trace_event JSON on exit
//                            (load in chrome://tracing or Perfetto)
//   --metrics-interval-ms=T  export a Prometheus-style metrics page every
//                            T ms while the batch runs (0 = off)
//   --metrics-out=PATH       destination for the periodic pages
//                            (default: stderr)
//
// Observability v2 (DESIGN.md §15, both modes):
//   --events-out=PATH        wide-event request log: one JSON line per
//                            request outcome (schema: src/obs/wide_event.h),
//                            size-rotated at --events-max-bytes
//   --events-sample=N        record every Nth request (default 1)
//   --events-max-bytes=N     rotate the event log past N bytes
//                            (default 64MiB)
//   --profile-out=PATH       sample the process with SIGPROF while the
//                            batch runs; write collapsed stacks
//                            (flamegraph.pl input) on exit
//   --slo-latency-ms=T       default SLO: a request slower than T ms is
//                            bad (enables the SLO engine)
//   --slo-target=A           default availability target (default 0.999)
//   --slo=TENANT:MS:A        per-tenant objective override (repeatable)
// When the SLO engine is enabled the run ends with one {"slo":{...}}
// line of per-tenant burn rates, and multi-tenant streams may query it
// live with {"admin":"slo"}.
//
// Multi-tenant mode (selected by any --tenant flag):
//   socvis_serve --tenant=acme:acme.csv --tenant=beta:beta.csv
//       --requests=reqs.jsonl [--shards=N]
// Routes requests by their "tenant_id" field through a consistent-hash
// sharded service (src/tenant). Request lines must carry "tenant_id";
// admin lines interleaved on the same stream manage tenants live:
//   {"admin":"create_tenant","tenant_id":"acme","log":"acme.csv"}
//   {"admin":"publish_epoch","tenant_id":"acme","log":"acme_v2.csv"}
// Each admin line is applied in stream order (later requests see the new
// epoch; in-flight requests finish on the epoch they pinned) and echoes
// a response line {"admin":...,"tenant_id":...,"status":"OK","epoch":E}.
// Multi-tenant flags:
//   --tenant=NAME:PATH       create tenant NAME from query-log CSV PATH
//                            (repeatable; may also arrive via admin lines)
//   --shards=N               number of shards (default 4)
//   --result-cache-capacity=N  per-shard result-cache entries (default 4096)
// --workers is per shard; --retries is unsupported in this mode.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <memory>

#include "boolean/query_log.h"
#include "common/string_util.h"
#include "core/solver_registry.h"
#include "obs/event_log.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/trace_recorder.h"
#include "serve/batch_engine.h"
#include "serve/metrics_exporter.h"
#include "serve/protocol.h"
#include "serve/visibility_service.h"
#include "tenant/sharded_service.h"

namespace {

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return default_value;
}

std::vector<std::string> GetFlagValues(int argc, char** argv,
                                       const std::string& name) {
  const std::string prefix = "--" + name + "=";
  std::vector<std::string> values;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) values.push_back(arg.substr(prefix.size()));
  }
  return values;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "socvis_serve: %s\n", message.c_str());
  return 1;
}

int Usage() {
  return Fail(
      "usage: socvis_serve --log=log.csv --requests=reqs.jsonl|- "
      "[--workers=N] [--queue=N] [--default-deadline-ms=T] "
      "[--reject-late] [--no-shed] [--retries=N] [--retry-budget=R] "
      "[--cache-capacity=N] [--no-metrics] "
      "[--trace-out=PATH] [--metrics-interval-ms=T] "
      "[--metrics-out=PATH] [--events-out=PATH] [--events-sample=N] "
      "[--events-max-bytes=N] [--profile-out=PATH] "
      "[--slo-latency-ms=T] [--slo-target=A] [--slo=TENANT:MS:A]\n"
      "   or: socvis_serve --tenant=NAME:PATH [--tenant=...] "
      "--requests=reqs.jsonl|- [--shards=N] "
      "[--result-cache-capacity=N] (plus the flags above; --workers is "
      "per shard, --retries is unsupported)\n  solvers: " +
      soc::Join(soc::RegisteredSolverNames(), ", "));
}

soc::StatusOr<soc::QueryLog> LoadCsvLog(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    return soc::InvalidArgumentError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return soc::QueryLog::FromCsv(buffer.str());
}

// Observability v2 wiring shared by both serving modes: the wide-event
// pipeline (--events-out), the sampling profiler (--profile-out) and
// the per-tenant SLO engine (--slo-latency-ms / --slo-target / --slo).
// Declared before the service so members outlive every worker record;
// destruction order (pump, then sink, then log) is the member reverse.
struct ObsStack {
  std::unique_ptr<soc::obs::EventLog> event_log;
  std::unique_ptr<soc::obs::JsonlEventSink> sink;
  std::unique_ptr<soc::obs::EventPump> pump;
  std::unique_ptr<soc::obs::SloEngine> slo;
  std::string profile_path;
  bool profiling = false;
};

// Parses the observability flags into `obs` and starts the event pump /
// profiler. Returns a non-empty error message on bad flags.
std::string SetUpObs(int argc, char** argv, ObsStack* obs) {
  using namespace soc;

  const std::string events_path = GetFlag(argc, argv, "events-out", "");
  if (!events_path.empty()) {
    obs::EventLogOptions log_options;
    log_options.sample_every =
        std::atoll(GetFlag(argc, argv, "events-sample", "1").c_str());
    if (log_options.sample_every < 1) return "--events-sample must be >= 1";
    obs->event_log = std::make_unique<obs::EventLog>(log_options);
    obs->event_log->set_enabled(true);

    obs::JsonlEventSink::Options sink_options;
    sink_options.path = events_path;
    sink_options.max_bytes = std::atoll(
        GetFlag(argc, argv, "events-max-bytes", "67108864").c_str());
    if (sink_options.max_bytes < 1) return "--events-max-bytes must be >= 1";
    obs->sink = std::make_unique<obs::JsonlEventSink>(sink_options);
    const Status opened = obs->sink->Open();
    if (!opened.ok()) return opened.ToString();

    obs::EventPump::Options pump_options;
    pump_options.log = obs->event_log.get();
    pump_options.sink = [sink = obs->sink.get()](
                            const std::vector<obs::WideEvent>& events) {
      IgnoreError(sink->Write(events), "event sink write");
    };
    obs->pump = std::make_unique<obs::EventPump>(pump_options);
  }

  const std::string slo_latency = GetFlag(argc, argv, "slo-latency-ms", "");
  const std::string slo_target = GetFlag(argc, argv, "slo-target", "");
  const std::vector<std::string> slo_specs = GetFlagValues(argc, argv, "slo");
  if (!slo_latency.empty() || !slo_target.empty() || !slo_specs.empty()) {
    obs::SloEngineOptions slo_options;
    if (!slo_latency.empty()) {
      slo_options.default_objective.latency_threshold_ms =
          std::atof(slo_latency.c_str());
      if (slo_options.default_objective.latency_threshold_ms <= 0) {
        return "--slo-latency-ms must be > 0";
      }
    }
    if (!slo_target.empty()) {
      slo_options.default_objective.availability_target =
          std::atof(slo_target.c_str());
      if (slo_options.default_objective.availability_target <= 0 ||
          slo_options.default_objective.availability_target >= 1) {
        return "--slo-target must be in (0, 1)";
      }
    }
    obs->slo = std::make_unique<obs::SloEngine>(slo_options);
    for (const std::string& spec : slo_specs) {
      // TENANT:MS:TARGET, splitting from the right so tenant ids may
      // contain colons.
      const std::size_t target_colon = spec.rfind(':');
      const std::size_t ms_colon = target_colon == std::string::npos
                                       ? std::string::npos
                                       : spec.rfind(':', target_colon - 1);
      if (ms_colon == std::string::npos || ms_colon == 0) {
        return "--slo wants TENANT:MS:TARGET, got '" + spec + "'";
      }
      obs::SloObjective objective;
      objective.latency_threshold_ms =
          std::atof(spec.substr(ms_colon + 1, target_colon - ms_colon - 1)
                        .c_str());
      objective.availability_target =
          std::atof(spec.substr(target_colon + 1).c_str());
      if (objective.latency_threshold_ms <= 0 ||
          objective.availability_target <= 0 ||
          objective.availability_target >= 1) {
        return "--slo wants MS > 0 and TARGET in (0, 1), got '" + spec + "'";
      }
      obs->slo->SetObjective(spec.substr(0, ms_colon), objective);
    }
  }

  obs->profile_path = GetFlag(argc, argv, "profile-out", "");
  if (!obs->profile_path.empty()) {
    const Status started = obs::Profiler::Instance().Start();
    if (!started.ok()) return started.ToString();
    obs->profiling = true;
  }
  return "";
}

// Stops the pump (final flush) and profiler, writes the collapsed
// stacks, and prints the end-of-run SLO report line. Returns a
// non-empty error message on I/O failure.
std::string FinishObs(ObsStack* obs) {
  using namespace soc;

  if (obs->pump != nullptr) obs->pump->Stop();
  if (obs->sink != nullptr) {
    const Status closed = obs->sink->Close();
    if (!closed.ok()) return closed.ToString();
  }
  if (obs->profiling) {
    obs::Profiler& profiler = obs::Profiler::Instance();
    const Status stopped = profiler.Stop();
    if (!stopped.ok()) return stopped.ToString();
    const Status written = profiler.WriteCollapsed(obs->profile_path);
    if (!written.ok()) return written.ToString();
  }
  if (obs->slo != nullptr) {
    JsonValue line = JsonValue::Object();
    line.Set("slo", obs->slo->Report().ToJson());
    std::cout << line.ToString() << "\n";
  }
  return "";
}

// One response line per admin line, echoing the action. On success the
// line carries the resulting epoch (1 for create_tenant).
std::string AdminResponseLine(const soc::serve::AdminRequest& admin,
                              const soc::StatusOr<std::int64_t>& epoch) {
  soc::JsonValue json = soc::JsonValue::Object();
  json.Set("admin", soc::JsonValue::String(admin.action));
  if (!admin.tenant_id.empty()) {
    json.Set("tenant_id", soc::JsonValue::String(admin.tenant_id));
  }
  json.Set("status", soc::JsonValue::String(
                         soc::StatusCodeToString(epoch.status().code())));
  if (epoch.ok()) {
    json.Set("epoch", soc::JsonValue::Int(*epoch));
  } else {
    json.Set("error", soc::JsonValue::String(epoch.status().message()));
  }
  return json.ToString();
}

// {"admin":"slo"} response: the live burn-rate report, optionally
// filtered to one tenant.
std::string SloAdminResponseLine(const soc::serve::AdminRequest& admin,
                                 const soc::obs::SloEngine* slo) {
  soc::JsonValue json = soc::JsonValue::Object();
  json.Set("admin", soc::JsonValue::String("slo"));
  if (!admin.tenant_id.empty()) {
    json.Set("tenant_id", soc::JsonValue::String(admin.tenant_id));
  }
  if (slo == nullptr) {
    json.Set("status",
             soc::JsonValue::String(soc::StatusCodeToString(
                 soc::StatusCode::kFailedPrecondition)));
    json.Set("error",
             soc::JsonValue::String(
                 "SLO engine not enabled; pass --slo-latency-ms, "
                 "--slo-target or --slo"));
    return json.ToString();
  }
  soc::obs::SloReport report = slo->Report();
  if (!admin.tenant_id.empty()) {
    std::erase_if(report.tenants, [&](const auto& entry) {
      return entry.first != admin.tenant_id;
    });
  }
  json.Set("status", soc::JsonValue::String(
                         soc::StatusCodeToString(soc::StatusCode::kOk)));
  json.Set("slo", report.ToJson());
  return json.ToString();
}

// Multi-tenant mode: a ShardedService front door with admin lines
// (create_tenant / publish_epoch) interleaved on the request stream.
int RunMultiTenant(int argc, char** argv) {
  using namespace soc;

  const std::string requests_path = GetFlag(argc, argv, "requests", "");
  if (requests_path.empty()) return Usage();
  if (std::atoi(GetFlag(argc, argv, "retries", "0").c_str()) != 0) {
    return Fail("--retries is not supported in multi-tenant mode");
  }

  tenant::ShardedServiceOptions options;
  options.num_shards = std::atoi(GetFlag(argc, argv, "shards", "4").c_str());
  if (options.num_shards < 1) return Fail("--shards must be >= 1");
  options.mfi_cache_capacity = static_cast<std::size_t>(
      std::atoll(GetFlag(argc, argv, "cache-capacity", "32").c_str()));
  if (options.mfi_cache_capacity < 1) {
    return Fail("--cache-capacity must be >= 1");
  }
  options.shard.num_workers =
      std::atoi(GetFlag(argc, argv, "workers", "2").c_str());
  if (options.shard.num_workers < 1) return Fail("--workers must be >= 1");
  options.shard.max_queue = static_cast<std::size_t>(
      std::atoll(GetFlag(argc, argv, "queue", "1024").c_str()));
  options.shard.default_deadline_ms =
      std::atof(GetFlag(argc, argv, "default-deadline-ms", "0").c_str());
  options.shard.reject_expired = HasFlag(argc, argv, "reject-late");
  options.shard.predictive_shedding = !HasFlag(argc, argv, "no-shed");
  options.shard.result_cache_capacity = static_cast<std::size_t>(
      std::atoll(GetFlag(argc, argv, "result-cache-capacity", "4096").c_str()));

  std::ifstream requests_file;
  std::istream* requests = &std::cin;
  if (requests_path != "-") {
    requests_file.open(requests_path, std::ios::binary);
    if (!requests_file) return Fail("cannot open " + requests_path);
    requests = &requests_file;
  }

  obs::TraceRecorder recorder;
  const std::string trace_path = GetFlag(argc, argv, "trace-out", "");
  if (!trace_path.empty()) {
    recorder.set_enabled(true);
    options.shard.trace_recorder = &recorder;
  }

  // Declared before the service: shards record into these from worker
  // threads until the service is destroyed.
  ObsStack obs;
  const std::string obs_error = SetUpObs(argc, argv, &obs);
  if (!obs_error.empty()) return Fail(obs_error);
  options.shard.event_log = obs.event_log.get();
  options.shard.slo_engine = obs.slo.get();

  tenant::ShardedService service(options);
  for (const std::string& spec : GetFlagValues(argc, argv, "tenant")) {
    const std::size_t colon = spec.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
      return Fail("--tenant wants NAME:PATH, got '" + spec + "'");
    }
    const std::string name = spec.substr(0, colon);
    auto log = LoadCsvLog(spec.substr(colon + 1));
    if (!log.ok()) return Fail(log.status().ToString());
    const Status created = service.CreateTenant(name, std::move(log).value());
    if (!created.ok()) return Fail(created.ToString());
  }

  std::ofstream metrics_file;
  std::unique_ptr<serve::MetricsExporter> exporter;
  const double metrics_interval_ms =
      std::atof(GetFlag(argc, argv, "metrics-interval-ms", "0").c_str());
  if (metrics_interval_ms > 0) {
    serve::MetricsExporter::Options exporter_options;
    exporter_options.interval_s = metrics_interval_ms / 1000.0;
    exporter_options.snapshot_provider = [&service] {
      return service.Metrics();
    };
    const std::string metrics_out = GetFlag(argc, argv, "metrics-out", "");
    if (!metrics_out.empty()) {
      metrics_file.open(metrics_out, std::ios::binary | std::ios::trunc);
      if (!metrics_file) return Fail("cannot open " + metrics_out);
      exporter_options.sink = [&metrics_file](const std::string& page) {
        metrics_file << page << "\n";
        metrics_file.flush();
      };
    } else {
      exporter_options.sink = [](const std::string& page) {
        std::fputs(page.c_str(), stderr);
      };
    }
    exporter =
        std::make_unique<serve::MetricsExporter>(std::move(exporter_options));
  }

  // Admin lines and parse failures resolve inline; solves resolve via
  // futures. Slots keep output in input order either way.
  std::vector<std::string> inline_lines;
  std::vector<std::future<serve::SolveResponse>> futures;
  std::vector<long long> response_slots;  // >=0: future; <0: inline.
  int line_number = 0;
  std::string line;
  while (std::getline(*requests, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (serve::LooksLikeAdminLine(line)) {
      // Applied synchronously, so every later request line sees its
      // effect (in-flight requests finish on the epoch they pinned).
      auto admin = serve::ParseAdminRequestLine(line);
      std::string out;
      if (!admin.ok()) {
        out = AdminResponseLine(serve::AdminRequest{}, admin.status());
      } else if (admin->action == "slo") {
        out = SloAdminResponseLine(*admin, obs.slo.get());
      } else {
        StatusOr<std::int64_t> epoch(0);
        auto log = LoadCsvLog(admin->log_path);
        if (!log.ok()) {
          epoch = log.status();
        } else if (admin->action == "create_tenant") {
          const Status created =
              service.CreateTenant(admin->tenant_id, std::move(log).value());
          epoch = created.ok() ? StatusOr<std::int64_t>(1)
                               : StatusOr<std::int64_t>(created);
        } else {
          epoch =
              service.PublishEpoch(admin->tenant_id, std::move(log).value());
        }
        out = AdminResponseLine(*admin, epoch);
      }
      response_slots.push_back(
          -static_cast<long long>(inline_lines.size()) - 1);
      inline_lines.push_back(std::move(out));
      continue;
    }
    auto request =
        serve::ParseSolveRequestLine(line, /*num_attributes=*/-1, line_number);
    if (!request.ok()) {
      serve::SolveResponse response;
      response.id = std::to_string(line_number);
      response.status = request.status();
      response_slots.push_back(
          -static_cast<long long>(inline_lines.size()) - 1);
      inline_lines.push_back(serve::ResponseToJson(response).ToString());
      continue;
    }
    response_slots.push_back(static_cast<long long>(futures.size()));
    futures.push_back(service.Submit(std::move(request).value()));
  }

  service.Drain();
  std::vector<serve::SolveResponse> solved;
  solved.reserve(futures.size());
  for (auto& future : futures) solved.push_back(future.get());
  for (long long slot : response_slots) {
    if (slot >= 0) {
      std::cout << serve::ResponseToJson(solved[static_cast<std::size_t>(slot)])
                       .ToString()
                << "\n";
    } else {
      std::cout << inline_lines[static_cast<std::size_t>(-slot - 1)] << "\n";
    }
  }

  if (exporter != nullptr) exporter->Stop();

  if (!HasFlag(argc, argv, "no-metrics")) {
    JsonValue metrics = JsonValue::Object();
    metrics.Set("metrics", service.Metrics().ToJson());
    std::cout << metrics.ToString() << "\n";
  }

  const std::string finish_error = FinishObs(&obs);
  if (!finish_error.empty()) return Fail(finish_error);

  if (!trace_path.empty()) {
    const Status status = recorder.WriteChromeTrace(trace_path);
    if (!status.ok()) return Fail(status.ToString());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace soc;

  if (!GetFlagValues(argc, argv, "tenant").empty() ||
      !GetFlag(argc, argv, "shards", "").empty()) {
    return RunMultiTenant(argc, argv);
  }

  const std::string log_path = GetFlag(argc, argv, "log", "");
  const std::string requests_path = GetFlag(argc, argv, "requests", "");
  if (log_path.empty() || requests_path.empty()) return Usage();

  std::ifstream log_file(log_path, std::ios::binary);
  if (!log_file) return Fail("cannot open " + log_path);
  std::ostringstream log_buffer;
  log_buffer << log_file.rdbuf();
  auto log = QueryLog::FromCsv(log_buffer.str());
  if (!log.ok()) return Fail(log.status().ToString());

  serve::VisibilityServiceOptions options;
  options.num_workers = std::atoi(GetFlag(argc, argv, "workers", "4").c_str());
  options.max_queue = static_cast<std::size_t>(
      std::atoll(GetFlag(argc, argv, "queue", "1024").c_str()));
  options.default_deadline_ms =
      std::atof(GetFlag(argc, argv, "default-deadline-ms", "0").c_str());
  options.reject_expired = HasFlag(argc, argv, "reject-late");
  options.predictive_shedding = !HasFlag(argc, argv, "no-shed");
  options.mfi_cache_capacity = static_cast<std::size_t>(
      std::atoll(GetFlag(argc, argv, "cache-capacity", "32").c_str()));
  if (options.num_workers < 1) return Fail("--workers must be >= 1");
  if (options.mfi_cache_capacity < 1) {
    return Fail("--cache-capacity must be >= 1");
  }

  serve::RetryOptions retry;
  retry.max_retries = std::atoi(GetFlag(argc, argv, "retries", "0").c_str());
  retry.budget_ratio =
      std::atof(GetFlag(argc, argv, "retry-budget", "0.1").c_str());
  if (retry.max_retries < 0) return Fail("--retries must be >= 0");
  if (retry.budget_ratio < 0) return Fail("--retry-budget must be >= 0");

  std::ifstream requests_file;
  std::istream* requests = &std::cin;
  if (requests_path != "-") {
    requests_file.open(requests_path, std::ios::binary);
    if (!requests_file) return Fail("cannot open " + requests_path);
    requests = &requests_file;
  }

  // Declared before the service so it outlives every worker span.
  obs::TraceRecorder recorder;
  const std::string trace_path = GetFlag(argc, argv, "trace-out", "");
  if (!trace_path.empty()) {
    recorder.set_enabled(true);
    options.trace_recorder = &recorder;
  }

  // Declared before the service: workers record into these until the
  // service is destroyed.
  ObsStack obs;
  const std::string obs_error = SetUpObs(argc, argv, &obs);
  if (!obs_error.empty()) return Fail(obs_error);
  options.event_log = obs.event_log.get();
  options.slo_engine = obs.slo.get();

  serve::VisibilityService service(std::move(log).value(), options);
  serve::BatchEngine engine(service, retry);

  // Periodic metrics exposition. The file must outlive the exporter; the
  // exporter (declared after the service) stops before the service dies.
  std::ofstream metrics_file;
  std::unique_ptr<serve::MetricsExporter> exporter;
  const double metrics_interval_ms =
      std::atof(GetFlag(argc, argv, "metrics-interval-ms", "0").c_str());
  if (metrics_interval_ms > 0) {
    serve::MetricsExporter::Options exporter_options;
    exporter_options.interval_s = metrics_interval_ms / 1000.0;
    exporter_options.snapshot_provider = [&service] {
      return service.Metrics();
    };
    const std::string metrics_out = GetFlag(argc, argv, "metrics-out", "");
    if (!metrics_out.empty()) {
      metrics_file.open(metrics_out, std::ios::binary | std::ios::trunc);
      if (!metrics_file) return Fail("cannot open " + metrics_out);
      exporter_options.sink = [&metrics_file](const std::string& page) {
        metrics_file << page << "\n";
        metrics_file.flush();
      };
    } else {
      exporter_options.sink = [](const std::string& page) {
        std::fputs(page.c_str(), stderr);
      };
    }
    exporter =
        std::make_unique<serve::MetricsExporter>(std::move(exporter_options));
  }

  // Parse failures resolve inline (the service never sees them) but keep
  // their slot so output order still matches input order.
  std::vector<serve::SolveResponse> parse_failures;
  std::vector<long long> response_slots;  // >=0: engine index; <0: failure.
  int line_number = 0;
  std::string line;
  while (std::getline(*requests, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    auto request = serve::ParseSolveRequestLine(line, service.log(),
                                               line_number);
    if (!request.ok()) {
      serve::SolveResponse response;
      response.id = std::to_string(line_number);
      response.status = request.status();
      response_slots.push_back(
          -static_cast<long long>(parse_failures.size()) - 1);
      parse_failures.push_back(std::move(response));
      continue;
    }
    response_slots.push_back(static_cast<long long>(engine.pending()));
    engine.Submit(std::move(request).value());
  }

  const std::vector<serve::SolveResponse> solved = engine.Drain();
  for (long long slot : response_slots) {
    const serve::SolveResponse& response =
        slot >= 0 ? solved[static_cast<std::size_t>(slot)]
                  : parse_failures[static_cast<std::size_t>(-slot - 1)];
    std::cout << serve::ResponseToJson(response).ToString() << "\n";
  }

  if (exporter != nullptr) exporter->Stop();  // Flushes a final page.

  if (!HasFlag(argc, argv, "no-metrics")) {
    JsonValue metrics = JsonValue::Object();
    metrics.Set("metrics", service.Metrics().ToJson());
    if (retry.max_retries > 0) {
      // Client-side view: where the retry traffic went.
      const serve::RetryStats& stats = engine.retry_stats();
      JsonValue client = JsonValue::Object();
      client.Set("retries", JsonValue::Int(stats.retries));
      client.Set("recovered", JsonValue::Int(stats.recovered));
      client.Set("budget_denied", JsonValue::Int(stats.budget_denied));
      client.Set("exhausted", JsonValue::Int(stats.exhausted));
      client.Set("retry_tokens_left", JsonValue::Number(engine.retry_tokens()));
      metrics.Set("client", std::move(client));
    }
    std::cout << metrics.ToString() << "\n";
  }

  const std::string finish_error = FinishObs(&obs);
  if (!finish_error.empty()) return Fail(finish_error);

  if (!trace_path.empty()) {
    const Status status = recorder.WriteChromeTrace(trace_path);
    if (!status.ok()) return Fail(status.ToString());
  }
  return 0;
}
