// soc_lint: project-invariant checks the compiler cannot see.
//
// A standalone multi-pass static analysis framework (no libclang). Two
// kinds of passes share one finding engine: line/regex rules below, and
// parse-based passes built on the token lexer (soc_lint/lexer.h) — the
// lock-hierarchy pass in soc_lint/lock_graph.h being the flagship. The
// engine gives every pass stable rule ids, a checked-in baseline /
// inline-suppression mechanism, JSON (schema-versioned), SARIF 2.1.0
// and text output, and a --diff-base mode for fast per-PR runs.
//
// Rules enforced:
//
//   stop-cadence     — solver code under src/core, src/lp, src/itemsets
//                      that accepts a SolveContext* must actually consult
//                      it (Checkpoint() or forwarding); manual cadence
//                      arithmetic must use kStopCheckMask, never
//                      `% kStopCheckInterval` or a hard-coded 64.
//   registry-parity  — every solver name registered in
//                      src/core/solver_registry.cc appears in
//                      tests/solver_registry_test.cc.
//   property-parity  — the kPropertyCheckedSolvers[] list in
//                      src/check/properties.cc names exactly the solvers
//                      registered in src/core/solver_registry.cc, so a
//                      newly registered solver cannot dodge the
//                      metamorphic property suite.
//   naked-thread     — no std::thread / std::jthread / std::async /
//                      pthread_create in src/ outside
//                      common/thread_pool.*, and no .detach() anywhere
//                      (a detached thread outlives every join point);
//                      concurrency goes through ThreadPool.
//   layering         — no src layer below serve/ may #include "serve/..."
//                      headers.
//   reject-metrics   — every OverloadedError rejection constructed in
//                      src/serve/*.cc must increment a named ServeMetrics
//                      counter nearby, so load-shedding stays visible in
//                      the overload ledger.
//   cache-metrics    — every result-cache counter constant declared in
//                      src/tenant/result_cache.h (kResultCache*) is
//                      actually bumped in result_cache.cc, and every
//                      structural hit/insert/evict site (LRU splice /
//                      pop_back) has a counter bump nearby — so cache
//                      behavior stays visible in the serving metrics the
//                      same way load-shedding does.
//   event-field-parity — the shed_reason vocabulary lives twice by
//                      design (the serve layer's kShedReason* constants
//                      in src/serve/visibility_service.h and the
//                      wide-event schema's kWideEventShedReasons[] table
//                      in src/obs/wide_event.h, which cannot include
//                      serve headers); the two lists must carry exactly
//                      the same string values in both directions, or
//                      recorded events would fail their own schema.
//   kernel-dispatch  — x86 vector intrinsics (immintrin.h, _mm*/__m*)
//                      appear only under src/kernels; every
//                      intrinsic-bearing kernel TU fences them behind an
//                      ISA preprocessor guard (#if defined(__AVX...))
//                      with an #else branch registering the fallback,
//                      and the dispatch TU always references ScalarOps
//                      so a host failing every CPUID probe still
//                      resolves to working ops.
//   span-name        — every trace span or phase constructed in src/core,
//                      src/lp, src/itemsets, src/serve or src/tenant
//                      (PhaseScope, TraceSpan, RecordComplete,
//                      RecordInstant) uses a name from the canonical
//                      kSpanNames[] table in src/obs/span_names.h.
//   include-guard    — every header carries #pragma once or a proper
//                      #ifndef/#define pair; under src/ the guard name is
//                      canonical (SOC_<PATH>_H_). Canonicality findings
//                      are auto-fixable (soc_lint --fix).
//   lock-order, lock-rank-order, lock-rank-missing,
//   blocking-under-lock, condvar-wait-loop
//                    — the lock-hierarchy pass; see soc_lint/lock_graph.h.
//
// The library operates on in-memory (path, content) pairs so tests can
// feed crafted snippets; the soc_lint binary walks the real tree and
// exits non-zero on unsuppressed findings (the CI gate). Findings
// serialize to JSON and SARIF for machine consumption.
//
// Suppression happens at the engine, not in individual passes: a
// finding is dropped when its source line carries a
// `soc-lint-suppress(rule)` comment, or when the baseline file
// (tools/soc_lint/baseline.txt by default) lists its
// rule<TAB>path<TAB>message triple. Baselines pin pre-existing debt
// without letting new findings ride in on it.

#ifndef SOC_TOOLS_SOC_LINT_LINT_H_
#define SOC_TOOLS_SOC_LINT_LINT_H_

#include <set>
#include <string>
#include <vector>

namespace soc::lint {

struct SourceFile {
  std::string path;  // Repository-relative, '/'-separated.
  std::string content;
};

struct Finding {
  std::string rule;     // Stable rule id, e.g. "naked-thread".
  std::string path;
  int line = 0;         // 1-based; 0 = file-level finding.
  std::string message;
};

// Per-file rules, exposed individually so tests can target them.
void CheckIncludeGuard(const SourceFile& file, std::vector<Finding>* findings);
void CheckNakedThread(const SourceFile& file, std::vector<Finding>* findings);
void CheckLayering(const SourceFile& file, std::vector<Finding>* findings);
void CheckStopCadence(const SourceFile& file, std::vector<Finding>* findings);
void CheckRejectMetrics(const SourceFile& file,
                        std::vector<Finding>* findings);

// Cross-file rule: kResultCache* counter constants declared in
// src/tenant/result_cache.h vs. their bump sites in result_cache.cc,
// plus windowed bump checks on the structural LRU paths.
void CheckCacheMetrics(const std::vector<SourceFile>& files,
                       std::vector<Finding>* findings);

// Cross-file rule: registry names vs. registry test coverage.
void CheckRegistryTestParity(const std::vector<SourceFile>& files,
                             std::vector<Finding>* findings);

// Cross-file rule: registry names vs. the property suite's
// kPropertyCheckedSolvers[] list (both directions: unchecked registrations
// and stale list entries are findings).
void CheckPropertyParity(const std::vector<SourceFile>& files,
                         std::vector<Finding>* findings);

// Cross-file rule: span names used by solver/serve layers vs. the
// canonical table in src/obs/span_names.h.
void CheckSpanNameParity(const std::vector<SourceFile>& files,
                         std::vector<Finding>* findings);

// Cross-file rule: the serve layer's kShedReason* constant values vs.
// the wide-event schema's kWideEventShedReasons[] vocabulary (both
// directions: a reason the schema cannot encode and a schema entry no
// serve path produces are each findings).
void CheckEventFieldParity(const std::vector<SourceFile>& files,
                           std::vector<Finding>* findings);

// Cross-file rule: vector intrinsics stay inside src/kernels, every
// intrinsic-bearing kernel TU is fenced by an ISA preprocessor guard
// with an #else fallback branch, and the dispatch TU (DetectTier)
// always registers the scalar tier.
void CheckKernelDispatch(const std::vector<SourceFile>& files,
                         std::vector<Finding>* findings);

// The pass table: every registered pass with its stable rule ids, so
// output formats and docs enumerate rules from one place.
struct PassInfo {
  const char* name;                   // Pass name, e.g. "lock-hierarchy".
  std::vector<const char*> rules;     // Rule ids the pass may emit.
};
const std::vector<PassInfo>& Passes();

// Runs every registered pass over `files`, drops findings whose source
// line carries a `soc-lint-suppress(rule)` comment, and returns the
// rest sorted by (path, line, rule).
std::vector<Finding> LintTree(const std::vector<SourceFile>& files);

// The canonical include guard for a header path:
// "src/serve/metrics.h" -> "SOC_SERVE_METRICS_H_" (the leading source
// root is dropped; every other non-alphanumeric becomes '_').
std::string CanonicalGuard(const std::string& path);

// --fix support: rewrites a header whose include guard exists but is
// not canonical. Returns true and fills `fixed` when a rewrite applies;
// idempotent (a canonical header returns false). Missing guards are not
// invented — only naming is mechanical.
bool FixIncludeGuard(const SourceFile& file, std::string* fixed);

// Baseline file: one finding per line as rule<TAB>path<TAB>message
// ('#' comments and blank lines skipped). Line numbers are deliberately
// not part of the key so unrelated edits above a pinned finding do not
// unpin it.
std::set<std::string> ParseBaseline(const std::string& text);
std::string BaselineKey(const Finding& finding);
std::string WriteBaseline(const std::vector<Finding>& findings);
std::vector<Finding> ApplyBaseline(const std::vector<Finding>& findings,
                                   const std::set<std::string>& baseline);

// {"schema_version":2,"findings":[...]} — findings ordered by
// (rule, path, line, message) so CI artifacts diff cleanly across runs.
std::string FindingsToJson(const std::vector<Finding>& findings);

// SARIF 2.1.0 (minimal static-analysis profile: one run, one driver,
// rules[] from the pass table, one result per finding).
std::string FindingsToSarif(const std::vector<Finding>& findings);

}  // namespace soc::lint

#endif  // SOC_TOOLS_SOC_LINT_LINT_H_
