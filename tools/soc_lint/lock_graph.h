// The lock-hierarchy pass: cross-TU lock-order static analysis.
//
// Built on the token lexer (soc_lint/lexer.h) and a brace-scope tracker,
// this pass makes deadlock freedom a CI-time property:
//
//   1. Harvest — every `Mutex` / `SharedMutex` member declaration in
//      src/ becomes an entry in a project-wide lock registry (identity
//      is `Class::member`), together with its declared LockRank
//      initializer, SOC_GUARDED_BY field associations, and
//      SOC_REQUIRES/SOC_ACQUIRE function annotations. The rank table
//      itself is parsed out of src/common/lock_rank.h so the static
//      checker and the runtime checker share one source of truth.
//
//   2. Reconstruct — function bodies are walked with a scope tracker;
//      `MutexLock` / `ReaderMutexLock` / `WriterMutexLock` declarations
//      open held-lock regions that close with their enclosing brace
//      scope. Per-function acquisition summaries are propagated to a
//      fixpoint through the name-resolved call graph, giving the
//      cross-TU acquisition relation: an edge A -> B means some thread
//      may acquire B while holding A, either by direct lexical nesting
//      or through a call chain.
//
//   3. Report — rules emitted through the shared finding engine:
//        lock-order          cycles in the acquisition graph (including
//                            direct same-lock re-entry), with both
//                            acquisition witnesses.
//        lock-rank-order     an edge A -> B where rank(A) >= rank(B);
//                            ranks must strictly increase along every
//                            acquisition path.
//        lock-rank-missing   a Mutex member in the serving layers
//                            (serve/, tenant/, obs/, thread_pool)
//                            declared without a LockRank.
//        blocking-under-lock solver invocation, miner calls, sleeps,
//                            pool submit/shutdown/join inside a
//                            held-lock region.
//        condvar-wait-loop   an untimed CondVar::Wait outside the
//                            sanctioned `while (!pred) cv.Wait(mu);`
//                            idiom (timed WaitFor is exempt: its
//                            callers re-derive the predicate anyway).
//
// Heuristics, stated so their failure modes are known: lock identity is
// the declaring class plus member name (two instances of one class
// share a node — exactly what the rank table expresses); receiver types
// are resolved by member/method name, preferring the enclosing class
// and falling back to a unique project-wide match; only PascalCase
// callees are chased (project convention, and it keeps `size()` /
// `erase()` from aliasing into STL); call-mediated self-edges are
// dropped (distinct instances of one per-object lock), while direct
// lexical re-entry of one member is still reported.

#ifndef SOC_TOOLS_SOC_LINT_LOCK_GRAPH_H_
#define SOC_TOOLS_SOC_LINT_LOCK_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "soc_lint/lint.h"

namespace soc::lint {

// One harvested Mutex/SharedMutex member declaration.
struct LockDecl {
  std::string id;         // "Class::member" — the node identity.
  std::string cls;
  std::string member;
  std::string rank_name;  // "kServeMetrics" etc.; empty = unranked.
  int rank = 0;           // Numeric rank; 0 = unranked or unknown table.
  std::string rank_label; // Human name from the table, e.g. "serve.metrics".
  bool shared = false;    // SharedMutex rather than Mutex.
  std::string path;
  int line = 0;
};

// The project-wide lock registry the harvest step produces.
struct LockRegistry {
  std::vector<LockDecl> locks;
  // SOC_GUARDED_BY associations: "Class::field" -> "Class::mutex".
  std::map<std::string, std::string> guarded_by;
  // SOC_REQUIRES annotations: "Class::Method" -> lock ids the caller
  // must already hold (these seed the held set of the definition).
  std::map<std::string, std::vector<std::string>> requires_locks;

  const LockDecl* Find(const std::string& id) const;
};

// Harvest only (exposed for tests and for a future --dump-locks).
LockRegistry HarvestLocks(const std::vector<SourceFile>& files);

// The full pass: harvest, reconstruct, report. Operates on src/ files
// only; snippet tests feed fabricated src/... paths.
void CheckLockHierarchy(const std::vector<SourceFile>& files,
                        std::vector<Finding>* findings);

}  // namespace soc::lint

#endif  // SOC_TOOLS_SOC_LINT_LOCK_GRAPH_H_
