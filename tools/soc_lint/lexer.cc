#include "soc_lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace soc::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

std::vector<Token> Lex(const std::string& content) {
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = content.size();
  while (i < n) {
    const char c = content[i];
    const char next = i + 1 < n ? content[i + 1] : '\0';
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == '/' && next == '/') {
      while (i < n && content[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && next == '*') {
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') ++line;
        ++i;
      }
      i = i + 1 < n ? i + 2 : n;
      continue;
    }
    if (IsIdentStart(c)) {
      std::size_t start = i;
      while (i < n && IsIdentChar(content[i])) ++i;
      tokens.push_back(
          {Token::Kind::kIdent, content.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t start = i;
      // Accept the union of integer/float/hex spellings; precision about
      // which is irrelevant here.
      while (i < n && (IsIdentChar(content[i]) || content[i] == '.' ||
                       ((content[i] == '+' || content[i] == '-') && i > start &&
                        (content[i - 1] == 'e' || content[i - 1] == 'E')))) {
        ++i;
      }
      tokens.push_back(
          {Token::Kind::kNumber, content.substr(start, i - start), line});
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      std::size_t start = i;
      ++i;
      while (i < n && content[i] != quote) {
        if (content[i] == '\\' && i + 1 < n) ++i;
        if (content[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;  // Closing quote (absent only in malformed input).
      tokens.push_back({quote == '"' ? Token::Kind::kString
                                     : Token::Kind::kChar,
                        content.substr(start, i - start), start_line});
      continue;
    }
    if (c == ':' && next == ':') {
      tokens.push_back({Token::Kind::kPunct, "::", line});
      i += 2;
      continue;
    }
    tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return tokens;
}

bool IsIdent(const Token& token, const char* text) {
  return token.kind == Token::Kind::kIdent && token.text == text;
}

bool IsPunct(const Token& token, const char* text) {
  return token.kind == Token::Kind::kPunct && token.text == text;
}

}  // namespace soc::lint
