// A lightweight C++ lexer for soc_lint's parse-based passes.
//
// Produces a flat token stream (identifiers, numbers, string/char
// literals, punctuation) with 1-based line numbers; comments and
// whitespace are consumed, preprocessor directives are kept as ordinary
// tokens (a '#' punct followed by idents) so passes can skip or inspect
// them. This is deliberately not a compiler front end: no preprocessing,
// no template disambiguation — just enough structure for the
// brace-scope tracking the lock-hierarchy pass builds on top
// (soc_lint/lock_graph.h). The only multi-character punctuator that is
// fused is "::", because qualified names are load-bearing for that
// pass; every other operator arrives one character at a time.

#ifndef SOC_TOOLS_SOC_LINT_LEXER_H_
#define SOC_TOOLS_SOC_LINT_LEXER_H_

#include <string>
#include <vector>

namespace soc::lint {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;  // Literal text; string/char tokens keep their quotes.
  int line = 1;      // 1-based line of the token's first character.
};

// Lexes `content` into tokens. Never fails: unterminated literals and
// stray bytes lex as best-effort tokens, because lint must degrade
// gracefully on the crafted snippets tests feed it.
std::vector<Token> Lex(const std::string& content);

// True for tokens that are identifiers with exactly this text.
bool IsIdent(const Token& token, const char* text);

// True for punctuation tokens with exactly this text.
bool IsPunct(const Token& token, const char* text);

}  // namespace soc::lint

#endif  // SOC_TOOLS_SOC_LINT_LEXER_H_
