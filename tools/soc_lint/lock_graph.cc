#include "soc_lint/lock_graph.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "soc_lint/lexer.h"

namespace soc::lint {

namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Wrapper/primitive definitions themselves are not subject to the pass.
bool IsAnalyzableSrcFile(const std::string& path) {
  if (!StartsWith(path, "src/")) return false;
  if (!EndsWith(path, ".h") && !EndsWith(path, ".cc")) return false;
  if (EndsWith(path, "common/mutex.h")) return false;
  if (EndsWith(path, "common/lock_rank.h")) return false;
  if (EndsWith(path, "common/thread_annotations.h")) return false;
  return true;
}

// Layers where every long-lived mutex must carry a rank.
bool RequiresRank(const std::string& path) {
  return StartsWith(path, "src/serve/") || StartsWith(path, "src/tenant/") ||
         StartsWith(path, "src/obs/") ||
         StartsWith(path, "src/common/thread_pool");
}

// Project convention: methods worth chasing through the call graph are
// PascalCase. Lowercase and ALL_CAPS names are STL/macro territory and
// resolving them by bare name would fabricate edges.
bool IsPascalCase(const std::string& name) {
  if (name.empty() || std::isupper(static_cast<unsigned char>(name[0])) == 0) {
    return false;
  }
  for (char c : name) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return true;
  }
  return false;
}

bool IsLockWrapper(const std::string& name) {
  return name == "MutexLock" || name == "ReaderMutexLock" ||
         name == "WriterMutexLock";
}

// Calls that may block for an unbounded (or just long) time; making one
// inside a held-lock region serializes every contender behind it.
const char* const kBlockingCallees[] = {
    "Solve",        "SolveWithContext",
    "MineMaximalItemsetsDfs", "MineMaximalItemsetsRandomWalk",
    "sleep_for",    "Submit",
    "Shutdown",     "join",
    "Drain",
};

bool IsBlockingCallee(const std::string& name) {
  for (const char* blocking : kBlockingCallees) {
    if (name == blocking) return true;
  }
  return false;
}

struct RankEntry {
  int rank = 0;
  std::string label;
};

// Parses `LockRank kName{N, "label"};` rows out of common/lock_rank.h.
std::map<std::string, RankEntry> ParseRankTable(
    const std::vector<SourceFile>& files) {
  std::map<std::string, RankEntry> table;
  for (const SourceFile& file : files) {
    if (!EndsWith(file.path, "common/lock_rank.h")) continue;
    const std::vector<Token> tokens = Lex(file.content);
    for (std::size_t i = 0; i + 4 < tokens.size(); ++i) {
      if (!IsIdent(tokens[i], "LockRank")) continue;
      if (tokens[i + 1].kind != Token::Kind::kIdent) continue;
      if (!IsPunct(tokens[i + 2], "{")) continue;
      if (tokens[i + 3].kind != Token::Kind::kNumber) continue;
      RankEntry entry;
      entry.rank = std::atoi(tokens[i + 3].text.c_str());
      if (IsPunct(tokens[i + 4], ",") && i + 5 < tokens.size() &&
          tokens[i + 5].kind == Token::Kind::kString &&
          tokens[i + 5].text.size() >= 2) {
        entry.label =
            tokens[i + 5].text.substr(1, tokens[i + 5].text.size() - 2);
      }
      table[tokens[i + 1].text] = entry;
    }
  }
  return table;
}

// ---------------------------------------------------------------------
// Per-file scan: scope tracking + event extraction.
// ---------------------------------------------------------------------

// Events recorded inside function bodies, replayed once the global
// registry exists (receiver resolution needs every file's declarations).
struct Event {
  enum class Kind {
    kScopeOpen,   // A brace scope opened inside the function.
    kScopeClose,  // ... closed: RAII locks acquired in it release here.
    kAcquire,     // MutexLock-family declaration; `name` = member ident.
    kCall,        // PascalCase call; `name` = callee, `qualifier` = Class
                  // for Class::Call, empty for member/bare calls.
    kBlocking,    // Call to a known-blocking routine.
    kWait,        // Untimed CondVar Wait; `in_while` says if sanctioned.
  };
  Kind kind;
  std::string name;
  std::string qualifier;
  int line = 0;
  bool in_while = false;
};

struct FunctionRecord {
  std::string qualified;  // "Class::Method" ("" class -> plain name).
  std::string cls;        // Enclosing/declared class, may be empty.
  std::string path;
  int line = 0;
  std::vector<Event> events;
};

struct FileScan {
  std::vector<LockDecl> decls;
  std::map<std::string, std::string> guarded_by;
  std::map<std::string, std::vector<std::string>> requires_members;
  std::vector<FunctionRecord> functions;
};

struct Frame {
  enum class Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind = Kind::kBlock;
  std::string name;
  bool is_init = false;  // Brace initializer, not a real scope.
};

const std::string* InnermostClass(const std::vector<Frame>& frames) {
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    if (it->kind == Frame::Kind::kFunction) return nullptr;
    if (it->kind == Frame::Kind::kClass) return &it->name;
  }
  return nullptr;
}

bool InsideFunction(const std::vector<Frame>& frames) {
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    if (it->kind == Frame::Kind::kFunction) return true;
  }
  return false;
}

// The class a function body should resolve bare members against: the
// declared Class of `Class::Method`, else the enclosing class scope.
std::string EnclosingClassFor(const std::vector<Frame>& frames) {
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    if (it->kind == Frame::Kind::kClass) return it->name;
  }
  return std::string();
}

bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "while" || s == "for" || s == "switch" ||
         s == "catch" || s == "do" || s == "else" || s == "try";
}

bool IsQualifierIdent(const std::string& s) {
  return s == "const" || s == "noexcept" || s == "override" || s == "final" ||
         s == "mutable" || s == "try";
}

class FileScanner {
 public:
  FileScanner(const SourceFile& file, FileScan* out)
      : path_(file.path), tokens_(Lex(file.content)), out_(out) {}

  void Run() {
    ComputeWhileExtents();
    std::vector<std::size_t> stmt;  // Token indices since last ;/{/}.
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      const Token& t = tokens_[i];
      if (IsPunct(t, "#")) {
        // Preprocessor directive: consume to end of (logical) line.
        const int line = t.line;
        while (i + 1 < tokens_.size() && tokens_[i + 1].line == line) ++i;
        continue;
      }
      if (IsPunct(t, "{")) {
        OpenBrace(i, &stmt);
        continue;
      }
      if (IsPunct(t, "}")) {
        CloseBrace(&stmt);
        continue;
      }
      if (IsPunct(t, ";")) {
        EndStatement(stmt);
        stmt.clear();
        continue;
      }
      // Access specifiers terminate the "statement" they live in, or the
      // member declaration after them would carry `public :` as a prefix.
      if (IsPunct(t, ":") && stmt.size() == 1 &&
          (IsIdent(tokens_[stmt[0]], "public") ||
           IsIdent(tokens_[stmt[0]], "private") ||
           IsIdent(tokens_[stmt[0]], "protected"))) {
        stmt.clear();
        continue;
      }
      stmt.push_back(i);
    }
  }

 private:
  // While-statement extents (token-index ranges covering the body), so
  // the condvar rule works for both braced and single-statement loops.
  void ComputeWhileExtents() {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!IsIdent(tokens_[i], "while")) continue;
      std::size_t j = i + 1;
      if (j >= tokens_.size() || !IsPunct(tokens_[j], "(")) continue;
      int depth = 0;
      for (; j < tokens_.size(); ++j) {
        if (IsPunct(tokens_[j], "(")) ++depth;
        if (IsPunct(tokens_[j], ")") && --depth == 0) break;
      }
      if (j >= tokens_.size()) continue;
      std::size_t body = j + 1;
      if (body >= tokens_.size()) continue;
      std::size_t end = body;
      if (IsPunct(tokens_[body], "{")) {
        int braces = 0;
        for (end = body; end < tokens_.size(); ++end) {
          if (IsPunct(tokens_[end], "{")) ++braces;
          if (IsPunct(tokens_[end], "}") && --braces == 0) break;
        }
      } else {
        int parens = 0;
        for (end = body; end < tokens_.size(); ++end) {
          if (IsPunct(tokens_[end], "(")) ++parens;
          if (IsPunct(tokens_[end], ")")) --parens;
          if (parens == 0 && IsPunct(tokens_[end], ";")) break;
        }
      }
      while_extents_.emplace_back(body, end);
    }
  }

  bool InsideWhile(std::size_t token_index) const {
    for (const auto& extent : while_extents_) {
      if (token_index >= extent.first && token_index <= extent.second) {
        return true;
      }
    }
    return false;
  }

  bool HasIdent(const std::vector<std::size_t>& stmt, const char* text) const {
    for (std::size_t idx : stmt) {
      if (IsIdent(tokens_[idx], text)) return true;
    }
    return false;
  }

  FunctionRecord* CurrentFunction() {
    return current_function_.empty() ? nullptr
                                     : &out_->functions[current_function_
                                                            .back()];
  }

  void Emit(Event event) {
    FunctionRecord* fn = CurrentFunction();
    if (fn != nullptr) fn->events.push_back(std::move(event));
  }

  void OpenBrace(std::size_t i, std::vector<std::size_t>* stmt) {
    Frame frame;
    const std::size_t prev = stmt->empty() ? 0 : stmt->back();
    const bool have_prev = !stmt->empty();
    const Token* prev_token = have_prev ? &tokens_[prev] : nullptr;

    if (HasIdent(*stmt, "namespace")) {
      frame.kind = Frame::Kind::kNamespace;
    } else if (HasIdent(*stmt, "enum")) {
      frame.kind = Frame::Kind::kBlock;
    } else if (HasIdent(*stmt, "class") || HasIdent(*stmt, "struct") ||
               HasIdent(*stmt, "union")) {
      frame.kind = Frame::Kind::kClass;
      frame.name = ClassNameFrom(*stmt);
      // Nested classes carry their outer name: two structs both called
      // Flight must not unify into one lock node.
      const std::string outer = EnclosingClassFor(frames_);
      if (!outer.empty() && !frame.name.empty()) {
        frame.name = outer + "::" + frame.name;
      }
    } else if (have_prev && prev_token->kind == Token::Kind::kIdent &&
               IsControlKeyword(prev_token->text) &&
               prev_token->text != "try") {
      // `do {` / `else {` (control with no parens).
      frame.kind = Frame::Kind::kBlock;
      FlushCalls(*stmt);
    } else if (StatementIsControl(*stmt)) {
      frame.kind = Frame::Kind::kBlock;
      FlushCalls(*stmt);
    } else if (LooksLikeFunctionHead(*stmt, &frame.name)) {
      frame.kind = Frame::Kind::kFunction;
      StartFunction(frame.name, *stmt);
    } else if (have_prev &&
               (prev_token->kind == Token::Kind::kIdent ||
                prev_token->kind == Token::Kind::kNumber ||
                prev_token->kind == Token::Kind::kString ||
                IsPunct(*prev_token, "=") || IsPunct(*prev_token, ",") ||
                IsPunct(*prev_token, "(") || IsPunct(*prev_token, "[") ||
                IsPunct(*prev_token, "<") || IsPunct(*prev_token, "{") ||
                IsPunct(*prev_token, "::") || IsPunct(*prev_token, ">"))) {
      // Brace initializer: part of the surrounding statement.
      frame.kind = Frame::Kind::kBlock;
      frame.is_init = true;
      frames_.push_back(frame);
      stmt->push_back(i);  // Keep the statement intact across it.
      return;
    } else {
      frame.kind = Frame::Kind::kBlock;
      FlushCalls(*stmt);
    }

    frames_.push_back(frame);
    if (frame.kind != Frame::Kind::kClass &&
        frame.kind != Frame::Kind::kNamespace && InsideFunction(frames_)) {
      // The function frame itself opens its own scope via StartFunction.
      if (frame.kind == Frame::Kind::kBlock) {
        Emit({Event::Kind::kScopeOpen, "", "", tokens_[i].line, false});
      }
    }
    stmt->clear();
  }

  void CloseBrace(std::vector<std::size_t>* stmt) {
    if (frames_.empty()) return;
    const Frame frame = frames_.back();
    frames_.pop_back();
    if (frame.is_init) return;  // Statement continues.
    switch (frame.kind) {
      case Frame::Kind::kFunction:
        if (!current_function_.empty()) current_function_.pop_back();
        break;
      case Frame::Kind::kBlock:
        if (InsideFunction(frames_) || !current_function_.empty()) {
          Emit({Event::Kind::kScopeClose, "", "", 0, false});
        }
        break;
      default:
        break;
    }
    stmt->clear();
  }

  void EndStatement(const std::vector<std::size_t>& stmt) {
    if (stmt.empty()) return;
    const std::string* cls = InnermostClass(frames_);
    if (cls != nullptr) {
      HarvestClassStatement(stmt, *cls);
      return;
    }
    if (CurrentFunction() != nullptr) {
      if (MatchRaiiAcquire(stmt)) return;
      FlushCalls(stmt);
      return;
    }
    // Namespace scope: out-of-class annotated declarations are rare and
    // the definitions carry the annotation again; nothing to do.
  }

  // `class SOC_CAPABILITY("x") Name : public Base {` -> "Name": the last
  // identifier before a base-clause colon (or the head's end) that is
  // neither `final` nor an ALL_CAPS attribute macro.
  std::string ClassNameFrom(const std::vector<std::size_t>& stmt) const {
    // Scan only the head after the class keyword: a base-clause colon
    // ends it (access-specifier colons sit before the keyword and are
    // ignored by starting there).
    std::size_t k = 0;
    while (k < stmt.size() && !IsIdent(tokens_[stmt[k]], "class") &&
           !IsIdent(tokens_[stmt[k]], "struct") &&
           !IsIdent(tokens_[stmt[k]], "union")) {
      ++k;
    }
    std::string name;
    int paren = 0;
    for (++k; k < stmt.size(); ++k) {
      const Token& t = tokens_[stmt[k]];
      if (IsPunct(t, "(")) ++paren;
      if (IsPunct(t, ")")) --paren;
      if (paren > 0) continue;
      if (IsPunct(t, ":")) break;
      if (t.kind == Token::Kind::kIdent && t.text != "final") {
        name = t.text;
      }
    }
    return name;
  }

  bool StatementIsControl(const std::vector<std::size_t>& stmt) const {
    for (std::size_t idx : stmt) {
      const Token& t = tokens_[idx];
      if (t.kind == Token::Kind::kIdent) {
        return IsControlKeyword(t.text);
      }
      // Leading punctuation (e.g. `}` never reaches here) — keep looking.
    }
    return false;
  }

  // A function head ends in `)`, a qualifier, or the `}` of a brace
  // member-initializer, has an identifier immediately before its first
  // top-level `(`, and no `=` before that point (which would make the
  // brace an initializer of a declared variable).
  bool LooksLikeFunctionHead(const std::vector<std::size_t>& stmt,
                             std::string* name) const {
    if (stmt.empty()) return false;
    const Token& last = tokens_[stmt.back()];
    const bool tail_ok =
        IsPunct(last, ")") || IsPunct(last, "}") ||
        (last.kind == Token::Kind::kIdent && IsQualifierIdent(last.text));
    if (!tail_ok) return false;
    int paren = 0;
    std::size_t open = stmt.size();
    for (std::size_t k = 0; k < stmt.size(); ++k) {
      const Token& t = tokens_[stmt[k]];
      if (IsPunct(t, "=")) return false;
      if (IsPunct(t, "(")) {
        if (paren == 0) {
          open = k;
          break;
        }
        ++paren;
      }
    }
    if (open == stmt.size() || open == 0) return false;
    const Token& fn = tokens_[stmt[open - 1]];
    if (fn.kind != Token::Kind::kIdent || IsControlKeyword(fn.text)) {
      return false;
    }
    std::string cls;
    if (open >= 3 && IsPunct(tokens_[stmt[open - 2]], "::") &&
        tokens_[stmt[open - 3]].kind == Token::Kind::kIdent) {
      cls = tokens_[stmt[open - 3]].text;
    } else {
      cls = EnclosingClassFor(frames_);
    }
    *name = cls.empty() ? fn.text : cls + "::" + fn.text;
    return true;
  }

  void StartFunction(const std::string& qualified,
                     const std::vector<std::size_t>& stmt) {
    FunctionRecord record;
    record.qualified = qualified;
    const std::size_t sep = qualified.rfind("::");
    record.cls = sep == std::string::npos ? "" : qualified.substr(0, sep);
    record.path = path_;
    record.line = tokens_[stmt.front()].line;
    HarvestAnnotations(stmt, record.cls, qualified);
    out_->functions.push_back(std::move(record));
    current_function_.push_back(out_->functions.size() - 1);
  }

  // Class-scope statements: lock member declarations, SOC_GUARDED_BY
  // field associations, annotated method declarations.
  void HarvestClassStatement(const std::vector<std::size_t>& stmt,
                             const std::string& cls) {
    // [mutable] Mutex|SharedMutex name [{init}] ;
    std::size_t k = 0;
    if (k < stmt.size() && IsIdent(tokens_[stmt[k]], "mutable")) ++k;
    if (k + 1 < stmt.size() &&
        (IsIdent(tokens_[stmt[k]], "Mutex") ||
         IsIdent(tokens_[stmt[k]], "SharedMutex")) &&
        tokens_[stmt[k + 1]].kind == Token::Kind::kIdent) {
      LockDecl decl;
      decl.shared = IsIdent(tokens_[stmt[k]], "SharedMutex");
      decl.cls = cls;
      decl.member = tokens_[stmt[k + 1]].text;
      decl.id = cls + "::" + decl.member;
      decl.path = path_;
      decl.line = tokens_[stmt[k]].line;
      for (std::size_t j = k + 2; j < stmt.size(); ++j) {
        const Token& t = tokens_[stmt[j]];
        if (t.kind == Token::Kind::kIdent && t.text.size() > 1 &&
            t.text[0] == 'k' &&
            std::isupper(static_cast<unsigned char>(t.text[1])) != 0) {
          decl.rank_name = t.text;
          break;
        }
      }
      out_->decls.push_back(std::move(decl));
      return;
    }

    // `Type field SOC_GUARDED_BY(mutex_);`
    for (std::size_t j = 1; j + 2 < stmt.size(); ++j) {
      if (!IsIdent(tokens_[stmt[j]], "SOC_GUARDED_BY")) continue;
      if (!IsPunct(tokens_[stmt[j + 1]], "(")) continue;
      if (tokens_[stmt[j - 1]].kind != Token::Kind::kIdent) continue;
      if (tokens_[stmt[j + 2]].kind != Token::Kind::kIdent) continue;
      out_->guarded_by[cls + "::" + tokens_[stmt[j - 1]].text] =
          cls + "::" + tokens_[stmt[j + 2]].text;
    }

    // Annotated method declarations (`void F() SOC_REQUIRES(mu);`).
    std::string name;
    if (LooksLikeAnnotatedDecl(stmt, cls, &name)) {
      HarvestAnnotations(stmt, cls, name);
    }
  }

  bool LooksLikeAnnotatedDecl(const std::vector<std::size_t>& stmt,
                              const std::string& cls,
                              std::string* name) const {
    int paren = 0;
    std::size_t open = stmt.size();
    for (std::size_t k = 0; k < stmt.size(); ++k) {
      const Token& t = tokens_[stmt[k]];
      if (IsPunct(t, "(")) {
        if (paren == 0) {
          open = k;
          break;
        }
      }
    }
    if (open == stmt.size() || open == 0) return false;
    const Token& fn = tokens_[stmt[open - 1]];
    if (fn.kind != Token::Kind::kIdent) return false;
    *name = cls.empty() ? fn.text : cls + "::" + fn.text;
    return true;
  }

  void HarvestAnnotations(const std::vector<std::size_t>& stmt,
                          const std::string& cls,
                          const std::string& qualified) {
    for (std::size_t j = 0; j + 2 < stmt.size(); ++j) {
      if (!IsIdent(tokens_[stmt[j]], "SOC_REQUIRES") &&
          !IsIdent(tokens_[stmt[j]], "SOC_ACQUIRE")) {
        continue;
      }
      if (!IsPunct(tokens_[stmt[j + 1]], "(")) continue;
      for (std::size_t a = j + 2; a < stmt.size(); ++a) {
        const Token& t = tokens_[stmt[a]];
        if (IsPunct(t, ")")) break;
        if (t.kind == Token::Kind::kIdent) {
          out_->requires_members[qualified].push_back(
              cls.empty() ? t.text : cls + "::" + t.text);
        }
      }
    }
  }

  // `MutexLock lock(expr);` — expr's last identifier names the member.
  bool MatchRaiiAcquire(const std::vector<std::size_t>& stmt) {
    std::size_t k = 0;
    if (k >= stmt.size() || tokens_[stmt[k]].kind != Token::Kind::kIdent ||
        !IsLockWrapper(tokens_[stmt[k]].text)) {
      return false;
    }
    if (k + 2 >= stmt.size() ||
        tokens_[stmt[k + 1]].kind != Token::Kind::kIdent ||
        !IsPunct(tokens_[stmt[k + 2]], "(")) {
      return false;
    }
    std::string member;
    for (std::size_t j = k + 3; j < stmt.size(); ++j) {
      const Token& t = tokens_[stmt[j]];
      if (IsPunct(t, ")")) break;
      if (t.kind == Token::Kind::kIdent) member = t.text;
    }
    if (member.empty()) return false;
    Emit({Event::Kind::kAcquire, member, "", tokens_[stmt[k]].line, false});
    return true;
  }

  // Record every PascalCase call, blocking callee, and condvar Wait in a
  // flushed statement (a statement can hold several).
  void FlushCalls(const std::vector<std::size_t>& stmt) {
    if (CurrentFunction() == nullptr) return;
    for (std::size_t k = 0; k + 1 < stmt.size(); ++k) {
      const Token& t = tokens_[stmt[k]];
      if (t.kind != Token::Kind::kIdent) continue;
      if (!IsPunct(tokens_[stmt[k + 1]], "(")) continue;
      const int line = t.line;

      // Untimed CondVar::Wait — must sit inside a while statement.
      if (t.text == "Wait" && k >= 1) {
        const Token& prev = tokens_[stmt[k - 1]];
        const bool member_call =
            IsPunct(prev, ".") ||
            (IsPunct(prev, ">") && k >= 2 && IsPunct(tokens_[stmt[k - 2]], "-"));
        if (member_call) {
          Emit({Event::Kind::kWait, t.text, "", line, InsideWhile(stmt[k])});
          continue;
        }
      }

      if (IsBlockingCallee(t.text)) {
        Emit({Event::Kind::kBlocking, t.text, "", line, false});
        // A blocking callee may still acquire locks; fall through to the
        // call record below when it resolves.
      }

      if (!IsPascalCase(t.text) || IsLockWrapper(t.text) ||
          IsControlKeyword(t.text)) {
        continue;
      }
      std::string qualifier;
      if (k >= 2 && IsPunct(tokens_[stmt[k - 1]], "::")) {
        const Token& q = tokens_[stmt[k - 2]];
        if (q.kind != Token::Kind::kIdent || !IsPascalCase(q.text)) {
          continue;  // std:: / detail:: etc. — out of scope.
        }
        qualifier = q.text;
      }
      Emit({Event::Kind::kCall, t.text, qualifier, line, false});
    }
  }

  const std::string path_;
  const std::vector<Token> tokens_;
  FileScan* const out_;
  std::vector<Frame> frames_;
  std::vector<std::size_t> current_function_;  // Indices into functions.
  std::vector<std::pair<std::size_t, std::size_t>> while_extents_;
};

// ---------------------------------------------------------------------
// Graph construction and reporting.
// ---------------------------------------------------------------------

struct HeldLock {
  std::string id;
  std::string path;
  int line = 0;
};

struct CallSite {
  std::string caller;
  std::string callee;  // Resolved qualified name.
  std::string path;
  int line = 0;
  std::vector<HeldLock> held;
};

// A lock some function may acquire (directly or transitively), with the
// concrete acquisition site and the call chain that reaches it.
struct SummaryEntry {
  std::string path;
  int line = 0;
  std::string via;  // "A::F -> B::G" call chain, capped.
};

struct Edge {
  std::string holder_id;
  std::string holder_path;
  int holder_line = 0;
  std::string acquired_id;
  std::string acquired_path;
  int acquired_line = 0;
  std::string via;  // Empty = direct lexical nesting.
};

struct Analysis {
  LockRegistry registry;
  std::map<std::string, RankEntry> rank_table;
  std::map<std::string, FunctionRecord*> functions;  // qualified -> record
  std::map<std::string, std::set<std::string>> classes_with_method;
  std::vector<CallSite> calls;
  // Edges keyed (holder, acquired); first witness wins (files are
  // processed in sorted order, so output is deterministic).
  std::map<std::pair<std::string, std::string>, Edge> edges;
  std::map<std::string, std::map<std::string, SummaryEntry>> summaries;
};

const LockDecl* FindLockInClass(const LockRegistry& registry,
                                const std::string& cls,
                                const std::string& member) {
  for (const LockDecl& decl : registry.locks) {
    if (decl.cls == cls && decl.member == member) return &decl;
  }
  return nullptr;
}

// Member-name resolution: the enclosing class wins, then a unique match
// among its nested classes (Flight-style helper structs), then a unique
// project-wide match; otherwise unresolved (empty).
std::string ResolveLockMember(const LockRegistry& registry,
                              const std::string& cls,
                              const std::string& member) {
  if (!cls.empty()) {
    const LockDecl* own = FindLockInClass(registry, cls, member);
    if (own != nullptr) return own->id;
    const LockDecl* nested = nullptr;
    for (const LockDecl& decl : registry.locks) {
      if (decl.member != member) continue;
      if (!StartsWith(decl.cls, cls + "::")) continue;
      if (nested != nullptr) {
        nested = nullptr;
        break;
      }
      nested = &decl;
    }
    if (nested != nullptr) return nested->id;
  }
  const LockDecl* unique = nullptr;
  for (const LockDecl& decl : registry.locks) {
    if (decl.member != member) continue;
    if (unique != nullptr) return std::string();  // Ambiguous.
    unique = &decl;
  }
  return unique != nullptr ? unique->id : std::string();
}

// Callee resolution mirrors it: explicit Class:: qualifier, else the
// caller's own class, else a unique project-wide definer.
std::string ResolveCallee(const Analysis& analysis, const std::string& cls,
                          const std::string& callee,
                          const std::string& qualifier) {
  if (!qualifier.empty()) {
    const std::string qualified = qualifier + "::" + callee;
    return analysis.functions.count(qualified) != 0 ? qualified
                                                    : std::string();
  }
  if (!cls.empty() &&
      analysis.functions.count(cls + "::" + callee) != 0) {
    return cls + "::" + callee;
  }
  const auto it = analysis.classes_with_method.find(callee);
  if (it == analysis.classes_with_method.end() || it->second.size() != 1) {
    return std::string();
  }
  const std::string qualified = *it->second.begin() + "::" + callee;
  return analysis.functions.count(qualified) != 0 ? qualified
                                                  : std::string();
}

void AddEdge(Analysis* analysis, const HeldLock& holder,
             const std::string& acquired_id, const std::string& acq_path,
             int acq_line, const std::string& via) {
  Edge edge;
  edge.holder_id = holder.id;
  edge.holder_path = holder.path;
  edge.holder_line = holder.line;
  edge.acquired_id = acquired_id;
  edge.acquired_path = acq_path;
  edge.acquired_line = acq_line;
  edge.via = via;
  analysis->edges.emplace(std::make_pair(holder.id, acquired_id),
                          std::move(edge));
}

// Replay one function's events: maintain the held stack, record direct
// edges, direct-acquire summary entries, and call sites with held
// snapshots.
void ReplayFunction(Analysis* analysis, const FunctionRecord& fn,
                    std::vector<Finding>* findings) {
  std::vector<HeldLock> held;
  std::vector<std::size_t> scope_floors;

  // SOC_REQUIRES seeds: the caller already holds these at entry.
  const auto req = analysis->registry.requires_locks.find(fn.qualified);
  if (req != analysis->registry.requires_locks.end()) {
    for (const std::string& id : req->second) {
      held.push_back({id, fn.path, fn.line});
    }
  }

  auto& summary = analysis->summaries[fn.qualified];
  for (const Event& event : fn.events) {
    switch (event.kind) {
      case Event::Kind::kScopeOpen:
        scope_floors.push_back(held.size());
        break;
      case Event::Kind::kScopeClose:
        if (!scope_floors.empty()) {
          held.resize(std::min(held.size(),
                               static_cast<std::size_t>(scope_floors.back())));
          scope_floors.pop_back();
        }
        break;
      case Event::Kind::kAcquire: {
        std::string id =
            ResolveLockMember(analysis->registry, fn.cls, event.name);
        if (id.empty()) {
          // Unresolved (function-local mutex): participates in the held
          // set for the blocking rule, never in the graph.
          id = "<local>::" + event.name;
        } else {
          for (const HeldLock& holder : held) {
            if (StartsWith(holder.id, "<local>")) continue;
            AddEdge(analysis, holder, id, fn.path, event.line, "");
          }
          if (summary.count(id) == 0) {
            summary[id] = {fn.path, event.line, fn.qualified};
          }
        }
        held.push_back({id, fn.path, event.line});
        break;
      }
      case Event::Kind::kCall: {
        const std::string callee =
            ResolveCallee(*analysis, fn.cls, event.name, event.qualifier);
        if (callee.empty() || callee == fn.qualified) break;
        CallSite site;
        site.caller = fn.qualified;
        site.callee = callee;
        site.path = fn.path;
        site.line = event.line;
        site.held = held;
        analysis->calls.push_back(std::move(site));
        break;
      }
      case Event::Kind::kBlocking:
        if (!held.empty()) {
          const HeldLock& top = held.back();
          const std::string held_name =
              StartsWith(top.id, "<local>") ? top.id.substr(9) : top.id;
          Finding finding;
          finding.rule = "blocking-under-lock";
          finding.path = fn.path;
          finding.line = event.line;
          finding.message =
              "call to " + event.name + "() while holding " + held_name +
              " (acquired line " + std::to_string(top.line) +
              "); blocking work must not run inside a held-lock region";
          findings->push_back(std::move(finding));
        }
        break;
      case Event::Kind::kWait:
        if (!event.in_while) {
          Finding finding;
          finding.rule = "condvar-wait-loop";
          finding.path = fn.path;
          finding.line = event.line;
          finding.message =
              "untimed CondVar::Wait outside a while loop; spurious "
              "wakeups require `while (!pred) cv.Wait(mu);` (timed "
              "WaitFor is exempt)";
          findings->push_back(std::move(finding));
        }
        break;
    }
  }
}

// Propagate acquisition summaries through the call graph to a fixpoint,
// then materialize call-mediated edges from every call site's held set.
void PropagateSummaries(Analysis* analysis) {
  bool changed = true;
  // Bounded by the longest acyclic call chain; the cap is generous.
  for (int round = 0; changed && round < 64; ++round) {
    changed = false;
    for (const CallSite& site : analysis->calls) {
      const auto callee_it = analysis->summaries.find(site.callee);
      if (callee_it == analysis->summaries.end()) continue;
      auto& caller_summary = analysis->summaries[site.caller];
      for (const auto& [lock_id, entry] : callee_it->second) {
        if (caller_summary.count(lock_id) != 0) continue;
        SummaryEntry lifted = entry;
        // Keep chains readable: caller -> ... (cap at 4 hops).
        if (std::count(lifted.via.begin(), lifted.via.end(), '>') < 4) {
          lifted.via = site.caller + " -> " + lifted.via;
        }
        caller_summary[lock_id] = std::move(lifted);
        changed = true;
      }
    }
  }

  for (const CallSite& site : analysis->calls) {
    if (site.held.empty()) continue;
    const auto callee_it = analysis->summaries.find(site.callee);
    if (callee_it == analysis->summaries.end()) continue;
    for (const auto& [lock_id, entry] : callee_it->second) {
      for (const HeldLock& holder : site.held) {
        if (StartsWith(holder.id, "<local>")) continue;
        // Distinct instances of one per-object lock look like self
        // edges through calls; only lexical re-entry (handled in
        // ReplayFunction) is a reportable self-cycle.
        if (holder.id == lock_id) continue;
        AddEdge(analysis, holder, lock_id, entry.path, entry.line,
                site.caller + " -> " + entry.via);
      }
    }
  }
}

std::string DescribeEdge(const Edge& edge) {
  std::string out = edge.acquired_id + " acquired at " + edge.acquired_path +
                    ":" + std::to_string(edge.acquired_line) + " while " +
                    edge.holder_id + " is held (taken at " +
                    edge.holder_path + ":" +
                    std::to_string(edge.holder_line) + ")";
  if (!edge.via.empty()) out += " via " + edge.via;
  return out;
}

// Cycle reporting: every strongly connected component with more than one
// node (or a direct self-edge) is a lock-order inversion. One finding
// per cycle, carrying both acquisition witnesses.
void ReportCycles(const Analysis& analysis, std::vector<Finding>* findings) {
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, edge] : analysis.edges) {
    adj[key.first].push_back(key.second);
  }

  // Direct self-edges first (lexical re-entry of one lock).
  for (const auto& [key, edge] : analysis.edges) {
    if (key.first != key.second) continue;
    Finding finding;
    finding.rule = "lock-order";
    finding.path = edge.acquired_path;
    finding.line = edge.acquired_line;
    finding.message = "lock " + edge.acquired_id +
                      " acquired while already held (first taken at " +
                      edge.holder_path + ":" +
                      std::to_string(edge.holder_line) +
                      "); re-entry self-deadlocks";
    findings->push_back(std::move(finding));
  }

  // Find a cycle through each unvisited node via iterative DFS.
  std::set<std::string> done;
  std::set<std::string> reported;
  for (const auto& [start, unused] : adj) {
    (void)unused;
    if (done.count(start) != 0) continue;
    std::vector<std::string> path;
    std::set<std::string> on_path;
    // Classic colored DFS, recursion unrolled with an explicit stack of
    // (node, next-child) pairs.
    std::vector<std::pair<std::string, std::size_t>> frames{{start, 0}};
    on_path.insert(start);
    path.push_back(start);
    while (!frames.empty()) {
      auto& [node, child] = frames.back();
      const auto it = adj.find(node);
      if (it == adj.end() || child >= it->second.size()) {
        done.insert(node);
        on_path.erase(node);
        path.pop_back();
        frames.pop_back();
        continue;
      }
      const std::string next = it->second[child++];
      if (next == node) continue;  // Self edges reported above.
      if (on_path.count(next) != 0) {
        // Cycle: path from `next` to `node`, closing back to `next`.
        std::vector<std::string> cycle(
            std::find(path.begin(), path.end(), next), path.end());
        // Normalize so one cycle reports once regardless of entry.
        const auto min_it = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), min_it, cycle.end());
        std::string key;
        for (const std::string& n : cycle) key += n + "|";
        if (reported.insert(key).second) {
          std::string names;
          std::string witnesses;
          for (std::size_t k = 0; k < cycle.size(); ++k) {
            const std::string& from = cycle[k];
            const std::string& to = cycle[(k + 1) % cycle.size()];
            names += (k == 0 ? "" : " -> ") + from;
            const auto edge_it = analysis.edges.find({from, to});
            if (edge_it != analysis.edges.end()) {
              witnesses += "; " + DescribeEdge(edge_it->second);
            }
          }
          names += " -> " + cycle.front();
          const auto first_edge =
              analysis.edges.find({cycle.front(), cycle[1 % cycle.size()]});
          Finding finding;
          finding.rule = "lock-order";
          finding.path = first_edge != analysis.edges.end()
                             ? first_edge->second.acquired_path
                             : "";
          finding.line = first_edge != analysis.edges.end()
                             ? first_edge->second.acquired_line
                             : 0;
          finding.message =
              "lock-order inversion: " + names + witnesses;
          findings->push_back(std::move(finding));
        }
        continue;
      }
      if (done.count(next) != 0) continue;
      frames.emplace_back(next, 0);
      on_path.insert(next);
      path.push_back(next);
    }
  }
}

void ReportRankViolations(const Analysis& analysis,
                          std::vector<Finding>* findings) {
  if (analysis.rank_table.empty()) return;  // No table in this corpus.
  auto rank_of = [&](const std::string& id) -> int {
    const LockDecl* decl = analysis.registry.Find(id);
    return decl != nullptr ? decl->rank : 0;
  };
  for (const auto& [key, edge] : analysis.edges) {
    const int from = rank_of(key.first);
    const int to = rank_of(key.second);
    if (from == 0 || to == 0) continue;  // Unranked: cycle rule covers it.
    if (from < to) continue;
    Finding finding;
    finding.rule = "lock-rank-order";
    finding.path = edge.acquired_path;
    finding.line = edge.acquired_line;
    finding.message =
        "acquiring " + key.second + " (rank " + std::to_string(to) +
        ") while " + key.first + " (rank " + std::to_string(from) +
        ") is held; ranks must strictly increase along every acquisition "
        "path (common/lock_rank.h)" +
        (edge.via.empty() ? "" : "; via " + edge.via);
    findings->push_back(std::move(finding));
  }
}

void ReportMissingRanks(const Analysis& analysis,
                        std::vector<Finding>* findings) {
  for (const LockDecl& decl : analysis.registry.locks) {
    if (!RequiresRank(decl.path)) continue;
    if (decl.rank_name.empty()) {
      Finding finding;
      finding.rule = "lock-rank-missing";
      finding.path = decl.path;
      finding.line = decl.line;
      finding.message =
          (decl.shared ? "SharedMutex " : "Mutex ") + decl.id +
          " in the serving layers has no LockRank; construct it with a "
          "rank from common/lock_rank.h so both the static and runtime "
          "hierarchy checks cover it";
      findings->push_back(std::move(finding));
    } else if (!analysis.rank_table.empty() &&
               analysis.rank_table.count(decl.rank_name) == 0) {
      Finding finding;
      finding.rule = "lock-rank-missing";
      finding.path = decl.path;
      finding.line = decl.line;
      finding.message = decl.id + " references rank " + decl.rank_name +
                        " which is not declared in common/lock_rank.h";
      findings->push_back(std::move(finding));
    }
  }
}

Analysis BuildAnalysis(const std::vector<SourceFile>& files,
                       std::vector<Finding>* findings) {
  Analysis analysis;
  analysis.rank_table = ParseRankTable(files);

  // Deterministic order regardless of directory-walk order.
  std::vector<const SourceFile*> sorted;
  for (const SourceFile& file : files) {
    if (IsAnalyzableSrcFile(file.path)) sorted.push_back(&file);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const SourceFile* a, const SourceFile* b) {
              return a->path < b->path;
            });

  std::vector<FileScan> scans(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    FileScanner(*sorted[i], &scans[i]).Run();
    for (LockDecl& decl : scans[i].decls) {
      if (!decl.rank_name.empty()) {
        const auto it = analysis.rank_table.find(decl.rank_name);
        if (it != analysis.rank_table.end()) {
          decl.rank = it->second.rank;
          decl.rank_label = it->second.label;
        }
      }
      analysis.registry.locks.push_back(std::move(decl));
    }
    for (auto& [field, mutex] : scans[i].guarded_by) {
      analysis.registry.guarded_by.emplace(field, mutex);
    }
  }

  // Requires annotations resolve member names against the registry.
  for (FileScan& scan : scans) {
    for (auto& [qualified, members] : scan.requires_members) {
      for (const std::string& member : members) {
        const std::size_t sep = member.rfind("::");
        const std::string cls =
            sep == std::string::npos ? "" : member.substr(0, sep);
        const std::string name =
            sep == std::string::npos ? member : member.substr(sep + 2);
        const std::string id =
            ResolveLockMember(analysis.registry, cls, name);
        if (!id.empty()) {
          analysis.registry.requires_locks[qualified].push_back(id);
        }
      }
    }
  }

  for (FileScan& scan : scans) {
    for (FunctionRecord& fn : scan.functions) {
      // Later definitions of one name do not replace the first: good
      // enough, and deterministic.
      analysis.functions.emplace(fn.qualified, &fn);
      if (!fn.cls.empty()) {
        const std::size_t sep = fn.qualified.rfind("::");
        analysis.classes_with_method[fn.qualified.substr(sep + 2)].insert(
            fn.cls);
      }
    }
  }

  for (FileScan& scan : scans) {
    for (FunctionRecord& fn : scan.functions) {
      ReplayFunction(&analysis, fn, findings);
    }
  }
  PropagateSummaries(&analysis);
  return analysis;
}

}  // namespace

const LockDecl* LockRegistry::Find(const std::string& id) const {
  for (const LockDecl& decl : locks) {
    if (decl.id == id) return &decl;
  }
  return nullptr;
}

LockRegistry HarvestLocks(const std::vector<SourceFile>& files) {
  std::vector<Finding> sink;
  return BuildAnalysis(files, &sink).registry;
}

void CheckLockHierarchy(const std::vector<SourceFile>& files,
                        std::vector<Finding>* findings) {
  const Analysis analysis = BuildAnalysis(files, findings);
  ReportCycles(analysis, findings);
  ReportRankViolations(analysis, findings);
  ReportMissingRanks(analysis, findings);
}

}  // namespace soc::lint
