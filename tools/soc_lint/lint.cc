#include "soc_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>

#include "common/json_writer.h"
#include "soc_lint/lock_graph.h"

namespace soc::lint {

namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeader(const std::string& path) { return EndsWith(path, ".h"); }
bool IsSource(const std::string& path) { return EndsWith(path, ".cc"); }

// 1-based line number of byte offset `pos`.
int LineOf(const std::string& content, std::size_t pos) {
  return 1 + static_cast<int>(
                 std::count(content.begin(),
                            content.begin() +
                                static_cast<std::ptrdiff_t>(
                                    std::min(pos, content.size())),
                            '\n'));
}

// Replaces // and /* */ comments and string/char literals with spaces
// (newlines preserved), so token searches cannot match inside them.
std::string StripCommentsAndStrings(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\0' && next != '\n') {
            out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '\'') {
          state = State::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

// Blanks comments only (newlines preserved, string literals kept), for
// rules that must read literal contents. Offsets line up with the input
// and with StripCommentsAndStrings, so a token found in the fully
// stripped text can have its argument literals read from this one.
std::string StripComments(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLine, kBlock, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Finds whole-identifier occurrences of `token` (no identifier chars on
// either side; `token` may contain "::").
std::vector<std::size_t> FindTokens(const std::string& text,
                                    const std::string& token) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = text.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

void Add(std::vector<Finding>* findings, std::string rule, std::string path,
         int line, std::string message) {
  Finding finding;
  finding.rule = std::move(rule);
  finding.path = std::move(path);
  finding.line = line;
  finding.message = std::move(message);
  findings->push_back(std::move(finding));
}

// The layers below serve/, in include-prefix form.
constexpr const char* kLayersBelowServe[] = {
    "src/common/",  "src/boolean/",     "src/lp/",      "src/itemsets/",
    "src/core/",    "src/categorical/", "src/numeric/", "src/text/",
    "src/datagen/", "src/obs/"};

// Files that may use raw threads: the pool itself and the annotated
// primitives it is built from.
constexpr const char* kThreadExempt[] = {"src/common/thread_pool.h",
                                         "src/common/thread_pool.cc",
                                         "src/common/mutex.h"};

}  // namespace

std::string CanonicalGuard(const std::string& path) {
  std::string trimmed = path;
  if (StartsWith(trimmed, "src/")) trimmed = trimmed.substr(4);
  std::string guard = "SOC_";
  for (char c : trimmed) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

void CheckIncludeGuard(const SourceFile& file,
                       std::vector<Finding>* findings) {
  if (!IsHeader(file.path)) return;
  const std::string code = StripCommentsAndStrings(file.content);

  if (code.find("#pragma once") != std::string::npos) return;

  const std::size_t ifndef_pos = code.find("#ifndef ");
  if (ifndef_pos == std::string::npos) {
    Add(findings, "include-guard", file.path, 0,
        "header has neither #pragma once nor an #ifndef include guard");
    return;
  }
  std::size_t name_start = ifndef_pos + 8;
  while (name_start < code.size() && code[name_start] == ' ') ++name_start;
  std::size_t name_end = name_start;
  while (name_end < code.size() && IsIdentChar(code[name_end])) ++name_end;
  const std::string guard = code.substr(name_start, name_end - name_start);
  if (guard.empty()) {
    Add(findings, "include-guard", file.path, LineOf(code, ifndef_pos),
        "#ifndef include guard has no name");
    return;
  }
  if (code.find("#define " + guard) == std::string::npos) {
    Add(findings, "include-guard", file.path, LineOf(code, ifndef_pos),
        "include guard '" + guard + "' is never #defined");
    return;
  }
  if (StartsWith(file.path, "src/")) {
    const std::string expected = CanonicalGuard(file.path);
    if (guard != expected) {
      Add(findings, "include-guard", file.path, LineOf(code, ifndef_pos),
          "include guard '" + guard + "' should be the canonical '" +
              expected + "'");
    }
  }
}

void CheckNakedThread(const SourceFile& file,
                      std::vector<Finding>* findings) {
  if (!StartsWith(file.path, "src/")) return;
  for (const char* exempt : kThreadExempt) {
    if (file.path == exempt) return;
  }
  const std::string code = StripCommentsAndStrings(file.content);
  for (const char* token :
       {"std::thread", "std::jthread", "std::async", "pthread_create"}) {
    for (std::size_t pos : FindTokens(code, token)) {
      // Reading the parallelism hint is not spawning a thread.
      if (code.compare(pos, 33, "std::thread::hardware_concurrency") == 0) {
        continue;
      }
      Add(findings, "naked-thread", file.path, LineOf(code, pos),
          std::string(token) +
              " outside common/thread_pool.*; use soc::ThreadPool");
    }
  }
  // Detached threads escape every join point — banned even in the
  // exempted pool files (which never reach here anyway). ".detach()" on
  // anything thread-like is the tell; other detach() members do not
  // exist in this codebase.
  for (std::size_t pos : FindTokens(code, "detach")) {
    const bool member = pos > 0 && (code[pos - 1] == '.' ||
                                    (pos > 1 && code[pos - 2] == '-' &&
                                     code[pos - 1] == '>'));
    const std::size_t after = pos + 6;
    const bool call = after < code.size() && code[after] == '(';
    if (member && call) {
      Add(findings, "naked-thread", file.path, LineOf(code, pos),
          "detached thread: .detach() abandons the join point; use "
          "soc::ThreadPool (workers join in Shutdown)");
    }
  }
}

void CheckLayering(const SourceFile& file, std::vector<Finding>* findings) {
  bool below_serve = false;
  for (const char* layer : kLayersBelowServe) {
    if (StartsWith(file.path, layer)) {
      below_serve = true;
      break;
    }
  }
  if (!below_serve) return;
  // #include lines survive comment stripping; the quoted path does not,
  // so search the raw text but anchor on the directive.
  std::size_t pos = 0;
  while ((pos = file.content.find("#include \"serve/", pos)) !=
         std::string::npos) {
    Add(findings, "layering", file.path, LineOf(file.content, pos),
        "layer below serve/ must not include serve/ headers");
    pos += 1;
  }
}

namespace {

// Implements the function-body half of stop-cadence: every function
// *definition* with a SolveContext* parameter must mention that parameter
// again in its body (a Checkpoint() call or forwarding to a callee).
void CheckSolveContextUse(const SourceFile& file, const std::string& code,
                          std::vector<Finding>* findings) {
  const std::string needle = "SolveContext";
  std::size_t pos = 0;
  while ((pos = code.find(needle, pos)) != std::string::npos) {
    const std::size_t token_pos = pos;
    pos += needle.size();
    if (token_pos > 0 && IsIdentChar(code[token_pos - 1])) continue;
    // Expect "* name" next.
    std::size_t i = pos;
    while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])))
      ++i;
    if (i >= code.size() || code[i] != '*') continue;
    ++i;
    while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])))
      ++i;
    std::size_t name_start = i;
    while (i < code.size() && IsIdentChar(code[i])) ++i;
    const std::string name = code.substr(name_start, i - name_start);
    if (name.empty()) continue;
    while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])))
      ++i;
    // Allow a "= nullptr" default argument.
    if (i < code.size() && code[i] == '=') {
      std::size_t j = i + 1;
      while (j < code.size() &&
             std::isspace(static_cast<unsigned char>(code[j])))
        ++j;
      if (code.compare(j, 7, "nullptr") != 0) continue;  // Local variable.
      i = j + 7;
      while (i < code.size() &&
             std::isspace(static_cast<unsigned char>(code[i])))
        ++i;
    }
    // A parameter is followed by ',' or the ')' closing the list.
    if (i >= code.size() || (code[i] != ',' && code[i] != ')')) continue;

    // Close the parameter list: the token sits at depth >= 1, so walk
    // until the running depth goes negative.
    int depth = 0;
    std::size_t k = i;
    for (; k < code.size(); ++k) {
      if (code[k] == '(') ++depth;
      if (code[k] == ')') {
        if (depth == 0) break;
        --depth;
      }
    }
    if (k >= code.size()) continue;
    // Definition if the next ';' / '{' / '=' at brace level is '{'
    // (qualifiers like const/noexcept/override/annotations may
    // intervene; '=' covers "= 0;" and "= default;").
    std::size_t b = k + 1;
    int paren = 0;
    for (; b < code.size(); ++b) {
      const char c = code[b];
      if (c == '(') ++paren;  // e.g. noexcept(...) or macro(...).
      if (c == ')') --paren;
      if (paren > 0) continue;
      if (c == '{' || c == ';' || c == '=') break;
    }
    if (b >= code.size() || code[b] != '{') continue;  // Declaration only.
    // Brace-match the body.
    int braces = 0;
    std::size_t body_end = b;
    for (; body_end < code.size(); ++body_end) {
      if (code[body_end] == '{') ++braces;
      if (code[body_end] == '}') {
        --braces;
        if (braces == 0) break;
      }
    }
    // Include the region between ')' and '{': a constructor stashing the
    // context via its member-initializer list counts as forwarding.
    const std::string body = code.substr(k, body_end - k);
    if (FindTokens(body, name).empty()) {
      Add(findings, "stop-cadence", file.path, LineOf(code, token_pos),
          "function takes SolveContext* '" + name +
              "' but never checkpoints or forwards it; solver loops must "
              "consult the context on the kStopCheckInterval cadence");
    }
    pos = b;  // Nested definitions (lambdas) are scanned in turn.
  }
}

}  // namespace

void CheckStopCadence(const SourceFile& file,
                      std::vector<Finding>* findings) {
  if (!StartsWith(file.path, "src/")) return;
  const std::string code = StripCommentsAndStrings(file.content);

  // Manual cadence arithmetic must match SolveContext::Checkpoint: a
  // power-of-two mask, tuned in one place.
  for (std::size_t pos : FindTokens(code, "kStopCheckInterval")) {
    std::size_t i = pos;
    while (i > 0 &&
           std::isspace(static_cast<unsigned char>(code[i - 1]))) {
      --i;
    }
    if (i > 0 && code[i - 1] == '%') {
      Add(findings, "stop-cadence", file.path, LineOf(code, pos),
          "use '& kStopCheckMask' for the stop-check cadence, not "
          "'% kStopCheckInterval'");
    }
  }

  const bool solver_layer = StartsWith(file.path, "src/core/") ||
                            StartsWith(file.path, "src/lp/") ||
                            StartsWith(file.path, "src/itemsets/");
  if (solver_layer && IsSource(file.path)) {
    CheckSolveContextUse(file, code, findings);
  }
}

void CheckRejectMetrics(const SourceFile& file,
                        std::vector<Finding>* findings) {
  if (!StartsWith(file.path, "src/serve/") || !IsSource(file.path)) return;
  const std::string code = StripCommentsAndStrings(file.content);
  // A rejection and its counter bump live in the same short block; the
  // window is generous enough for an interleaved trace event but too
  // small to be satisfied by an unrelated counter in another function.
  constexpr std::size_t kWindow = 1200;
  for (std::size_t pos : FindTokens(code, "OverloadedError")) {
    const std::size_t window_start = pos > kWindow ? pos - kWindow : 0;
    const std::string before = code.substr(window_start, pos - window_start);
    if (FindTokens(before, "Increment").empty()) {
      Add(findings, "reject-metrics", file.path, LineOf(code, pos),
          "OverloadedError rejection with no ServeMetrics Increment in the "
          "preceding lines; every shed/reject path must bump a named "
          "counter so the overload ledger stays balanced");
    }
  }
}

void CheckCacheMetrics(const std::vector<SourceFile>& files,
                       std::vector<Finding>* findings) {
  const SourceFile* header = nullptr;
  const SourceFile* source = nullptr;
  for (const SourceFile& file : files) {
    if (EndsWith(file.path, "tenant/result_cache.h")) header = &file;
    if (EndsWith(file.path, "tenant/result_cache.cc")) source = &file;
  }
  if (header == nullptr && source == nullptr) return;
  if (header == nullptr || source == nullptr) {
    Add(findings, "cache-metrics",
        (header != nullptr ? header : source)->path, 0,
        "result_cache.h and result_cache.cc must travel together");
    return;
  }

  // Every counter constant the header declares must be bumped somewhere
  // in the implementation: a declared-but-never-incremented counter is a
  // dashboard lie.
  const std::string header_code = StripCommentsAndStrings(header->content);
  const std::string code = StripCommentsAndStrings(source->content);
  std::set<std::string> constants;
  const std::string prefix = "kResultCache";
  std::size_t pos = 0;
  while ((pos = header_code.find(prefix, pos)) != std::string::npos) {
    // Qualified references (lock_rank::kResultCacheLru) are another
    // namespace's constants — only unqualified declarations are counter
    // names.
    std::size_t before = pos;
    while (before > 0 && header_code[before - 1] == ' ') --before;
    if (before >= 2 && header_code.compare(before - 2, 2, "::") == 0) {
      pos += prefix.size();
      continue;
    }
    std::size_t end = pos + prefix.size();
    while (end < header_code.size() &&
           (std::isalnum(static_cast<unsigned char>(header_code[end])) ||
            header_code[end] == '_')) {
      ++end;
    }
    if (end > pos + prefix.size()) {
      constants.insert(header_code.substr(pos, end - pos));
    }
    pos = end;
  }
  if (constants.empty()) {
    Add(findings, "cache-metrics", header->path, 0,
        "no kResultCache* counter constants found in result_cache.h");
    return;
  }
  for (const std::string& name : constants) {
    if (FindTokens(code, name).empty()) {
      Add(findings, "cache-metrics", source->path, 0,
          "counter constant " + name +
              " is declared in result_cache.h but never incremented in "
              "result_cache.cc; every cache hit/miss/evict path must bump "
              "its named ServeMetrics counter");
    }
  }

  // The structural LRU paths must count nearby: a recency splice is a
  // hit or (re)insert, a pop_back is an eviction. Same windowed shape as
  // the reject-metrics rule.
  constexpr std::size_t kWindow = 400;
  const auto check_window = [&](const char* token, const char* what) {
    for (std::size_t hit : FindTokens(code, token)) {
      const std::size_t window_end = std::min(code.size(), hit + kWindow);
      const std::size_t window_start = hit > kWindow ? hit - kWindow : 0;
      const std::string around =
          code.substr(window_start, window_end - window_start);
      if (FindTokens(around, "Count").empty() &&
          FindTokens(around, "Increment").empty()) {
        Add(findings, "cache-metrics", source->path, LineOf(code, hit),
            std::string(what) +
                " with no counter bump nearby; every cache "
                "hit/insert/evict path must increment a named "
                "ServeMetrics counter");
      }
    }
  };
  check_window("splice", "LRU recency bump (hit/insert path)");
  check_window("pop_back", "LRU eviction");
}

void CheckRegistryTestParity(const std::vector<SourceFile>& files,
                             std::vector<Finding>* findings) {
  const SourceFile* registry = nullptr;
  const SourceFile* test = nullptr;
  for (const SourceFile& file : files) {
    if (EndsWith(file.path, "core/solver_registry.cc")) registry = &file;
    if (EndsWith(file.path, "tests/solver_registry_test.cc")) test = &file;
  }
  if (registry == nullptr) return;  // Nothing to check against.
  if (test == nullptr) {
    Add(findings, "registry-parity", registry->path, 0,
        "solver_registry.cc present but tests/solver_registry_test.cc is "
        "missing");
    return;
  }

  // Registered names: string literals opening an entry of the kRegistry
  // table ('{"Name", ...').
  const std::size_t table = registry->content.find("kRegistry[]");
  const std::size_t table_end =
      table == std::string::npos ? std::string::npos
                                 : registry->content.find("};", table);
  if (table == std::string::npos || table_end == std::string::npos) {
    Add(findings, "registry-parity", registry->path, 0,
        "could not locate the kRegistry[] table");
    return;
  }
  std::set<std::string> names;
  std::size_t pos = table;
  while ((pos = registry->content.find("{\"", pos)) != std::string::npos &&
         pos < table_end) {
    const std::size_t name_start = pos + 2;
    const std::size_t name_end = registry->content.find('"', name_start);
    if (name_end == std::string::npos) break;
    names.insert(
        registry->content.substr(name_start, name_end - name_start));
    pos = name_end;
  }
  if (names.empty()) {
    Add(findings, "registry-parity", registry->path, 0,
        "no registered solver names found in the kRegistry[] table");
    return;
  }
  for (const std::string& name : names) {
    if (test->content.find("\"" + name + "\"") == std::string::npos) {
      Add(findings, "registry-parity", test->path, 0,
          "registered solver \"" + name +
              "\" has no entry in solver_registry_test.cc");
    }
  }
}

void CheckPropertyParity(const std::vector<SourceFile>& files,
                         std::vector<Finding>* findings) {
  const SourceFile* registry = nullptr;
  const SourceFile* properties = nullptr;
  for (const SourceFile& file : files) {
    if (EndsWith(file.path, "core/solver_registry.cc")) registry = &file;
    if (EndsWith(file.path, "check/properties.cc")) properties = &file;
  }
  if (registry == nullptr) return;  // Nothing to check against.
  if (properties == nullptr) {
    Add(findings, "property-parity", registry->path, 0,
        "solver_registry.cc present but src/check/properties.cc is "
        "missing");
    return;
  }

  // Registered names: string literals opening an entry of the kRegistry
  // table ('{"Name", ...').
  const std::size_t table = registry->content.find("kRegistry[]");
  const std::size_t table_end =
      table == std::string::npos ? std::string::npos
                                 : registry->content.find("};", table);
  if (table == std::string::npos || table_end == std::string::npos) {
    Add(findings, "property-parity", registry->path, 0,
        "could not locate the kRegistry[] table");
    return;
  }
  std::set<std::string> registered;
  std::size_t pos = table;
  while ((pos = registry->content.find("{\"", pos)) != std::string::npos &&
         pos < table_end) {
    const std::size_t name_start = pos + 2;
    const std::size_t name_end = registry->content.find('"', name_start);
    if (name_end == std::string::npos) break;
    registered.insert(
        registry->content.substr(name_start, name_end - name_start));
    pos = name_end;
  }

  // Property-checked names: every string literal of the
  // kPropertyCheckedSolvers[] list.
  const std::size_t list =
      properties->content.find("kPropertyCheckedSolvers[]");
  const std::size_t list_end =
      list == std::string::npos ? std::string::npos
                                : properties->content.find("};", list);
  if (list == std::string::npos || list_end == std::string::npos) {
    Add(findings, "property-parity", properties->path, 0,
        "could not locate the kPropertyCheckedSolvers[] list");
    return;
  }
  std::set<std::string> checked;
  pos = list;
  while ((pos = properties->content.find('"', pos)) != std::string::npos &&
         pos < list_end) {
    const std::size_t name_start = pos + 1;
    const std::size_t name_end = properties->content.find('"', name_start);
    if (name_end == std::string::npos || name_end >= list_end) break;
    checked.insert(
        properties->content.substr(name_start, name_end - name_start));
    pos = name_end + 1;
  }

  for (const std::string& name : registered) {
    if (checked.count(name) == 0) {
      Add(findings, "property-parity", properties->path, 0,
          "registered solver \"" + name +
              "\" is not in kPropertyCheckedSolvers[], so the property "
              "suite never exercises it");
    }
  }
  for (const std::string& name : checked) {
    if (registered.count(name) == 0) {
      Add(findings, "property-parity", properties->path, 0,
          "kPropertyCheckedSolvers[] lists \"" + name +
              "\" which is not registered in solver_registry.cc");
    }
  }
}

void CheckSpanNameParity(const std::vector<SourceFile>& files,
                         std::vector<Finding>* findings) {
  const SourceFile* table_file = nullptr;
  for (const SourceFile& file : files) {
    if (EndsWith(file.path, "obs/span_names.h")) table_file = &file;
  }
  if (table_file == nullptr) return;  // Nothing to check against.

  // Canonical names: string literals of the kSpanNames[] table.
  const std::size_t table = table_file->content.find("kSpanNames[]");
  const std::size_t table_end =
      table == std::string::npos ? std::string::npos
                                 : table_file->content.find("};", table);
  if (table == std::string::npos || table_end == std::string::npos) {
    Add(findings, "span-name", table_file->path, 0,
        "could not locate the kSpanNames[] table");
    return;
  }
  std::set<std::string> names;
  std::size_t pos = table;
  while ((pos = table_file->content.find('"', pos)) != std::string::npos &&
         pos < table_end) {
    const std::size_t name_start = pos + 1;
    const std::size_t name_end = table_file->content.find('"', name_start);
    if (name_end == std::string::npos) break;
    names.insert(
        table_file->content.substr(name_start, name_end - name_start));
    pos = name_end + 1;
  }
  if (names.empty()) {
    Add(findings, "span-name", table_file->path, 0,
        "no canonical span names found in the kSpanNames[] table");
    return;
  }

  // Every span construction / recording call in the instrumented layers
  // must use a name from the table. The name is the first string-literal
  // argument; a non-literal name (a variable) cannot be checked here.
  constexpr const char* kInstrumentedLayers[] = {
      "src/core/", "src/lp/", "src/itemsets/", "src/serve/", "src/tenant/"};
  constexpr const char* kSpanTokens[] = {"PhaseScope", "TraceSpan",
                                         "RecordComplete", "RecordInstant"};
  for (const SourceFile& file : files) {
    bool instrumented = false;
    for (const char* layer : kInstrumentedLayers) {
      if (StartsWith(file.path, layer)) {
        instrumented = true;
        break;
      }
    }
    if (!instrumented) continue;
    // Tokens are located in the fully stripped text (no comments, no
    // strings); the literal itself is read from the comments-only copy.
    // Both strippers preserve offsets, so positions transfer.
    const std::string blanked = StripCommentsAndStrings(file.content);
    const std::string text = StripComments(file.content);
    for (const char* token : kSpanTokens) {
      for (std::size_t hit : FindTokens(blanked, token)) {
        const std::size_t open = blanked.find('(', hit + 1);
        if (open == std::string::npos) continue;  // Declaration, not a call.
        int depth = 1;
        std::size_t close = open + 1;
        for (; close < blanked.size() && depth > 0; ++close) {
          if (blanked[close] == '(') ++depth;
          if (blanked[close] == ')') --depth;
        }
        const std::size_t quote = text.find('"', open + 1);
        if (quote == std::string::npos || quote >= close) continue;
        const std::size_t quote_end = text.find('"', quote + 1);
        if (quote_end == std::string::npos) continue;
        const std::string name = text.substr(quote + 1, quote_end - quote - 1);
        if (names.count(name) == 0) {
          Add(findings, "span-name", file.path, LineOf(text, hit),
              std::string(token) + " name \"" + name +
                  "\" is not in the canonical kSpanNames[] table "
                  "(src/obs/span_names.h); add it there or reuse an "
                  "existing name");
        }
      }
    }
  }
}

void CheckEventFieldParity(const std::vector<SourceFile>& files,
                           std::vector<Finding>* findings) {
  const SourceFile* serve_header = nullptr;
  const SourceFile* event_header = nullptr;
  for (const SourceFile& file : files) {
    if (EndsWith(file.path, "serve/visibility_service.h")) {
      serve_header = &file;
    }
    if (EndsWith(file.path, "obs/wide_event.h")) event_header = &file;
  }
  if (event_header == nullptr) return;  // Nothing to check against.
  if (serve_header == nullptr) {
    Add(findings, "event-field-parity", event_header->path, 0,
        "obs/wide_event.h present but src/serve/visibility_service.h is "
        "missing");
    return;
  }

  // Serve-side vocabulary: the value assigned to every kShedReason*
  // constant. Identifiers are located in the fully stripped copy (no
  // comments, so prose mentions of kShedReason* do not count) and the
  // literal is read from the comments-only copy; both strippers
  // preserve offsets.
  const std::string blanked = StripCommentsAndStrings(serve_header->content);
  const std::string text = StripComments(serve_header->content);
  std::set<std::string> serve_reasons;
  std::size_t pos = 0;
  while ((pos = blanked.find("kShedReason", pos)) != std::string::npos) {
    const std::size_t stmt_end = blanked.find(';', pos);
    const std::size_t assign = blanked.find('=', pos);
    if (assign != std::string::npos && stmt_end != std::string::npos &&
        assign < stmt_end) {
      const std::size_t quote = text.find('"', assign + 1);
      const std::size_t quote_end =
          quote == std::string::npos ? std::string::npos
                                     : text.find('"', quote + 1);
      if (quote != std::string::npos && quote_end != std::string::npos &&
          quote < stmt_end) {
        serve_reasons.insert(text.substr(quote + 1, quote_end - quote - 1));
      }
    }
    pos += 1;
  }
  if (serve_reasons.empty()) {
    Add(findings, "event-field-parity", serve_header->path, 0,
        "no kShedReason* constants found in visibility_service.h");
    return;
  }

  // Schema-side vocabulary: the kWideEventShedReasons[] table entries.
  const std::size_t table =
      event_header->content.find("kWideEventShedReasons[]");
  const std::size_t table_end =
      table == std::string::npos ? std::string::npos
                                 : event_header->content.find("};", table);
  if (table == std::string::npos || table_end == std::string::npos) {
    Add(findings, "event-field-parity", event_header->path, 0,
        "could not locate the kWideEventShedReasons[] table");
    return;
  }
  std::set<std::string> event_reasons;
  pos = table;
  while ((pos = event_header->content.find('"', pos)) != std::string::npos &&
         pos < table_end) {
    const std::size_t name_start = pos + 1;
    const std::size_t name_end =
        event_header->content.find('"', name_start);
    if (name_end == std::string::npos || name_end >= table_end) break;
    event_reasons.insert(
        event_header->content.substr(name_start, name_end - name_start));
    pos = name_end + 1;
  }

  for (const std::string& reason : serve_reasons) {
    if (event_reasons.count(reason) == 0) {
      Add(findings, "event-field-parity", event_header->path, 0,
          "serve shed reason \"" + reason +
              "\" is missing from kWideEventShedReasons[], so a wide "
              "event carrying it would fail its own schema");
    }
  }
  for (const std::string& reason : event_reasons) {
    if (serve_reasons.count(reason) == 0) {
      Add(findings, "event-field-parity", event_header->path, 0,
          "kWideEventShedReasons[] lists \"" + reason +
              "\" which no kShedReason* constant in "
              "visibility_service.h produces");
    }
  }
}

namespace {

// A '#'-directive line mentioning an AVX ISA macro anywhere in
// code[0, limit): the fence that keeps intrinsics out of non-x86 builds.
bool HasIsaFenceBefore(const std::string& code, std::size_t limit) {
  std::size_t start = 0;
  while (start < limit && start < code.size()) {
    std::size_t end = code.find('\n', start);
    if (end == std::string::npos) end = code.size();
    std::size_t i = start;
    while (i < end && (code[i] == ' ' || code[i] == '\t')) ++i;
    if (i < end && code[i] == '#' &&
        code.find("__AVX", i) != std::string::npos &&
        code.find("__AVX", i) < end) {
      return true;
    }
    start = end + 1;
  }
  return false;
}

}  // namespace

void CheckKernelDispatch(const std::vector<SourceFile>& files,
                         std::vector<Finding>* findings) {
  // Substring markers, not tokens: every x86 vector intrinsic and vector
  // type embeds one of these prefixes.
  static const char* const kIntrinsicMarkers[] = {
      "immintrin.h", "_mm_", "_mm256_", "_mm512_",
      "__m128",      "__m256", "__m512"};

  const SourceFile* dispatch_tu = nullptr;
  for (const SourceFile& file : files) {
    if (!StartsWith(file.path, "src/")) continue;
    if (!EndsWith(file.path, ".cc") && !EndsWith(file.path, ".h")) continue;
    const std::string code = StripCommentsAndStrings(file.content);
    if (StartsWith(file.path, "src/kernels/") && EndsWith(file.path, ".cc") &&
        !FindTokens(code, "DetectTier").empty()) {
      dispatch_tu = &file;
    }
    std::size_t first = std::string::npos;
    for (const char* marker : kIntrinsicMarkers) {
      const std::size_t pos = code.find(marker);
      if (pos != std::string::npos && pos < first) first = pos;
    }
    if (first == std::string::npos) continue;
    if (!StartsWith(file.path, "src/kernels/")) {
      Add(findings, "kernel-dispatch", file.path, LineOf(code, first),
          "vector intrinsics outside src/kernels; SIMD lives behind the "
          "kernels dispatch table so every call site keeps a scalar path");
      continue;
    }
    if (!HasIsaFenceBefore(code, first)) {
      Add(findings, "kernel-dispatch", file.path, LineOf(code, first),
          "intrinsics are not fenced by an ISA preprocessor guard "
          "(#if defined(__AVX...)); non-x86 builds would not compile");
      continue;
    }
    if (code.find("#else") == std::string::npos) {
      Add(findings, "kernel-dispatch", file.path, LineOf(code, first),
          "ISA-fenced kernel TU has no #else branch; the dispatch table "
          "needs a registered fallback (nullptr ops) on hosts without "
          "the ISA");
    }
  }

  // The dispatch TU must always register the scalar tier: a host failing
  // every CPUID probe still has to resolve to working ops.
  if (dispatch_tu != nullptr) {
    const std::string code = StripCommentsAndStrings(dispatch_tu->content);
    if (FindTokens(code, "ScalarOps").empty()) {
      Add(findings, "kernel-dispatch", dispatch_tu->path, 0,
          "kernel dispatch (DetectTier) never references ScalarOps; the "
          "scalar tier must be the unconditional fallback");
    }
  }
}

const std::vector<PassInfo>& Passes() {
  static const std::vector<PassInfo> kPasses = {
      {"include-guard", {"include-guard"}},
      {"naked-thread", {"naked-thread"}},
      {"layering", {"layering"}},
      {"stop-cadence", {"stop-cadence"}},
      {"reject-metrics", {"reject-metrics"}},
      {"cache-metrics", {"cache-metrics"}},
      {"registry-parity", {"registry-parity"}},
      {"property-parity", {"property-parity"}},
      {"span-name", {"span-name"}},
      {"event-field-parity", {"event-field-parity"}},
      {"kernel-dispatch", {"kernel-dispatch"}},
      {"lock-hierarchy",
       {"lock-order", "lock-rank-order", "lock-rank-missing",
        "blocking-under-lock", "condvar-wait-loop"}},
  };
  return kPasses;
}

namespace {

// Inline suppression: the finding's source line (or the line above it,
// for statements that wrap) carries `soc-lint-suppress(rule)`.
bool IsSuppressedInline(const std::vector<SourceFile>& files,
                        const Finding& finding) {
  if (finding.line <= 0) return false;
  const SourceFile* file = nullptr;
  for (const SourceFile& candidate : files) {
    if (candidate.path == finding.path) {
      file = &candidate;
      break;
    }
  }
  if (file == nullptr) return false;
  const std::string needle = "soc-lint-suppress(" + finding.rule + ")";
  int line = 1;
  std::size_t start = 0;
  while (start <= file->content.size()) {
    std::size_t end = file->content.find('\n', start);
    if (end == std::string::npos) end = file->content.size();
    if (line == finding.line || line == finding.line - 1) {
      if (file->content.substr(start, end - start).find(needle) !=
          std::string::npos) {
        return true;
      }
    }
    if (line > finding.line) break;
    line += 1;
    start = end + 1;
  }
  return false;
}

}  // namespace

std::vector<Finding> LintTree(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    CheckIncludeGuard(file, &findings);
    CheckNakedThread(file, &findings);
    CheckLayering(file, &findings);
    CheckStopCadence(file, &findings);
    CheckRejectMetrics(file, &findings);
  }
  CheckCacheMetrics(files, &findings);
  CheckRegistryTestParity(files, &findings);
  CheckPropertyParity(files, &findings);
  CheckSpanNameParity(files, &findings);
  CheckEventFieldParity(files, &findings);
  CheckKernelDispatch(files, &findings);
  CheckLockHierarchy(files, &findings);

  std::vector<Finding> kept;
  kept.reserve(findings.size());
  for (Finding& finding : findings) {
    if (!IsSuppressedInline(files, finding)) {
      kept.push_back(std::move(finding));
    }
  }
  std::sort(kept.begin(), kept.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return kept;
}

bool FixIncludeGuard(const SourceFile& file, std::string* fixed) {
  if (!EndsWith(file.path, ".h") || !StartsWith(file.path, "src/")) {
    return false;
  }
  const std::string code = StripCommentsAndStrings(file.content);
  if (code.find("#pragma once") != std::string::npos) return false;
  const std::size_t ifndef_pos = code.find("#ifndef ");
  if (ifndef_pos == std::string::npos) return false;
  std::size_t name_start = ifndef_pos + 8;
  while (name_start < code.size() && code[name_start] == ' ') ++name_start;
  std::size_t name_end = name_start;
  while (name_end < code.size() && IsIdentChar(code[name_end])) ++name_end;
  const std::string guard = code.substr(name_start, name_end - name_start);
  if (guard.empty()) return false;
  if (code.find("#define " + guard) == std::string::npos) return false;
  const std::string expected = CanonicalGuard(file.path);
  if (guard == expected) return false;  // Idempotence: nothing to do.

  // Rewrite every whole-identifier occurrence in the raw text: the
  // #ifndef/#define pair plus the conventional trailing
  // `#endif  // GUARD` comment.
  std::string out;
  out.reserve(file.content.size());
  std::size_t pos = 0;
  for (std::size_t hit : FindTokens(file.content, guard)) {
    out.append(file.content, pos, hit - pos);
    out += expected;
    pos = hit + guard.size();
  }
  out.append(file.content, pos, std::string::npos);
  *fixed = std::move(out);
  return true;
}

std::string BaselineKey(const Finding& finding) {
  return finding.rule + "\t" + finding.path + "\t" + finding.message;
}

std::set<std::string> ParseBaseline(const std::string& text) {
  std::set<std::string> baseline;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    baseline.insert(line);
  }
  return baseline;
}

std::string WriteBaseline(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& finding : findings) keys.insert(BaselineKey(finding));
  std::string out =
      "# soc_lint baseline: pinned pre-existing findings, one per line as\n"
      "# rule<TAB>path<TAB>message. Regenerate with --write-baseline; "
      "shrink it,\n"
      "# never grow it.\n";
  for (const std::string& key : keys) {
    out += key;
    out += '\n';
  }
  return out;
}

std::vector<Finding> ApplyBaseline(const std::vector<Finding>& findings,
                                   const std::set<std::string>& baseline) {
  std::vector<Finding> kept;
  for (const Finding& finding : findings) {
    if (baseline.count(BaselineKey(finding)) == 0) kept.push_back(finding);
  }
  return kept;
}

namespace {

// Stable artifact ordering: primary key is the rule id, so adding a
// file never reshuffles another rule's block in the diff.
std::vector<Finding> SortedForArtifact(std::vector<Finding> findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.rule != b.rule) return a.rule < b.rule;
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace

std::string FindingsToJson(const std::vector<Finding>& findings) {
  std::vector<JsonValue> entries;
  entries.reserve(findings.size());
  for (const Finding& finding : SortedForArtifact(findings)) {
    JsonValue entry = JsonValue::Object();
    entry.Set("rule", JsonValue::String(finding.rule))
        .Set("path", JsonValue::String(finding.path))
        .Set("line", JsonValue::Int(finding.line))
        .Set("message", JsonValue::String(finding.message));
    entries.push_back(std::move(entry));
  }
  JsonValue root = JsonValue::Object();
  root.Set("schema_version", JsonValue::Int(2))
      .Set("findings", JsonValue::Array(std::move(entries)));
  return root.ToString();
}

std::string FindingsToSarif(const std::vector<Finding>& findings) {
  std::vector<JsonValue> rules;
  for (const PassInfo& pass : Passes()) {
    for (const char* rule : pass.rules) {
      JsonValue entry = JsonValue::Object();
      entry.Set("id", JsonValue::String(rule));
      rules.push_back(std::move(entry));
    }
  }

  std::vector<JsonValue> results;
  results.reserve(findings.size());
  for (const Finding& finding : SortedForArtifact(findings)) {
    JsonValue message = JsonValue::Object();
    message.Set("text", JsonValue::String(finding.message));

    JsonValue artifact = JsonValue::Object();
    artifact.Set("uri", JsonValue::String(finding.path));
    JsonValue region = JsonValue::Object();
    region.Set("startLine",
               JsonValue::Int(finding.line > 0 ? finding.line : 1));
    JsonValue physical = JsonValue::Object();
    physical.Set("artifactLocation", std::move(artifact))
        .Set("region", std::move(region));
    JsonValue location = JsonValue::Object();
    location.Set("physicalLocation", std::move(physical));

    JsonValue result = JsonValue::Object();
    result.Set("ruleId", JsonValue::String(finding.rule))
        .Set("level", JsonValue::String("error"))
        .Set("message", std::move(message))
        .Set("locations",
             JsonValue::Array(std::vector<JsonValue>{std::move(location)}));
    results.push_back(std::move(result));
  }

  JsonValue driver = JsonValue::Object();
  driver.Set("name", JsonValue::String("soc_lint"))
      .Set("informationUri",
           JsonValue::String("tools/soc_lint"))
      .Set("rules", JsonValue::Array(std::move(rules)));
  JsonValue tool = JsonValue::Object();
  tool.Set("driver", std::move(driver));
  JsonValue run = JsonValue::Object();
  run.Set("tool", std::move(tool))
      .Set("results", JsonValue::Array(std::move(results)));

  JsonValue root = JsonValue::Object();
  root.Set("version", JsonValue::String("2.1.0"))
      .Set("$schema",
           JsonValue::String("https://json.schemastore.org/sarif-2.1.0.json"))
      .Set("runs", JsonValue::Array(std::vector<JsonValue>{std::move(run)}));
  return root.ToString();
}

}  // namespace soc::lint
