// soc_lint: walks the repository tree and enforces the project
// invariants in soc_lint/lint.h. Exit code 0 = clean, 1 = unsuppressed
// findings, 2 = usage / IO error, which makes it a CI gate:
//
//   soc_lint [--root=DIR] [--format=text|json|sarif]
//            [--baseline=FILE] [--write-baseline=FILE]
//            [--diff-base=REF] [--fix]
//
// Lints every .h/.cc under src/, tools/, tests/, bench/ and examples/
// relative to --root (default: the current directory).
//
//   --baseline        suppresses pinned pre-existing findings
//                     (default: tools/soc_lint/baseline.txt under
//                     --root when it exists; --baseline= disables).
//   --write-baseline  writes the current unsuppressed findings as a new
//                     baseline and exits 0.
//   --diff-base=REF   reports only findings in files changed versus the
//                     git ref (plus untracked files); every pass still
//                     sees the whole tree, so cross-TU rules stay
//                     sound. The fast per-PR mode.
//   --fix             rewrites auto-fixable findings in place
//                     (include-guard canonicality) and reports what it
//                     touched.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "soc_lint/lint.h"

namespace {

namespace fs = std::filesystem;

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
    if (arg == "--" + name) return "";  // Valueless spelling.
  }
  return default_value;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--" + name) return true;
  }
  return false;
}

bool IsLintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

// Paths changed versus `ref` plus untracked files, repo-relative. Empty
// optional-style: `ok` is false when git itself failed.
std::set<std::string> ChangedPaths(const std::string& root,
                                   const std::string& ref, bool* ok) {
  std::set<std::string> changed;
  *ok = true;
  for (const std::string& cmd :
       {"git -C '" + root + "' diff --name-only '" + ref + "' 2>/dev/null",
        "git -C '" + root +
            "' ls-files --others --exclude-standard 2>/dev/null"}) {
    FILE* pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr) {
      *ok = false;
      return changed;
    }
    std::string output;
    char buffer[4096];
    std::size_t n = 0;
    while ((n = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
      output.append(buffer, n);
    }
    const int status = pclose(pipe);
    if (status != 0 && cmd.find("diff") != std::string::npos) {
      *ok = false;
      return changed;
    }
    std::istringstream lines(output);
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty()) changed.insert(line);
    }
  }
  return changed;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root = GetFlag(argc, argv, "root", ".");
  const std::string format = GetFlag(argc, argv, "format", "text");
  if (format != "text" && format != "json" && format != "sarif") {
    std::fprintf(stderr,
                 "soc_lint: unknown --format=%s (text|json|sarif)\n",
                 format.c_str());
    return 2;
  }

  std::vector<soc::lint::SourceFile> files;
  for (const char* top : {"src", "tools", "tests", "bench", "examples"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !IsLintable(entry.path())) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "soc_lint: cannot read %s\n",
                     entry.path().string().c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      soc::lint::SourceFile file;
      file.path = fs::relative(entry.path(), root).generic_string();
      file.content = buffer.str();
      files.push_back(std::move(file));
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "soc_lint: no sources under %s\n", root.c_str());
    return 2;
  }

  std::vector<soc::lint::Finding> findings = soc::lint::LintTree(files);

  // --fix: apply mechanical rewrites before any reporting, then re-lint
  // so the report reflects the fixed tree.
  if (HasFlag(argc, argv, "fix")) {
    int fixed_count = 0;
    for (soc::lint::SourceFile& file : files) {
      std::string fixed;
      if (!soc::lint::FixIncludeGuard(file, &fixed)) continue;
      std::ofstream out(fs::path(root) / file.path,
                        std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "soc_lint: cannot write %s\n",
                     file.path.c_str());
        return 2;
      }
      out << fixed;
      file.content = std::move(fixed);
      std::fprintf(stderr, "soc_lint: fixed include guard in %s\n",
                   file.path.c_str());
      ++fixed_count;
    }
    std::fprintf(stderr, "soc_lint: %d file(s) fixed\n", fixed_count);
    findings = soc::lint::LintTree(files);
  }

  // Baseline: default file is picked up silently when present.
  const fs::path default_baseline =
      fs::path(root) / "tools" / "soc_lint" / "baseline.txt";
  std::string baseline_path = GetFlag(
      argc, argv, "baseline",
      fs::exists(default_baseline) ? default_baseline.string() : "");
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "soc_lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    findings = soc::lint::ApplyBaseline(
        findings, soc::lint::ParseBaseline(buffer.str()));
  }

  const std::string write_baseline =
      GetFlag(argc, argv, "write-baseline", "");
  if (!write_baseline.empty()) {
    std::ofstream out(write_baseline, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "soc_lint: cannot write baseline %s\n",
                   write_baseline.c_str());
      return 2;
    }
    out << soc::lint::WriteBaseline(findings);
    std::fprintf(stderr, "soc_lint: wrote %zu finding(s) to %s\n",
                 findings.size(), write_baseline.c_str());
    return 0;
  }

  // --diff-base: restrict the report to changed files. Passes already
  // ran over the full tree, so cross-TU findings in changed files are
  // exact, not approximated.
  const std::string diff_base = GetFlag(argc, argv, "diff-base", "");
  if (!diff_base.empty()) {
    bool ok = false;
    const std::set<std::string> changed = ChangedPaths(root, diff_base, &ok);
    if (!ok) {
      std::fprintf(stderr,
                   "soc_lint: git diff against '%s' failed (not a repo, or "
                   "unknown ref?)\n",
                   diff_base.c_str());
      return 2;
    }
    std::vector<soc::lint::Finding> scoped;
    for (soc::lint::Finding& finding : findings) {
      if (changed.count(finding.path) != 0) {
        scoped.push_back(std::move(finding));
      }
    }
    findings = std::move(scoped);
  }

  if (format == "json") {
    std::printf("%s\n", soc::lint::FindingsToJson(findings).c_str());
  } else if (format == "sarif") {
    std::printf("%s\n", soc::lint::FindingsToSarif(findings).c_str());
  } else {
    for (const soc::lint::Finding& finding : findings) {
      std::printf("%s:%d: [%s] %s\n", finding.path.c_str(), finding.line,
                  finding.rule.c_str(), finding.message.c_str());
    }
    std::fprintf(stderr, "soc_lint: %zu file(s), %zu finding(s)\n",
                 files.size(), findings.size());
  }
  return findings.empty() ? 0 : 1;
}
