// soc_lint: walks the repository tree and enforces the project
// invariants in soc_lint/lint.h. Exit code 0 = clean, 1 = findings,
// 2 = usage / IO error, which makes it a CI gate:
//
//   soc_lint [--root=DIR] [--format=text|json]
//
// Lints every .h/.cc under src/, tools/, tests/, bench/ and examples/
// relative to --root (default: the current directory).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "soc_lint/lint.h"

namespace {

namespace fs = std::filesystem;

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return default_value;
}

bool IsLintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root = GetFlag(argc, argv, "root", ".");
  const std::string format = GetFlag(argc, argv, "format", "text");
  if (format != "text" && format != "json") {
    std::fprintf(stderr, "soc_lint: unknown --format=%s (text|json)\n",
                 format.c_str());
    return 2;
  }

  std::vector<soc::lint::SourceFile> files;
  for (const char* top : {"src", "tools", "tests", "bench", "examples"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !IsLintable(entry.path())) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "soc_lint: cannot read %s\n",
                     entry.path().string().c_str());
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      soc::lint::SourceFile file;
      file.path = fs::relative(entry.path(), root).generic_string();
      file.content = buffer.str();
      files.push_back(std::move(file));
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "soc_lint: no sources under %s\n", root.c_str());
    return 2;
  }

  const std::vector<soc::lint::Finding> findings =
      soc::lint::LintTree(files);
  if (format == "json") {
    std::printf("%s\n", soc::lint::FindingsToJson(findings).c_str());
  } else {
    for (const soc::lint::Finding& finding : findings) {
      std::printf("%s:%d: [%s] %s\n", finding.path.c_str(), finding.line,
                  finding.rule.c_str(), finding.message.c_str());
    }
    std::fprintf(stderr, "soc_lint: %zu file(s), %zu finding(s)\n",
                 files.size(), findings.size());
  }
  return findings.empty() ? 0 : 1;
}
