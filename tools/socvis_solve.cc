// socvis_solve: run SOC-CB-QL on CSV inputs from the command line.
//
// Usage:
//   socvis_solve --log=log.csv --tuple=110111 --m=3 [--solver=NAME | --all]
//   socvis_solve --log=log.csv --dataset=cars.csv --tuple-row=17 --m=6 --all
//
// The query log is a 0/1 CSV with an attribute-name header (as written by
// socvis_datagen / QueryLog::ToCsv). The new tuple is either a bitstring
// over the log's attributes or a row of a dataset CSV with a matching
// schema. --stats additionally prints query-log analytics.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "boolean/log_stats.h"
#include "common/json_writer.h"
#include "boolean/table.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/solver_registry.h"
#include "core/variants.h"
#include "obs/context_tracer.h"
#include "obs/profiler.h"
#include "obs/trace_recorder.h"

namespace {

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return default_value;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "socvis_solve: %s\n", message.c_str());
  return 1;
}

int Usage() {
  return Fail(
      "usage: socvis_solve --log=log.csv --m=N "
      "(--tuple=BITSTRING | --dataset=cars.csv --tuple-row=R) "
      "[--solver=NAME] [--all] [--stats] "
      "[--time-limit-ms=T] [--tick-budget=N] [--trace-out=PATH] "
      "[--profile-out=PATH] "
      "[--variant=conjunctive|per-attribute|disjunctive]\n  solvers: " +
      soc::Join(soc::RegisteredSolverNames(), ", ") +
      "\n  per-attribute ignores --m; disjunctive supports solver "
      "BruteForce, ILP or Greedy");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace soc;

  const std::string log_path = GetFlag(argc, argv, "log", "");
  if (log_path.empty()) return Usage();
  std::ifstream log_file(log_path, std::ios::binary);
  if (!log_file) return Fail("cannot open " + log_path);
  std::ostringstream log_buffer;
  log_buffer << log_file.rdbuf();
  auto log = QueryLog::FromCsv(log_buffer.str());
  if (!log.ok()) return Fail(log.status().ToString());

  // Resolve the new tuple.
  DynamicBitset tuple;
  const std::string tuple_bits = GetFlag(argc, argv, "tuple", "");
  const std::string dataset_path = GetFlag(argc, argv, "dataset", "");
  if (!tuple_bits.empty()) {
    if (static_cast<int>(tuple_bits.size()) != log->num_attributes()) {
      return Fail("--tuple length must equal the log's attribute count");
    }
    for (char c : tuple_bits) {
      if (c != '0' && c != '1') return Fail("--tuple must be a 0/1 string");
    }
    tuple = DynamicBitset::FromString(tuple_bits);
  } else if (!dataset_path.empty()) {
    auto dataset = BooleanTable::LoadCsvFile(dataset_path);
    if (!dataset.ok()) return Fail(dataset.status().ToString());
    if (!(dataset->schema() == log->schema())) {
      return Fail("dataset and log schemas differ");
    }
    const int row = std::atoi(GetFlag(argc, argv, "tuple-row", "0").c_str());
    if (row < 0 || row >= dataset->num_rows()) {
      return Fail("--tuple-row out of range");
    }
    tuple = dataset->row(row);
  } else {
    return Usage();
  }

  const std::string variant = GetFlag(argc, argv, "variant", "conjunctive");
  const std::string m_flag = GetFlag(argc, argv, "m", "");
  if (m_flag.empty() && variant != "per-attribute") return Usage();
  const int m = m_flag.empty() ? 0 : std::atoi(m_flag.c_str());
  if (m < 0) return Fail("--m must be nonnegative");

  if (HasFlag(argc, argv, "stats")) {
    std::fputs(FormatQueryLogStats(*log, ComputeQueryLogStats(*log)).c_str(),
               stdout);
    std::printf("\n");
  }

  if (variant == "per-attribute") {
    // Maximize satisfied queries per advertised attribute (Sec II.B).
    auto solver =
        CreateSolverByName(GetFlag(argc, argv, "solver", "BranchAndBound"));
    if (!solver.ok()) return Fail(solver.status().ToString());
    auto best = SolvePerAttribute(**solver, *log, tuple);
    if (!best.ok()) return Fail(best.status().ToString());
    std::printf(
        "per-attribute optimum: m=%d, %.3f satisfied per attribute "
        "(%d total) with { ",
        best->chosen_m, best->ratio, best->solution.satisfied_queries);
    best->solution.selected.ForEachSetBit([&](int attr) {
      std::printf("%s ", log->schema().name(attr).c_str());
    });
    std::printf("}\n");
    return 0;
  }
  if (variant == "disjunctive") {
    const std::string solver = GetFlag(argc, argv, "solver", "BruteForce");
    StatusOr<SocSolution> solution =
        solver == "BruteForce" ? SolveDisjunctiveBruteForce(*log, tuple, m)
        : solver == "ILP"      ? SolveDisjunctiveIlp(*log, tuple, m)
                               : SolveDisjunctiveGreedy(*log, tuple, m);
    if (!solution.ok()) return Fail(solution.status().ToString());
    std::printf("disjunctive (%s): %d/%d queries touched with { ",
                solver.c_str(), solution->satisfied_queries, log->size());
    solution->selected.ForEachSetBit([&](int attr) {
      std::printf("%s ", log->schema().name(attr).c_str());
    });
    std::printf("}\n");
    return 0;
  }
  if (variant != "conjunctive") return Usage();

  std::vector<std::string> solver_names;
  if (HasFlag(argc, argv, "all")) {
    solver_names = RegisteredSolverNames();
  } else {
    solver_names.push_back(
        GetFlag(argc, argv, "solver", "MaxFreqItemSets"));
  }

  const double time_limit_ms =
      std::atof(GetFlag(argc, argv, "time-limit-ms", "0").c_str());
  const long long tick_budget =
      std::atoll(GetFlag(argc, argv, "tick-budget", "0").c_str());
  if (time_limit_ms < 0 || tick_budget < 0) {
    return Fail("--time-limit-ms and --tick-budget must be nonnegative");
  }
  const bool limited = time_limit_ms > 0 || tick_budget > 0;

  // Solver phase tracing: each solver run becomes a "solve" span with the
  // solver's internal phases nested under it.
  const std::string trace_path = GetFlag(argc, argv, "trace-out", "");
  obs::TraceRecorder recorder;
  const bool tracing = !trace_path.empty();
  if (tracing) recorder.set_enabled(true);

  // CPU sampling across every solver run; collapsed stacks on exit.
  const std::string profile_path = GetFlag(argc, argv, "profile-out", "");
  if (!profile_path.empty()) {
    const Status started = obs::Profiler::Instance().Start();
    if (!started.ok()) return Fail(started.ToString());
  }

  const bool as_json = HasFlag(argc, argv, "json");
  if (!as_json) {
    std::printf("log: %d queries over %d attributes; |t| = %d; m = %d\n",
                log->size(), log->num_attributes(),
                static_cast<int>(tuple.Count()), m);
  }
  std::vector<JsonValue> json_results;
  for (const std::string& name : solver_names) {
    auto solver = CreateSolverByName(name);
    if (!solver.ok()) return Fail(solver.status().ToString());
    // Each solver gets a fresh context so one overrun doesn't starve the
    // rest of an --all sweep.
    SolveContext context;
    if (time_limit_ms > 0) {
      context.set_deadline(Deadline::AfterSeconds(time_limit_ms / 1000.0));
    }
    if (tick_budget > 0) context.set_tick_budget(tick_budget);
    obs::TracingPhaseListener listener(tracing ? &recorder : nullptr,
                                       "solve");
    context.set_phase_listener(&listener);
    // Tracing needs the context threaded through even without limits.
    const bool use_context = limited || tracing;
    WallTimer timer;
    StatusOr<SocSolution> solution = [&] {
      obs::TraceSpan span(tracing ? &recorder : nullptr, "solve", "cli");
      if (span.active()) span.AddArg(obs::TraceArg::Str("solver", name));
      return (*solver)->SolveWithContext(*log, tuple, m,
                                         use_context ? &context : nullptr);
    }();
    const double ms = timer.ElapsedMillis();
    if (!solution.ok()) {
      if (!as_json) {
        std::printf("%-20s FAILED: %s\n", name.c_str(),
                    solution.status().ToString().c_str());
      }
      continue;
    }
    if (as_json) {
      std::vector<JsonValue> attrs;
      solution->selected.ForEachSetBit([&](int attr) {
        attrs.push_back(JsonValue::String(log->schema().name(attr)));
      });
      JsonValue entry = JsonValue::Object();
      entry.Set("solver", JsonValue::String(name))
          .Set("satisfied_queries",
               JsonValue::Int(solution->satisfied_queries))
          .Set("selected", JsonValue::Array(std::move(attrs)))
          .Set("proved_optimal", JsonValue::Bool(solution->proved_optimal))
          .Set("degraded", JsonValue::Bool(IsDegraded(*solution)))
          .Set("stop_reason", JsonValue::String(StopReasonToString(
                                  SolutionStopReason(*solution))))
          .Set("milliseconds", JsonValue::Number(ms));
      json_results.push_back(std::move(entry));
      continue;
    }
    std::printf("%-20s %4d satisfied  %9.2f ms  { ", name.c_str(),
                solution->satisfied_queries, ms);
    solution->selected.ForEachSetBit([&](int attr) {
      std::printf("%s ", log->schema().name(attr).c_str());
    });
    std::printf("}%s", solution->proved_optimal ? "  [optimal]" : "");
    if (IsDegraded(*solution)) {
      std::printf("  [degraded: %s]",
                  StopReasonToString(SolutionStopReason(*solution)));
    }
    std::printf("\n");
  }
  if (as_json) {
    JsonValue report = JsonValue::Object();
    report.Set("queries", JsonValue::Int(log->size()))
        .Set("attributes", JsonValue::Int(log->num_attributes()))
        .Set("tuple_size", JsonValue::Int(tuple.Count()))
        .Set("m", JsonValue::Int(m))
        .Set("results", JsonValue::Array(std::move(json_results)));
    std::printf("%s\n", report.ToString().c_str());
  }
  if (!profile_path.empty()) {
    obs::Profiler& profiler = obs::Profiler::Instance();
    const Status stopped = profiler.Stop();
    if (!stopped.ok()) return Fail(stopped.ToString());
    const Status written = profiler.WriteCollapsed(profile_path);
    if (!written.ok()) return Fail(written.ToString());
  }
  if (tracing) {
    const Status status = recorder.WriteChromeTrace(trace_path);
    if (!status.ok()) return Fail(status.ToString());
  }
  return 0;
}
