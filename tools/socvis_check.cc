// socvis_check: the verification driver. Runs seeded property trials
// against the registry solvers, the structure-aware parser/serve fuzzers,
// corpus replay and single-instance replay, printing (or json-emitting) a
// shrunken, copy-pasteable repro for any failure.
//
// Usage:
//   socvis_check --trials=200 --seed=1            # property trials
//   socvis_check --trials=1 --seed=7 --solvers=ILP,Fallback
//   socvis_check --fuzz=400 --seed=1              # parser + serve fuzzing
//   socvis_check --chaos=300 --seed=1             # serve chaos storms
//   socvis_check --chaos=300 --tenants=8          # multi-tenant storm size
//   socvis_check --replay=instance.txt            # re-check one instance
//   socvis_check --corpus=tests/corpus            # replay saved crashers
//   socvis_check ... --json                       # machine-readable report
//
// Exit code 0 iff every requested stage passed.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.h"
#include "check/instance.h"
#include "check/properties.h"
#include "check/runner.h"
#include "common/json_writer.h"
#include "common/string_util.h"

namespace {

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return default_value;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "socvis_check: %s\n", message.c_str());
  return 1;
}

soc::StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return soc::NotFoundError("cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

// "protocol-empty-line.txt" -> "protocol".
std::string CorpusKind(const std::string& filename) {
  const std::size_t dash = filename.find('-');
  return dash == std::string::npos ? filename : filename.substr(0, dash);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace soc;
  using namespace soc::check;

  const bool as_json = HasFlag(argc, argv, "json");
  const std::uint64_t seed = static_cast<std::uint64_t>(
      std::strtoull(GetFlag(argc, argv, "seed", "1").c_str(), nullptr, 10));
  std::vector<std::string> solvers;
  const std::string solvers_flag = GetFlag(argc, argv, "solvers", "");
  if (!solvers_flag.empty()) solvers = Split(solvers_flag, ',');

  std::vector<JsonValue> json_failures;
  bool failed = false;

  // --dump=SEED: print the generated instance for that seed (the exact
  // format --replay reads back), for fixture pinning and external tooling.
  const std::string dump_seed = GetFlag(argc, argv, "dump", "");
  if (!dump_seed.empty()) {
    const Instance instance = GenerateInstance(static_cast<std::uint64_t>(
        std::strtoull(dump_seed.c_str(), nullptr, 10)));
    std::fputs(InstanceToText(instance).c_str(), stdout);
    return 0;
  }

  // --replay=FILE: re-check one serialized instance (a shrunken repro).
  const std::string replay_path = GetFlag(argc, argv, "replay", "");
  if (!replay_path.empty()) {
    auto text = ReadFile(replay_path);
    if (!text.ok()) return Fail(text.status().ToString());
    auto instance = InstanceFromText(*text);
    if (!instance.ok()) return Fail(instance.status().ToString());
    const Status status = ReplayInstance(*instance, solvers);
    if (!status.ok()) {
      std::printf("replay %s: %s\n", replay_path.c_str(),
                  status.ToString().c_str());
      return 1;
    }
    std::printf("replay %s: all properties hold (%s)\n", replay_path.c_str(),
                InstanceSummary(*instance).c_str());
    return 0;
  }

  // --corpus=DIR: replay every saved crasher.
  const std::string corpus_dir = GetFlag(argc, argv, "corpus", "");
  if (!corpus_dir.empty()) {
    std::error_code ec;
    std::vector<std::string> paths;
    for (const auto& entry :
         std::filesystem::directory_iterator(corpus_dir, ec)) {
      if (entry.is_regular_file()) paths.push_back(entry.path().string());
    }
    if (ec) return Fail("cannot list " + corpus_dir + ": " + ec.message());
    std::sort(paths.begin(), paths.end());
    int replayed = 0;
    for (const std::string& path : paths) {
      auto payload = ReadFile(path);
      if (!payload.ok()) return Fail(payload.status().ToString());
      const std::string kind =
          CorpusKind(std::filesystem::path(path).filename().string());
      const Status status = ReplayCorpusInput(kind, *payload);
      if (!status.ok()) {
        std::printf("corpus %s: %s\n", path.c_str(),
                    status.ToString().c_str());
        failed = true;
      }
      ++replayed;
    }
    if (!as_json) {
      std::printf("corpus: %d inputs replayed, %s\n", replayed,
                  failed ? "FAILURES above" : "all clean");
    }
    if (failed) return 1;
    const bool more_stages =
        std::atoi(GetFlag(argc, argv, "fuzz", "0").c_str()) > 0 ||
        std::atoi(GetFlag(argc, argv, "trials", "0").c_str()) > 0;
    if (!more_stages) return 0;
  }

  // --fuzz=N: parser fuzzers plus a concurrent serve storm.
  const int fuzz_iterations =
      std::atoi(GetFlag(argc, argv, "fuzz", "0").c_str());
  if (fuzz_iterations > 0) {
    FuzzOptions fuzz_options;
    fuzz_options.iterations = fuzz_iterations;
    fuzz_options.seed = seed;
    struct {
      const char* name;
      StatusOr<FuzzReport> (*run)(const FuzzOptions&);
    } fuzzers[] = {
        {"protocol", &FuzzProtocol},
        {"response", &FuzzResponseProtocol},
        {"csv", &FuzzQueryLogCsv},
        {"instance", &FuzzInstanceText},
        {"event", &FuzzWideEvent},
    };
    for (const auto& fuzzer : fuzzers) {
      const auto report = fuzzer.run(fuzz_options);
      if (!report.ok()) {
        std::printf("fuzz %s: %s\n", fuzzer.name,
                    report.status().ToString().c_str());
        failed = true;
        continue;
      }
      if (!as_json) {
        std::printf("fuzz %-8s %d inputs: %d accepted, %d rejected\n",
                    fuzzer.name, report->iterations, report->accepted,
                    report->rejected);
      }
    }
    ServeFuzzOptions serve_options;
    serve_options.requests = fuzz_iterations;
    serve_options.seed = seed;
    const Status serve_status = FuzzServe(serve_options);
    if (!serve_status.ok()) {
      std::printf("fuzz serve: %s\n", serve_status.ToString().c_str());
      failed = true;
    } else if (!as_json) {
      std::printf("fuzz serve    %d concurrent requests: ledger balanced\n",
                  fuzz_iterations);
    }
    if (failed) return 1;
    const bool more_stages =
        std::atoi(GetFlag(argc, argv, "chaos", "0").c_str()) > 0 ||
        std::atoi(GetFlag(argc, argv, "trials", "0").c_str()) > 0;
    if (!more_stages) return 0;
  }

  // --chaos=N: service-level chaos storm (faults, stalls, bursts) with
  // full overload-ledger and breaker audits, followed by a multi-tenant
  // storm (rotating tenants, mid-storm epoch publishes, result-cache
  // traffic) with zero-staleness and per-tenant ledger audits.
  // --tenants=K sets the multi-tenant storm's tenant count (0 skips it).
  const int chaos_requests =
      std::atoi(GetFlag(argc, argv, "chaos", "0").c_str());
  if (chaos_requests > 0) {
    ChaosServeOptions chaos_options;
    chaos_options.requests = chaos_requests;
    chaos_options.seed = seed;
    const Status chaos_status = FuzzServeChaos(chaos_options);
    if (!chaos_status.ok()) {
      // Self-contained repro line: requests + seed rebuild the storm.
      std::printf("chaos: --chaos=%d --seed=%llu: %s\n", chaos_requests,
                  static_cast<unsigned long long>(seed),
                  chaos_status.ToString().c_str());
      failed = true;
    } else if (!as_json) {
      std::printf(
          "chaos storm   %d requests: ledger balanced, breaker tripped\n",
          chaos_requests);
    }
    const int tenants =
        std::atoi(GetFlag(argc, argv, "tenants", "6").c_str());
    if (!failed && tenants > 0) {
      MultiTenantChaosOptions tenant_options;
      tenant_options.requests = chaos_requests;
      tenant_options.seed = seed;
      tenant_options.num_tenants = tenants;
      const Status tenant_status = FuzzMultiTenantChaos(tenant_options);
      if (!tenant_status.ok()) {
        std::printf("chaos: --chaos=%d --tenants=%d --seed=%llu: %s\n",
                    chaos_requests, tenants,
                    static_cast<unsigned long long>(seed),
                    tenant_status.ToString().c_str());
        failed = true;
      } else if (!as_json) {
        std::printf(
            "tenant storm  %d requests, %d tenants: zero stale results, "
            "per-tenant ledgers balanced\n",
            chaos_requests, tenants);
      }
    }
    if (failed) return 1;
    if (std::atoi(GetFlag(argc, argv, "trials", "0").c_str()) == 0) {
      return 0;
    }
  }

  // Default stage: seeded property trials.
  TrialOptions options;
  options.trials = std::atoi(GetFlag(argc, argv, "trials", "100").c_str());
  options.seed = seed;
  options.solvers = solvers;
  options.max_failures =
      std::atoi(GetFlag(argc, argv, "max-failures", "1").c_str());
  if (options.trials <= 0) return Fail("--trials must be positive");

  const TrialReport report = RunTrials(options);
  for (const PropertyFailure& failure : report.failures) {
    if (as_json) {
      json_failures.push_back(FailureToJson(failure));
    } else {
      std::fputs(FailureToText(failure).c_str(), stdout);
    }
    failed = true;
  }
  if (as_json) {
    JsonValue summary = JsonValue::Object();
    summary.Set("trials", JsonValue::Int(report.trials))
        .Set("checks", JsonValue::Int(report.checks))
        .Set("seed", JsonValue::Int(static_cast<long long>(seed)))
        .Set("failures", JsonValue::Array(std::move(json_failures)));
    std::printf("%s\n", summary.ToString().c_str());
  } else {
    std::printf("%d trials, %d property checks, %zu failures\n",
                report.trials, report.checks, report.failures.size());
  }
  return failed ? 1 : 0;
}
