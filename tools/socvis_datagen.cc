// socvis_datagen: emit the synthetic evaluation datasets as CSV.
//
// Usage:
//   socvis_datagen --what=cars               --rows=15211 --seed=2008 --out=cars.csv
//   socvis_datagen --what=real-workload      --queries=185 --seed=7   --out=log.csv
//   socvis_datagen --what=synthetic-workload --queries=2000 --seed=42 --out=log.csv
//   socvis_datagen --what=synthetic-workload --attrs=64 ...
//
// The real-like workload needs attribute prevalences; it is generated
// against a car dataset, either a fresh one (--rows/--dataset-seed) or a
// previously saved CSV (--dataset=cars.csv).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/csv.h"
#include "datagen/car_dataset.h"
#include "datagen/workload.h"

namespace {

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return default_value;
}

long long GetIntFlag(int argc, char** argv, const std::string& name,
                     long long default_value) {
  const std::string value = GetFlag(argc, argv, name, "");
  return value.empty() ? default_value : std::atoll(value.c_str());
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "socvis_datagen: %s\n", message.c_str());
  return 1;
}

int WriteOut(const std::string& csv, const std::string& out) {
  if (out.empty() || out == "-") {
    std::fputs(csv.c_str(), stdout);
    return 0;
  }
  soc::CsvTable parsed;
  auto reparsed = soc::ParseCsv(csv, /*has_header=*/true);
  if (!reparsed.ok()) return Fail(reparsed.status().ToString());
  const soc::Status status = soc::WriteCsvFile(*reparsed, out);
  if (!status.ok()) return Fail(status.ToString());
  std::fprintf(stderr, "wrote %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace soc;
  const std::string what = GetFlag(argc, argv, "what", "");
  const std::string out = GetFlag(argc, argv, "out", "-");

  if (what == "cars") {
    datagen::CarDatasetOptions options;
    options.num_cars =
        static_cast<int>(GetIntFlag(argc, argv, "rows",
                                    datagen::kPaperCarCount));
    options.seed = GetIntFlag(argc, argv, "seed", 2008);
    return WriteOut(datagen::GenerateCarDataset(options).ToCsv(), out);
  }

  if (what == "synthetic-workload") {
    const int attrs = static_cast<int>(
        GetIntFlag(argc, argv, "attrs", datagen::kNumCarAttributes));
    const AttributeSchema schema =
        attrs == datagen::kNumCarAttributes ? datagen::CarSchema()
                                            : AttributeSchema::Anonymous(attrs);
    datagen::SyntheticWorkloadOptions options;
    options.num_queries =
        static_cast<int>(GetIntFlag(argc, argv, "queries", 2000));
    options.seed = GetIntFlag(argc, argv, "seed", 42);
    return WriteOut(datagen::MakeSyntheticWorkload(schema, options).ToCsv(),
                    out);
  }

  if (what == "real-workload") {
    BooleanTable dataset;
    const std::string dataset_path = GetFlag(argc, argv, "dataset", "");
    if (!dataset_path.empty()) {
      auto loaded = BooleanTable::LoadCsvFile(dataset_path);
      if (!loaded.ok()) return Fail(loaded.status().ToString());
      dataset = std::move(loaded).value();
    } else {
      datagen::CarDatasetOptions options;
      options.num_cars =
          static_cast<int>(GetIntFlag(argc, argv, "rows", 15211));
      options.seed = GetIntFlag(argc, argv, "dataset-seed", 2008);
      dataset = datagen::GenerateCarDataset(options);
    }
    datagen::RealLikeWorkloadOptions options;
    options.num_queries = static_cast<int>(
        GetIntFlag(argc, argv, "queries", datagen::kPaperRealWorkloadSize));
    options.seed = GetIntFlag(argc, argv, "seed", 7);
    return WriteOut(datagen::MakeRealLikeWorkload(dataset, options).ToCsv(),
                    out);
  }

  return Fail(
      "usage: socvis_datagen --what=cars|real-workload|synthetic-workload "
      "[--rows=N] [--queries=N] [--attrs=N] [--seed=N] [--dataset=path] "
      "[--out=path]");
}
