// socvis_analyze: per-attribute marginal-visibility report for a new tuple
// against a query log (forced-in vs forced-out optimum for each feature).
//
// Usage:
//   socvis_analyze --log=log.csv --tuple=110111 --m=5 [--solver=NAME] [--json]
//   socvis_analyze --log=log.csv --dataset=cars.csv --tuple-row=17 --m=5

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "boolean/table.h"
#include "common/json_writer.h"
#include "common/string_util.h"
#include "core/attribute_analysis.h"
#include "core/solver_registry.h"

namespace {

std::string GetFlag(int argc, char** argv, const std::string& name,
                    const std::string& default_value) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return default_value;
}

bool HasFlag(int argc, char** argv, const std::string& name) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "socvis_analyze: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace soc;

  const std::string log_path = GetFlag(argc, argv, "log", "");
  const std::string m_flag = GetFlag(argc, argv, "m", "");
  if (log_path.empty() || m_flag.empty()) {
    return Fail(
        "usage: socvis_analyze --log=log.csv --m=N "
        "(--tuple=BITSTRING | --dataset=cars.csv --tuple-row=R) "
        "[--solver=NAME] [--json]");
  }
  std::ifstream log_file(log_path, std::ios::binary);
  if (!log_file) return Fail("cannot open " + log_path);
  std::ostringstream buffer;
  buffer << log_file.rdbuf();
  auto log = QueryLog::FromCsv(buffer.str());
  if (!log.ok()) return Fail(log.status().ToString());

  DynamicBitset tuple;
  const std::string tuple_bits = GetFlag(argc, argv, "tuple", "");
  const std::string dataset_path = GetFlag(argc, argv, "dataset", "");
  if (!tuple_bits.empty()) {
    if (static_cast<int>(tuple_bits.size()) != log->num_attributes()) {
      return Fail("--tuple length must equal the log's attribute count");
    }
    tuple = DynamicBitset::FromString(tuple_bits);
  } else if (!dataset_path.empty()) {
    auto dataset = BooleanTable::LoadCsvFile(dataset_path);
    if (!dataset.ok()) return Fail(dataset.status().ToString());
    const int row = std::atoi(GetFlag(argc, argv, "tuple-row", "0").c_str());
    if (row < 0 || row >= dataset->num_rows()) {
      return Fail("--tuple-row out of range");
    }
    tuple = dataset->row(row);
  } else {
    return Fail("need --tuple or --dataset/--tuple-row");
  }

  const int m = std::atoi(m_flag.c_str());
  auto solver =
      CreateSolverByName(GetFlag(argc, argv, "solver", "BranchAndBound"));
  if (!solver.ok()) return Fail(solver.status().ToString());

  auto values = AnalyzeAttributeValues(**solver, *log, tuple, m);
  if (!values.ok()) return Fail(values.status().ToString());

  if (HasFlag(argc, argv, "json")) {
    std::vector<JsonValue> rows;
    for (const AttributeValue& value : *values) {
      JsonValue row = JsonValue::Object();
      row.Set("attribute",
              JsonValue::String(log->schema().name(value.attribute)))
          .Set("forced_in", JsonValue::Int(value.forced_in))
          .Set("forced_out", JsonValue::Int(value.forced_out))
          .Set("marginal", JsonValue::Int(value.marginal));
      rows.push_back(std::move(row));
    }
    JsonValue report = JsonValue::Object();
    report.Set("m", JsonValue::Int(m))
        .Set("attributes", JsonValue::Array(std::move(rows)));
    std::printf("%s\n", report.ToString().c_str());
    return 0;
  }

  std::printf("marginal visibility at m=%d (%d queries):\n", m, log->size());
  std::printf("%-20s %10s %10s %10s\n", "attribute", "forced-in",
              "forced-out", "marginal");
  for (const AttributeValue& value : *values) {
    std::printf("%-20s %10d %10d %+10d\n",
                log->schema().name(value.attribute).c_str(), value.forced_in,
                value.forced_out, value.marginal);
  }
  return 0;
}
